"""Command-line interface: the reproduction's analogue of the open-source BEER tool.

The paper releases a C++ application that takes an experimentally measured
miscorrection profile and determines the ECC function(s) that explain it.
This module provides the same workflow as a console script::

    beer-tool simulate-profile --vendor B --data-bits 8 --output profile.json
    beer-tool solve --profile profile.json [--backend fast|sat] [--max-solutions N]
    beer-tool verify --profile profile.json --columns 7,11,19,...
    beer-tool beep --data-bits 16 --error-positions 2,9 [--passes 2]
    beer-tool einsim --data-bits 32 --num-words 100000 --backend packed

Simulation-heavy commands (``einsim``, ``simulate-profile``) accept
``--backend {reference,packed,auto}`` selecting the GF(2) kernel
implementation; both backends produce bit-identical output for the same
seed, the packed one is simply faster.

Profiles are exchanged as JSON in the format produced by
:meth:`repro.core.profile.MiscorrectionProfile.to_dict`.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

import numpy as np

from repro.gf2 import GF2Vector
from repro.ecc import SystematicLinearCode, random_hamming_code
from repro.ecc.hamming import min_parity_bits
from repro.dram import ChipGeometry, DataRetentionModel, all_vendors
from repro.dram.retention import RetentionCalibration
from repro.core import (
    BeerExperiment,
    BeerSolver,
    ExperimentConfig,
    MiscorrectionProfile,
    SatBeerSolver,
)
from repro.core.beep import BeepProfiler, SimulatedWordUnderTest


#: Retention model used by ``simulate-profile`` so simulated campaigns finish
#: in seconds rather than the paper's hours of real refresh pauses.
_FAST_RETENTION = DataRetentionModel(RetentionCalibration(1.0, 0.02, 60.0, 0.5))


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``beer-tool`` console script."""
    parser = argparse.ArgumentParser(
        prog="beer-tool",
        description="BEER: determine DRAM on-die ECC functions from miscorrection profiles.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    solve = subparsers.add_parser(
        "solve", help="solve a miscorrection profile for the ECC function(s)"
    )
    solve.add_argument("--profile", required=True, help="path to a profile JSON file")
    solve.add_argument("--parity-bits", type=int, default=None,
                       help="number of parity bits (default: minimum for the dataword length)")
    solve.add_argument("--max-solutions", type=int, default=None,
                       help="stop after this many candidate functions")
    solve.add_argument("--backend", choices=("fast", "sat"), default="fast",
                       help="constraint-propagation backend (fast) or CNF/CDCL backend (sat)")
    solve.add_argument("--output", default=None, help="write the solutions to a JSON file")

    verify = subparsers.add_parser(
        "verify", help="check that a parity-check matrix reproduces a profile"
    )
    verify.add_argument("--profile", required=True, help="path to a profile JSON file")
    verify.add_argument("--columns", required=True,
                        help="comma-separated integer columns of P (LSB = parity row 0)")
    verify.add_argument("--parity-bits", type=int, default=None)

    simulate = subparsers.add_parser(
        "simulate-profile",
        help="run a BEER campaign against a simulated chip and export its profile",
    )
    simulate.add_argument("--vendor", choices=("A", "B", "C"), default="A")
    simulate.add_argument("--data-bits", type=int, default=8)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--rounds", type=int, default=8)
    simulate.add_argument("--backend", choices=("reference", "packed", "auto"),
                          default="reference",
                          help="GF(2) kernel backend for the simulated chip's on-die ECC")
    simulate.add_argument("--output", required=True, help="where to write the profile JSON")

    einsim = subparsers.add_parser(
        "einsim",
        help="run a Monte-Carlo ECC-word simulation and emit per-bit error statistics",
    )
    einsim.add_argument("--data-bits", type=int, default=32)
    einsim.add_argument("--num-words", type=int, default=100_000)
    einsim.add_argument("--ber", type=float, default=1e-3,
                        help="uniform-random pre-correction bit error rate")
    einsim.add_argument("--seed", type=int, default=0)
    einsim.add_argument("--backend", choices=("reference", "packed", "auto"),
                        default="reference",
                        help="GF(2) kernel backend for encode/decode")
    einsim.add_argument("--chunk-size", type=int, default=65536,
                        help="ECC words simulated per batch")
    einsim.add_argument("--processes", type=int, default=1,
                        help="worker processes for the chunked campaign runner")
    einsim.add_argument("--output", default=None,
                        help="write the per-bit figure data to a JSON file")

    beep = subparsers.add_parser(
        "beep", help="demonstrate BEEP on a simulated ECC word with known weak cells"
    )
    beep.add_argument("--data-bits", type=int, default=16)
    beep.add_argument("--error-positions", required=True,
                      help="comma-separated codeword positions of the weak cells")
    beep.add_argument("--passes", type=int, default=2)
    beep.add_argument("--probability", type=float, default=1.0,
                      help="per-bit failure probability of the weak cells")
    beep.add_argument("--seed", type=int, default=0)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``beer-tool`` console script."""
    args = build_parser().parse_args(argv)
    handlers = {
        "solve": _run_solve,
        "verify": _run_verify,
        "simulate-profile": _run_simulate_profile,
        "beep": _run_beep,
        "einsim": _run_einsim,
    }
    return handlers[args.command](args)


# -- subcommand implementations -------------------------------------------------
def _run_solve(args) -> int:
    profile = _load_profile(args.profile)
    parity_bits = args.parity_bits or min_parity_bits(profile.num_data_bits)
    if args.backend == "sat":
        solver = SatBeerSolver(profile.num_data_bits, parity_bits)
    else:
        solver = BeerSolver(profile.num_data_bits, parity_bits)
    solution = solver.solve(profile, max_solutions=args.max_solutions)

    print(f"profile: k={profile.num_data_bits}, {len(profile.patterns)} patterns, "
          f"{profile.total_miscorrections} miscorrection entries")
    print(f"solver backend: {args.backend}")
    print(f"candidate ECC functions found: {solution.num_solutions}"
          + (" (search truncated)" if solution.truncated else ""))
    for index, code in enumerate(solution.codes):
        print(f"\ncandidate {index}: parity columns {list(code.parity_column_ints)}")
        print(code.parity_check_matrix)

    if args.output:
        payload = {
            "num_data_bits": profile.num_data_bits,
            "num_parity_bits": parity_bits,
            "backend": args.backend,
            "truncated": solution.truncated,
            "candidates": [list(code.parity_column_ints) for code in solution.codes],
        }
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"\nwrote solutions to {args.output}")
    return 0 if solution.num_solutions > 0 else 1


def _run_verify(args) -> int:
    profile = _load_profile(args.profile)
    columns = _parse_int_list(args.columns)
    parity_bits = args.parity_bits or min_parity_bits(profile.num_data_bits)
    code = SystematicLinearCode.from_parity_columns(columns, parity_bits)
    matches = BeerSolver.verify(code, profile)
    print("MATCH" if matches else "MISMATCH")
    return 0 if matches else 1


def _run_simulate_profile(args) -> int:
    vendor = next(v for v in all_vendors() if v.name == args.vendor)
    chip = vendor.make_chip(
        num_data_bits=args.data_bits,
        geometry=ChipGeometry(num_rows=32, words_per_row=8),
        seed=args.seed,
        retention_model=_FAST_RETENTION,
        backend=args.backend,
    )
    config = ExperimentConfig(
        pattern_weights=(1, 2),
        refresh_windows_s=(30.0, 45.0, 60.0),
        rounds_per_window=args.rounds,
        threshold=0.0,
        discover_cell_encoding=True,
        discovery_pause_s=60.0,
    )
    result = BeerExperiment(chip, config).run(solve=False)
    with open(args.output, "w") as handle:
        json.dump(result.profile.to_dict(), handle, indent=2)
    print(f"simulated a vendor-{vendor.name} chip with k={args.data_bits} and wrote "
          f"{len(result.profile.patterns)} pattern entries to {args.output}")
    return 0


def _run_beep(args) -> int:
    code = random_hamming_code(args.data_bits, rng=np.random.default_rng(args.seed))
    positions = _parse_int_list(args.error_positions)
    word = SimulatedWordUnderTest(
        code, positions, per_bit_probability=args.probability,
        rng=np.random.default_rng(args.seed + 1),
    )
    result = BeepProfiler(code).profile(word, num_passes=args.passes)
    identified = sorted(result.identified_errors)
    print(f"ECC function: ({code.codeword_length}, {code.num_data_bits}) SEC Hamming code")
    print(f"true weak cells:       {sorted(positions)}")
    print(f"identified weak cells: {identified}")
    print(f"patterns tested: {result.patterns_tested}, "
          f"miscorrections observed: {result.miscorrections_observed}")
    return 0 if set(identified) == set(positions) else 1


def _run_einsim(args) -> int:
    from repro.core import MonteCarloCampaign
    from repro.einsim import UniformRandomInjector

    code = random_hamming_code(args.data_bits, rng=np.random.default_rng(args.seed))
    campaign = MonteCarloCampaign(
        code,
        chunk_size=args.chunk_size,
        processes=args.processes,
        backend=args.backend,
        base_seed=args.seed,
    )
    injector = UniformRandomInjector(args.ber)
    result = campaign.simulate(
        GF2Vector.ones(code.num_data_bits), injector, args.num_words
    )

    payload = {
        "codeword_length": code.codeword_length,
        "num_data_bits": code.num_data_bits,
        "parity_columns": list(code.parity_column_ints),
        "num_words": result.num_words,
        "bit_error_rate": args.ber,
        "backend": campaign.backend,
        "post_correction_error_counts": [
            int(c) for c in result.post_correction_error_counts
        ],
        "pre_correction_error_counts": [
            int(c) for c in result.pre_correction_error_counts
        ],
        "uncorrectable_words": result.uncorrectable_words,
        "miscorrected_words": result.miscorrected_words,
        "miscorrection_positions": list(result.miscorrection_positions),
    }
    print(f"simulated {result.num_words} words of a "
          f"({code.codeword_length}, {code.num_data_bits}) SEC Hamming code "
          f"[{campaign.backend} backend]")
    print(f"uncorrectable words: {result.uncorrectable_words}, "
          f"miscorrected words: {result.miscorrected_words}")
    print("per-data-bit post-correction error counts: "
          + ",".join(str(int(c)) for c in result.post_correction_error_counts))
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote figure data to {args.output}")
    return 0


# -- helpers -----------------------------------------------------------------------
def _load_profile(path: str) -> MiscorrectionProfile:
    with open(path) as handle:
        payload = json.load(handle)
    return MiscorrectionProfile.from_dict(payload)


def _parse_int_list(text: str) -> List[int]:
    return [int(token) for token in text.split(",") if token.strip() != ""]


if __name__ == "__main__":
    sys.exit(main())
