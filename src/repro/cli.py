"""Command-line interface: the reproduction's analogue of the open-source BEER tool.

The paper releases a C++ application that takes an experimentally measured
miscorrection profile and determines the ECC function(s) that explain it.
This module provides the same workflow as a console script::

    beer-tool simulate-profile --vendor B --data-bits 8 --output profile.json
    beer-tool solve --profile profile.json [--backend fast|sat] [--max-solutions N]
    beer-tool verify --profile profile.json --columns 7,11,19,...
    beer-tool beep --data-bits 16 --error-positions 2,9 [--passes 2]
    beer-tool einsim --data-bits 32 --num-words 100000 --backend packed

The ``scenario`` command group drives the declarative fault-scenario
subsystem (:mod:`repro.scenarios`) with its persistent, content-addressed
campaign store (:mod:`repro.store`)::

    beer-tool scenario list
    beer-tool scenario run --scenario burst --param burst_probability=0.05 ...
    beer-tool scenario sweep --spec sweep.json --store campaign/ [--resume] [--jobs N]
    beer-tool scenario report --store campaign/

Simulation-heavy commands (``einsim``, ``simulate-profile``, ``scenario``)
accept ``--backend {reference,packed,fused,auto}`` selecting the GF(2)
kernel implementation; every backend produces bit-identical output for the
same seed, the packed and fused ones are simply faster.  ``solve``, ``simulate-profile``,
``einsim``, ``beep`` and ``scenario run`` accept ``--code-family`` choosing
the ECC code family (:mod:`repro.ecc.family`): SEC Hamming (default),
SEC-DED extended Hamming, parity-detect, or repetition.  Result-producing
commands accept ``--json`` to emit a single machine-readable JSON document
on stdout.

Simulation- and solver-heavy commands (``solve``, ``beep``, ``einsim``,
``scenario run``, ``scenario sweep``) accept ``--trace PATH`` writing a
structured JSONL trace (:mod:`repro.obs`: spans, counters, metric events;
multi-process sweeps merge worker segments deterministically).  The
``trace`` command group post-processes trace files::

    beer-tool trace summary trace.jsonl [--json]
    beer-tool trace report trace.jsonl [--json]
    beer-tool trace export trace.jsonl --output chrome.json
    beer-tool trace validate trace.jsonl

Profiles are exchanged as JSON in the format produced by
:meth:`repro.core.profile.MiscorrectionProfile.to_dict`.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import CodeConstructionError
from repro.gf2 import GF2Vector
from repro.ecc import FAMILY_NAMES, SystematicLinearCode, get_family
from repro.dram import ChipGeometry, DataRetentionModel, all_vendors
from repro.dram.retention import RetentionCalibration
from repro.core import (
    BeerExperiment,
    BeerSolver,
    ExperimentConfig,
    MiscorrectionProfile,
    SatBeerSolver,
)
from repro.core.beep import BeepProfiler, SimulatedWordUnderTest


#: Retention model used by ``simulate-profile`` so simulated campaigns finish
#: in seconds rather than the paper's hours of real refresh pauses.
_FAST_RETENTION = DataRetentionModel(RetentionCalibration(1.0, 0.02, 60.0, 0.5))


def _add_trace_argument(parser) -> None:
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a structured JSONL trace of this invocation (spans, "
             "counters, metric events; see `beer-tool trace summary`)")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``beer-tool`` console script."""
    parser = argparse.ArgumentParser(
        prog="beer-tool",
        description="BEER: determine DRAM on-die ECC functions from miscorrection profiles.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    solve = subparsers.add_parser(
        "solve", help="solve a miscorrection profile for the ECC function(s)"
    )
    solve.add_argument("--profile", required=True, help="path to a profile JSON file")
    solve.add_argument("--parity-bits", type=int, default=None,
                       help="number of parity bits (default: minimum for the dataword length)")
    solve.add_argument("--max-solutions", type=int, default=None,
                       help="stop after this many candidate functions")
    solve.add_argument("--backend", choices=("fast", "sat"), default="fast",
                       help="constraint-propagation backend (fast) or CNF/CDCL backend (sat)")
    solve.add_argument("--code-family", choices=FAMILY_NAMES, default="sec-hamming",
                       help="code family whose design space is searched "
                            "(families with a fixed structure cannot be solved for)")
    solve.add_argument("--output", default=None, help="write the solutions to a JSON file")
    solve.add_argument("--sat-stats", action="store_true",
                       help="report incremental CDCL solver statistics "
                            "(requires --backend sat)")
    solve.add_argument("--json", action="store_true",
                       help="print a machine-readable JSON document instead of text")
    _add_trace_argument(solve)

    verify = subparsers.add_parser(
        "verify", help="check that a parity-check matrix reproduces a profile"
    )
    verify.add_argument("--profile", required=True, help="path to a profile JSON file")
    verify.add_argument("--columns", required=True,
                        help="comma-separated integer columns of P (LSB = parity row 0)")
    verify.add_argument("--parity-bits", type=int, default=None)

    simulate = subparsers.add_parser(
        "simulate-profile",
        help="run a BEER campaign against a simulated chip and export its profile",
    )
    simulate.add_argument("--vendor", choices=("A", "B", "C"), default="A")
    simulate.add_argument("--data-bits", type=int, default=8)
    simulate.add_argument("--code-family", choices=FAMILY_NAMES, default="sec-hamming",
                          help="code family of the simulated chip's on-die ECC "
                               "(must have a searchable design space)")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--rounds", type=int, default=8)
    simulate.add_argument("--backend",
                          choices=("reference", "packed", "fused", "auto"),
                          default="reference",
                          help="GF(2) kernel backend for the simulated chip's on-die ECC")
    simulate.add_argument("--output", required=True, help="where to write the profile JSON")
    simulate.add_argument("--json", action="store_true",
                          help="print a machine-readable JSON document instead of text")

    einsim = subparsers.add_parser(
        "einsim",
        help="run a Monte-Carlo ECC-word simulation and emit per-bit error statistics",
    )
    einsim.add_argument("--data-bits", type=int, default=32)
    einsim.add_argument("--code-family", choices=FAMILY_NAMES, default="sec-hamming",
                        help="code family to simulate (detect-only families "
                             "report DUEs instead of corrections)")
    einsim.add_argument("--num-words", type=int, default=100_000)
    einsim.add_argument("--ber", type=float, default=1e-3,
                        help="uniform-random pre-correction bit error rate")
    einsim.add_argument("--seed", type=int, default=0)
    einsim.add_argument("--backend",
                        choices=("reference", "packed", "fused", "auto"),
                        default="reference",
                        help="GF(2) kernel backend for encode/decode")
    einsim.add_argument("--chunk-size", type=int, default=65536,
                        help="ECC words simulated per batch")
    einsim.add_argument("--processes", type=int, default=1,
                        help="worker processes for the chunked campaign runner")
    einsim.add_argument("--output", default=None,
                        help="write the per-bit figure data to a JSON file")
    einsim.add_argument("--json", action="store_true",
                        help="print the figure data as JSON on stdout instead of text")
    _add_trace_argument(einsim)

    beep = subparsers.add_parser(
        "beep", help="demonstrate BEEP on a simulated ECC word with known weak cells"
    )
    beep.add_argument("--data-bits", type=int, default=16)
    beep.add_argument("--code-family", choices=FAMILY_NAMES, default="sec-hamming",
                      help="code family of the word under test (BEEP needs a "
                           "correcting family: miscorrections are its signal)")
    beep.add_argument("--error-positions", required=True,
                      help="comma-separated codeword positions of the weak cells")
    beep.add_argument("--passes", type=int, default=2)
    beep.add_argument("--probability", type=float, default=1.0,
                      help="per-bit failure probability of the weak cells")
    beep.add_argument("--seed", type=int, default=0)
    beep.add_argument("--pattern-backend", choices=("gf2", "sat"), default="gf2",
                      help="charge-constraint backend for pattern crafting: "
                           "GF(2) elimination or the incremental CDCL solver")
    beep.add_argument("--sat-stats", action="store_true",
                      help="report the incremental solver's statistics "
                           "(requires --pattern-backend sat)")
    beep.add_argument("--json", action="store_true",
                      help="print a machine-readable JSON document instead of text")
    _add_trace_argument(beep)

    _add_scenario_parser(subparsers)
    _add_store_parser(subparsers)
    _add_trace_parser(subparsers)

    from repro.bench.cli import add_bench_parser

    add_bench_parser(subparsers)
    _add_lint_parser(subparsers)

    return parser


def _add_scenario_parser(subparsers) -> None:
    scenario = subparsers.add_parser(
        "scenario",
        help="declarative fault-scenario sweeps with a persistent campaign store",
    )
    commands = scenario.add_subparsers(dest="scenario_command", required=True)

    listing = commands.add_parser("list", help="list the registered fault scenarios")
    listing.add_argument("--json", action="store_true",
                         help="print the registry as JSON")

    run = commands.add_parser(
        "run", help="run a single scenario cell (optionally cached in a store)"
    )
    run.add_argument("--scenario", required=True, help="registered scenario name")
    run.add_argument("--param", action="append", default=[], metavar="KEY=VALUE",
                     help="scenario parameter (repeatable; values parsed as JSON)")
    run.add_argument("--data-bits", type=int, default=16)
    run.add_argument("--code-family", choices=FAMILY_NAMES, default="sec-hamming",
                     help="code family of the simulated ECC (participates in "
                          "the cell's content-addressed store key)")
    run.add_argument("--code-seed", type=int, default=None,
                     help="sample a random code with this seed (default: deterministic code)")
    run.add_argument("--dataword", default="ones",
                     help="dataword pattern: ones, zeros or alternating")
    run.add_argument("--num-words", type=int, default=10_000)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--backend",
                     choices=("reference", "packed", "fused", "auto"),
                     default="packed")
    run.add_argument("--chunk-size", type=int, default=65536)
    run.add_argument("--processes", type=int, default=1)
    run.add_argument("--jobs", type=int, default=1,
                     help="accepted for symmetry with `scenario sweep`; a "
                          "single cell always runs in-process (use "
                          "--processes for intra-cell parallelism)")
    run.add_argument("--store", default=None,
                     help="campaign directory; hits are served from the cache")
    _add_layout_argument(run)
    run.add_argument("--json", action="store_true",
                     help="print the cell result as JSON")
    _add_trace_argument(run)

    sweep = commands.add_parser(
        "sweep", help="expand a sweep spec and run its full experiment matrix"
    )
    sweep.add_argument("--spec", required=True, help="path to a sweep-spec JSON file")
    sweep.add_argument("--store", required=True, help="campaign directory")
    _add_layout_argument(sweep)
    sweep.add_argument("--resume", action="store_true",
                       help="continue a partially-completed sweep (sweeps are "
                            "content-addressed, so completed cells are never re-run)")
    sweep.add_argument("--processes", type=int, default=1)
    sweep.add_argument("--jobs", type=int, default=1,
                       help="cells executed concurrently, one worker process "
                            "each (results are byte-identical for any value)")
    sweep.add_argument("--max-cells", type=int, default=None,
                       help="stop after this many fresh simulations (checkpointing; "
                            "exits 3 when the sweep is left incomplete)")
    sweep.add_argument("--json", action="store_true",
                       help="print the sweep report as JSON")
    sweep.add_argument("--progress", action="store_true",
                       help="render a live progress line (cells/sec, ETA) on stderr")
    _add_trace_argument(sweep)

    report = commands.add_parser(
        "report", help="summarise the contents of a campaign store"
    )
    report.add_argument("--store", required=True, help="campaign directory")
    report.add_argument("--json", action="store_true",
                        help="print the report as JSON")


def _add_layout_argument(parser) -> None:
    parser.add_argument(
        "--layout", choices=("auto", "single-file", "sharded"), default="auto",
        help="store layout for a *new* campaign directory: single-file "
             "(v1 records.jsonl) or sharded (v2 key-prefix segments with a "
             "compacted index); existing directories are auto-detected and "
             "a conflicting explicit layout fails (use `repro store "
             "migrate` to convert)")


def _add_store_parser(subparsers) -> None:
    store = subparsers.add_parser(
        "store",
        help="campaign-store lifecycle: stat, verify, compact, gc, migrate",
    )
    commands = store.add_subparsers(dest="store_command", required=True)

    stat = commands.add_parser(
        "stat", help="summarise a store: layout, records, bytes, segments"
    )
    stat.add_argument("directory", help="campaign store directory")
    stat.add_argument("--json", action="store_true",
                      help="print the summary as JSON")

    verify = commands.add_parser(
        "verify",
        help="deep-verify every record byte and index entry (exit 1 on "
             "problems)",
    )
    verify.add_argument("directory", help="campaign store directory")
    verify.add_argument("--json", action="store_true",
                        help="print the verification report as JSON")

    compact = commands.add_parser(
        "compact",
        help="rewrite segments canonically, dropping index garbage and "
             "stray bytes",
    )
    compact.add_argument("directory", help="campaign store directory")
    compact.add_argument("--json", action="store_true",
                         help="print the compaction summary as JSON")

    gc = commands.add_parser(
        "gc",
        help="remove dead artefacts: tmp files, stale locks, interrupted-"
             "migration leftovers",
    )
    gc.add_argument("directory", help="campaign store directory")
    gc.add_argument("--json", action="store_true",
                    help="print the removed artefacts as JSON")

    migrate = commands.add_parser(
        "migrate",
        help="convert a store between layouts (v1 single-file <-> v2 "
             "sharded) with a proven record round-trip",
    )
    migrate.add_argument("directory", help="campaign store directory")
    migrate.add_argument("--to", required=True, dest="to_layout",
                         choices=("single-file", "sharded"),
                         help="target layout")
    migrate.add_argument("--json", action="store_true",
                         help="print the migration summary as JSON")


def _add_trace_parser(subparsers) -> None:
    trace = subparsers.add_parser(
        "trace", help="inspect, aggregate and export structured trace files"
    )
    commands = trace.add_subparsers(dest="trace_command", required=True)

    summary = commands.add_parser(
        "summary", help="aggregate span/counter totals of a trace file"
    )
    summary.add_argument("path", help="trace JSONL file (from --trace)")
    summary.add_argument("--json", action="store_true",
                         help="print the aggregate summary as JSON")

    report = commands.add_parser(
        "report",
        help="full report: summary plus per-process totals and slowest spans",
    )
    report.add_argument("path", help="trace JSONL file (from --trace)")
    report.add_argument("--limit", type=int, default=10,
                        help="slowest span instances to list")
    report.add_argument("--json", action="store_true",
                        help="print the report as JSON")

    export = commands.add_parser(
        "export",
        help="convert a trace to Chrome trace-event JSON (chrome://tracing, Perfetto)",
    )
    export.add_argument("path", help="trace JSONL file (from --trace)")
    export.add_argument("--output", required=True,
                        help="where to write the Chrome trace JSON")

    validate = commands.add_parser(
        "validate", help="schema-validate a trace file (exit 1 on violations)"
    )
    validate.add_argument("path", help="trace JSONL file (from --trace)")
    validate.add_argument("--json", action="store_true",
                          help="print the validation outcome as JSON")


def _add_lint_parser(subparsers) -> None:
    from repro.lint.cli import add_lint_parser

    add_lint_parser(subparsers)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``beer-tool`` console script."""
    args = build_parser().parse_args(argv)
    from repro.lint.cli import handle_lint

    handlers = {
        "solve": _run_solve,
        "verify": _run_verify,
        "simulate-profile": _run_simulate_profile,
        "beep": _run_beep,
        "einsim": _run_einsim,
        "scenario": _run_scenario,
        "store": _run_store,
        "bench": _run_bench,
        "trace": _run_trace,
        "lint": handle_lint,
    }
    handler = handlers[args.command]
    trace_path = getattr(args, "trace", None)
    if trace_path is None:
        return handler(args)
    return _run_traced(handler, args, trace_path)


def _run_traced(handler, args, trace_path: str) -> int:
    """Run a subcommand with the process-wide tracer writing to ``trace_path``."""
    import os

    from repro.obs import TRACER

    TRACER.enable(sink_path=trace_path, meta={"command": args.command})
    try:
        with TRACER.span(f"cli.{args.command}"):
            exit_code = handler(args)
        TRACER.flush()
    finally:
        TRACER.disable()
    # Sweeps create a segment directory for worker trace files; every segment
    # is adopted and removed at commit, so an empty leftover is just noise.
    try:
        os.rmdir(trace_path + ".segments")
    except OSError:
        pass
    print(f"wrote trace to {trace_path}", file=sys.stderr)
    return exit_code


def _run_bench(args) -> int:
    from repro.bench.cli import handle_bench

    return handle_bench(args)


# -- trace command group ------------------------------------------------------------
def _run_trace(args) -> int:
    handlers = {
        "summary": _run_trace_summary,
        "report": _run_trace_report,
        "export": _run_trace_export,
        "validate": _run_trace_validate,
    }
    return handlers[args.trace_command](args)


def _run_trace_summary(args) -> int:
    from repro.obs import format_summary_text, summarize_trace

    summary = summarize_trace(args.path)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(format_summary_text(summary))
    return 0


def _run_trace_report(args) -> int:
    from repro.obs import (
        format_summary_text,
        per_process_totals,
        read_trace,
        slowest_spans,
        summarize_events,
    )

    events = read_trace(args.path)
    summary = summarize_events(events)
    processes = per_process_totals(events)
    slowest = slowest_spans(events, limit=args.limit)
    if args.json:
        print(json.dumps(
            {"summary": summary, "per_process": processes, "slowest_spans": slowest},
            indent=2, sort_keys=True,
        ))
        return 0
    print(format_summary_text(summary))
    print("\nper-process span time:")
    for row in processes:
        print(f"  pid {row['pid']}: {row['events']} events, {row['spans']} spans, "
              f"{row['span_s']:.3f}s total span time")
    print(f"\nslowest {len(slowest)} span instances:")
    for row in slowest:
        print(f"  {row['dur_s']:.4f}s  {row['name']}  [{row['id']}]")
    return 0


def _run_trace_export(args) -> int:
    from repro.obs import write_chrome_trace

    count = write_chrome_trace(args.path, args.output)
    print(f"wrote {count} Chrome trace events to {args.output} "
          "(load in chrome://tracing or https://ui.perfetto.dev)")
    return 0


def _run_trace_validate(args) -> int:
    from repro.obs import TraceValidationError, read_trace, validate_events

    try:
        events = read_trace(args.path)
        violations = validate_events(events)
    except TraceValidationError as error:
        events, violations = [], [str(error)]
    if args.json:
        print(json.dumps(
            {"valid": not violations, "num_events": len(events),
             "violations": violations},
            indent=2,
        ))
    elif violations:
        for violation in violations:
            print(f"INVALID: {violation}")
    else:
        print(f"OK: {len(events)} events")
    return 1 if violations else 0


# -- subcommand implementations -------------------------------------------------
def _run_solve(args) -> int:
    if args.sat_stats and args.backend != "sat":
        print("--sat-stats requires --backend sat", file=sys.stderr)
        return 2
    family = get_family(args.code_family)
    if not family.supports_beer:
        print(f"code family {family.name!r} has a fixed structure; there is "
              "no design space to solve for", file=sys.stderr)
        return 2
    profile = _load_profile(args.profile)
    parity_bits = args.parity_bits or family.min_parity_bits(profile.num_data_bits)
    if args.backend == "sat":
        solver = SatBeerSolver(profile.num_data_bits, parity_bits, family=family)
    else:
        solver = BeerSolver(profile.num_data_bits, parity_bits, family=family)
    solution = solver.solve(profile, max_solutions=args.max_solutions)

    payload = {
        "num_data_bits": profile.num_data_bits,
        "num_parity_bits": parity_bits,
        "backend": args.backend,
        "code_family": family.name,
        "design_space_columns": solution.design_space_columns,
        "truncated": solution.truncated,
        "num_solutions": solution.num_solutions,
        "candidates": [list(code.parity_column_ints) for code in solution.codes],
    }
    if args.sat_stats:
        payload["solver_stats"] = solution.solver_stats
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(f"profile: k={profile.num_data_bits}, {len(profile.patterns)} patterns, "
              f"{profile.total_miscorrections} miscorrection entries")
        print(f"solver backend: {args.backend}")
        print(f"code family: {family.name} "
              f"({solution.design_space_columns} legal column values)")
        print(f"candidate ECC functions found: {solution.num_solutions}"
              + (" (search truncated)" if solution.truncated else ""))
        for index, code in enumerate(solution.codes):
            print(f"\ncandidate {index}: parity columns {list(code.parity_column_ints)}")
            print(code.parity_check_matrix)
        if args.sat_stats:
            _print_sat_stats(solution.solver_stats)

    if args.output:
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2)
        if not args.json:
            print(f"\nwrote solutions to {args.output}")
    return 0 if solution.num_solutions > 0 else 1


def _run_verify(args) -> int:
    profile = _load_profile(args.profile)
    columns = _parse_int_list(args.columns)
    parity_bits = args.parity_bits or get_family("sec-hamming").min_parity_bits(
        profile.num_data_bits
    )
    code = SystematicLinearCode.from_parity_columns(columns, parity_bits)
    matches = BeerSolver.verify(code, profile)
    print("MATCH" if matches else "MISMATCH")
    return 0 if matches else 1


def _run_simulate_profile(args) -> int:
    family = get_family(args.code_family)
    if not family.supports_beer:
        print(f"code family {family.name!r} has a fixed structure; a BEER "
              "campaign against it has nothing to recover", file=sys.stderr)
        return 2
    vendor = next(v for v in all_vendors() if v.name == args.vendor)
    chip = vendor.make_chip(
        num_data_bits=args.data_bits,
        geometry=ChipGeometry(num_rows=32, words_per_row=8),
        seed=args.seed,
        retention_model=_FAST_RETENTION,
        backend=args.backend,
        code_family=family.name,
    )
    config = ExperimentConfig(
        pattern_weights=(1, 2),
        refresh_windows_s=(30.0, 45.0, 60.0),
        rounds_per_window=args.rounds,
        threshold=0.0,
        discover_cell_encoding=True,
        discovery_pause_s=60.0,
    )
    result = BeerExperiment(chip, config).run(solve=False)
    with open(args.output, "w") as handle:
        json.dump(result.profile.to_dict(), handle, indent=2)
    if args.json:
        print(json.dumps({
            "vendor": vendor.name,
            "num_data_bits": args.data_bits,
            "code_family": family.name,
            "backend": args.backend,
            "num_entries": len(result.profile.patterns),
            "output": args.output,
        }, indent=2))
    else:
        print(f"simulated a vendor-{vendor.name} chip with k={args.data_bits} "
              f"({family.name} on-die ECC) and wrote "
              f"{len(result.profile.patterns)} pattern entries to {args.output}")
    return 0


def _run_beep(args) -> int:
    if args.sat_stats and args.pattern_backend != "sat":
        print("--sat-stats requires --pattern-backend sat", file=sys.stderr)
        return 2
    family = get_family(args.code_family)
    try:
        code = family.random(args.data_bits, rng=np.random.default_rng(args.seed))
    except CodeConstructionError as error:
        print(str(error), file=sys.stderr)
        return 2
    if code.detect_only:
        print(f"code family {family.name!r} is detect-only; BEEP needs a "
              "correcting family (miscorrections are its signal)",
              file=sys.stderr)
        return 2
    positions = _parse_int_list(args.error_positions)
    word = SimulatedWordUnderTest(
        code, positions, per_bit_probability=args.probability,
        rng=np.random.default_rng(args.seed + 1),
    )
    profiler = BeepProfiler(code, pattern_backend=args.pattern_backend)
    result = profiler.profile(word, num_passes=args.passes)
    identified = sorted(result.identified_errors)
    fully_identified = set(identified) == set(positions)
    if args.json:
        payload = {
            "codeword_length": code.codeword_length,
            "num_data_bits": code.num_data_bits,
            "code_family": code.family_name,
            "true_positions": sorted(positions),
            "identified_positions": identified,
            "patterns_tested": result.patterns_tested,
            "miscorrections_observed": result.miscorrections_observed,
            "fully_identified": fully_identified,
            "pattern_backend": profiler.pattern_backend,
        }
        if args.sat_stats:
            payload["sat_solver_stats"] = profiler.sat_solver_stats()
        print(json.dumps(payload, indent=2))
    else:
        print(f"ECC function: ({code.codeword_length}, {code.num_data_bits}) "
              f"{code.family_name} code")
        print(f"true weak cells:       {sorted(positions)}")
        print(f"identified weak cells: {identified}")
        print(f"patterns tested: {result.patterns_tested}, "
              f"miscorrections observed: {result.miscorrections_observed}")
        if args.sat_stats:
            _print_sat_stats(profiler.sat_solver_stats())
    return 0 if fully_identified else 1


def _print_sat_stats(stats) -> None:
    print("\nSAT solver statistics (incremental CDCL):")
    for key, value in sorted((stats or {}).items()):
        print(f"  {key}: {value}")


def _run_einsim(args) -> int:
    from repro.core import MonteCarloCampaign
    from repro.einsim import UniformRandomInjector

    family = get_family(args.code_family)
    try:
        code = family.random(args.data_bits, rng=np.random.default_rng(args.seed))
    except CodeConstructionError as error:
        print(str(error), file=sys.stderr)
        return 2
    campaign = MonteCarloCampaign(
        code,
        chunk_size=args.chunk_size,
        processes=args.processes,
        backend=args.backend,
        base_seed=args.seed,
    )
    injector = UniformRandomInjector(args.ber)
    result = campaign.simulate(
        GF2Vector.ones(code.num_data_bits), injector, args.num_words
    )

    payload = {
        "codeword_length": code.codeword_length,
        "num_data_bits": code.num_data_bits,
        "code_family": code.family_name,
        "parity_columns": list(code.parity_column_ints),
        "num_words": result.num_words,
        "bit_error_rate": args.ber,
        "backend": campaign.backend,
        "post_correction_error_counts": [
            int(c) for c in result.post_correction_error_counts
        ],
        "pre_correction_error_counts": [
            int(c) for c in result.pre_correction_error_counts
        ],
        "uncorrectable_words": result.uncorrectable_words,
        "miscorrected_words": result.miscorrected_words,
        "detected_words": result.detected_words,
        "miscorrection_positions": list(result.miscorrection_positions),
    }
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(f"simulated {result.num_words} words of a "
              f"({code.codeword_length}, {code.num_data_bits}) {code.family_name} "
              f"code [{campaign.backend} backend]")
        print(f"uncorrectable words: {result.uncorrectable_words}, "
              f"miscorrected words: {result.miscorrected_words}, "
              f"detected (DUE) words: {result.detected_words}")
        print("per-data-bit post-correction error counts: "
              + ",".join(str(int(c)) for c in result.post_correction_error_counts))
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2)
        if not args.json:
            print(f"wrote figure data to {args.output}")
    return 0


# -- scenario command group ---------------------------------------------------------
def _run_scenario(args) -> int:
    handlers = {
        "list": _run_scenario_list,
        "run": _run_scenario_run,
        "sweep": _run_scenario_sweep,
        "report": _run_scenario_report,
    }
    return handlers[args.scenario_command](args)


def _run_scenario_list(args) -> int:
    from repro.scenarios import all_scenarios, REQUIRED

    definitions = all_scenarios()
    if args.json:
        print(json.dumps([
            {
                "name": definition.name,
                "description": definition.description,
                "parameters": {
                    key: ("<required>" if value is REQUIRED else value)
                    for key, value in sorted(definition.defaults.items())
                },
            }
            for definition in definitions
        ], indent=2))
        return 0
    for definition in definitions:
        print(f"{definition.name}: {definition.description}")
        for key, value in sorted(definition.defaults.items()):
            rendered = "<required>" if value is REQUIRED else repr(value)
            print(f"    {key} = {rendered}")
    return 0


def _run_scenario_run(args) -> int:
    from repro.scenarios import SweepRunner, make_einsim_cell
    from repro.store import CampaignStore

    params = {}
    for item in args.param:
        if "=" not in item:
            raise SystemExit(f"--param expects KEY=VALUE, got {item!r}")
        key, _, raw = item.partition("=")
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw

    code_spec = {"data_bits": args.data_bits}
    if args.code_family != "sec-hamming":
        # Only a non-default family is recorded, keeping historical cell
        # configurations (and their content-addressed keys) unchanged.
        code_spec["code_family"] = args.code_family
    if args.code_seed is not None:
        code_spec["code_seed"] = args.code_seed
    cell = make_einsim_cell(
        scenario=args.scenario,
        params=params,
        code=code_spec,
        num_words=args.num_words,
        seed=args.seed,
        backend=args.backend,
        dataword=args.dataword,
        chunk_size=args.chunk_size,
    )
    store = (
        CampaignStore(args.store, layout=args.layout) if args.store else None
    )
    runner = SweepRunner(store=store, processes=args.processes, jobs=args.jobs)
    outcome = runner.run_one(cell)
    cached, result = outcome.cached, outcome.record.result

    if args.json:
        print(json.dumps(
            {"key": cell.key(), "cached": cached, "config": cell.config(),
             "result": result},
            indent=2, sort_keys=True,
        ))
    else:
        source = "cache" if cached else "simulation"
        print(f"scenario {args.scenario} [{source}]: "
              f"{result['num_words']} words of a "
              f"({result['codeword_length']}, {result['num_data_bits']}) code")
        print(f"uncorrectable words: {result['uncorrectable_words']}, "
              f"miscorrected words: {result['miscorrected_words']}")
        print(f"store key: {cell.key()}")
    return 0


def _run_scenario_sweep(args) -> int:
    from repro.scenarios import SweepRunner, SweepSpec
    from repro.store import CampaignStore

    spec = SweepSpec.from_json_file(args.spec)
    store = CampaignStore(args.store, layout=args.layout)
    runner = SweepRunner(store=store, processes=args.processes, jobs=args.jobs)
    progress_line = None
    progress = None
    if args.progress:
        from repro.obs import ProgressLine

        progress_line = ProgressLine(spec.name, spec.num_cells)

        def progress(outcome, line=progress_line):
            line.update(outcome.cached)
    try:
        report = runner.run(
            spec, max_new_simulations=args.max_cells, progress=progress
        )
    finally:
        if progress_line is not None:
            progress_line.finish()

    if args.json:
        payload = report.to_dict()
        payload["store"] = store.directory
        print(json.dumps(payload, indent=2))
    else:
        status = "completed" if report.completed else "interrupted (resume to finish)"
        print(f"sweep {report.spec_name}: {report.total_cells} cells, "
              f"{report.simulated} simulated, {report.cached} served from cache")
        print(f"store: {store.directory} [{status}]")
        if report.cached and not args.resume:
            print("note: cells already present in the store were served from "
                  "cache (pass --resume to mark this as an intentional "
                  "continuation)")
    return 0 if report.completed else 3


def _run_scenario_report(args) -> int:
    from repro.analysis import campaign_report_data
    from repro.store import CampaignStore

    store = CampaignStore(args.store)
    data = campaign_report_data(store)
    if args.json:
        print(json.dumps(data, indent=2))
        return 0
    print(f"campaign store {store.directory}: {data['num_records']} records")
    for row in data["scenarios"]:
        families = ",".join(row["code_families"]) or "sec-hamming"
        print(f"  scenario {row['scenario']}: {row['cells']} cells, "
              f"{row['num_words']} words, "
              f"post-correction BER {row['post_correction_ber']:.3e}, "
              f"uncorrectable {row['uncorrectable_fraction']:.3%}, "
              f"DUE {row['detected_fraction']:.3%} [{families}]")
    for row in data["beer_campaigns"]:
        print(f"  BEER vendor {row['vendor']}: {row['cells']} campaigns, "
              f"{row['num_patterns']} patterns, "
              f"{row['total_miscorrections']} miscorrection entries")
        if row["solved_cells"]:
            print(f"    SAT ({row['solved_cells']} solved cells): "
                  f"{row['sat_conflicts']} conflicts, "
                  f"{row['sat_decisions']} decisions, "
                  f"{row['sat_propagations']} propagations")
    return 0


def _run_store(args) -> int:
    handlers = {
        "stat": _run_store_stat,
        "verify": _run_store_verify,
        "compact": _run_store_compact,
        "gc": _run_store_gc,
        "migrate": _run_store_migrate,
    }
    return handlers[args.store_command](args)


def _run_store_stat(args) -> int:
    from repro.store import store_stat

    stat = store_stat(args.directory)
    if args.json:
        print(json.dumps(stat, indent=2, sort_keys=True))
        return 0
    print(f"store {stat['directory']}: layout {stat['layout']}, "
          f"{stat['records']} records, {stat['bytes']} bytes in "
          f"{stat['segments']} segment(s)")
    for row in stat.get("segment_detail", []):
        print(f"  segment {row['segment']}: {row['records']} records, "
              f"{row['bytes']} bytes (+{row['index_bytes']} index)")
    return 0


def _run_store_verify(args) -> int:
    from repro.store import store_verify

    report = store_verify(args.directory)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0 if report["ok"] else 1
    if report["ok"]:
        print(f"store {report['directory']}: OK "
              f"({report['records']} records verified, layout "
              f"{report['layout']})")
        return 0
    print(f"store {report['directory']}: {len(report['problems'])} problem(s)")
    for problem in report["problems"]:
        print(f"  {problem}")
    return 1


def _run_store_compact(args) -> int:
    from repro.store import store_compact

    summary = store_compact(args.directory)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    reclaimed = summary["bytes_before"] - summary["bytes_after"]
    print(f"store {summary['directory']}: compacted "
          f"{summary['segments_compacted']} segment(s), "
          f"{summary['records']} records, {reclaimed} bytes reclaimed")
    return 0


def _run_store_gc(args) -> int:
    from repro.store import store_gc

    summary = store_gc(args.directory)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    removed = summary["removed"]
    total = sum(len(paths) for paths in removed.values())
    print(f"store {summary['directory']}: removed {total} dead artefact(s)")
    for kind in sorted(removed):
        for path in removed[kind]:
            print(f"  [{kind}] {path}")
    return 0


def _run_store_migrate(args) -> int:
    from repro.store import store_migrate

    summary = store_migrate(args.directory, args.to_layout)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    if not summary["migrated"]:
        print(f"store {summary['directory']}: already {summary['to']} "
              f"({summary['records']} records); nothing to do")
        return 0
    print(f"store {summary['directory']}: migrated {summary['from']} -> "
          f"{summary['to']} ({summary['records']} records, round-trip "
          "verified)")
    return 0


# -- helpers -----------------------------------------------------------------------
def _load_profile(path: str) -> MiscorrectionProfile:
    with open(path) as handle:
        payload = json.load(handle)
    return MiscorrectionProfile.from_dict(payload)


def _parse_int_list(text: str) -> List[int]:
    return [int(token) for token in text.split(",") if token.strip() != ""]


if __name__ == "__main__":
    sys.exit(main())
