"""Structured tracing and metrics for the reproduction's hot subsystems.

``repro.obs`` is a dependency-free observability layer: context-manager
**spans** (monotonic wall time, nesting, arbitrary attributes),
**counters/gauges** (cache hits, SAT conflicts, words decoded, lock-wait
seconds, fsync latency, ...), and **metric events** (periodic
``SolverStats`` snapshots), all collected by one process-wide
:class:`~repro.obs.core.Tracer` that is disabled by default and costs a
single attribute check per instrumented operation while disabled.

Traces serialise to a JSONL file (schema in :mod:`repro.obs.schema`);
multi-process sweeps merge per-worker segment files deterministically
(:meth:`~repro.obs.core.Tracer.adopt_segment`), preserving span nesting
across the process boundary — and never touching ``records.jsonl``, which
stays byte-identical with tracing on or off.  :mod:`repro.obs.report`
aggregates a trace into span totals/percentiles and counter sums;
:mod:`repro.obs.export` converts it to the Chrome trace-event format for
``chrome://tracing`` / Perfetto.
"""

from repro.obs.core import (
    NOOP_SPAN,
    TRACE_VERSION,
    TRACER,
    Span,
    Tracer,
    add,
    enabled,
    event,
    gauge,
    span,
)
from repro.obs.export import chrome_trace, write_chrome_trace
from repro.obs.progress import ProgressLine
from repro.obs.report import (
    format_summary_text,
    per_process_totals,
    slowest_spans,
    summarize_events,
    summarize_trace,
)
from repro.obs.schema import (
    TraceValidationError,
    read_trace,
    validate_event,
    validate_events,
    validate_trace_file,
)

__all__ = [
    "NOOP_SPAN",
    "TRACE_VERSION",
    "TRACER",
    "Span",
    "Tracer",
    "add",
    "enabled",
    "event",
    "gauge",
    "span",
    "chrome_trace",
    "write_chrome_trace",
    "ProgressLine",
    "format_summary_text",
    "per_process_totals",
    "slowest_spans",
    "summarize_events",
    "summarize_trace",
    "TraceValidationError",
    "read_trace",
    "validate_event",
    "validate_events",
    "validate_trace_file",
]
