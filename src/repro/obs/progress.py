"""Live sweep progress: an in-place cells/sec + ETA line on stderr.

The sweep runner reports each completed cell through a callback; this class
turns that stream into a single self-overwriting status line::

    [sweep retention-vs-burst] 37/120 cells (12 cached)  8.4 cells/s  ETA 9.9s

The line is throttled (at most ~10 redraws/s) so a fast all-cache sweep does
not spend its time writing to the terminal, and :meth:`finish` terminates it
with a newline so subsequent output starts clean.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO


class ProgressLine:
    """Render sweep progress in place on a terminal stream."""

    def __init__(
        self,
        label: str,
        total: int,
        stream: Optional[TextIO] = None,
        min_interval_s: float = 0.1,
    ) -> None:
        self._label = label
        self._total = total
        self._stream = stream if stream is not None else sys.stderr
        self._min_interval_s = min_interval_s
        self._start = time.perf_counter()
        self._last_draw = 0.0
        self._done = 0
        self._cached = 0
        self._last_width = 0

    def update(self, cached: bool) -> None:
        """Record one completed cell and redraw (throttled)."""
        self._done += 1
        if cached:
            self._cached += 1
        now = time.perf_counter()
        if self._done < self._total and now - self._last_draw < self._min_interval_s:
            return
        self._last_draw = now
        self._draw(now)

    def _draw(self, now: float) -> None:
        elapsed = max(now - self._start, 1e-9)
        rate = self._done / elapsed
        remaining = self._total - self._done
        eta = remaining / rate if rate > 0 else float("inf")
        text = (
            f"[sweep {self._label}] {self._done}/{self._total} cells "
            f"({self._cached} cached)  {rate:.1f} cells/s  ETA {eta:.1f}s"
        )
        padding = " " * max(0, self._last_width - len(text))
        self._last_width = len(text)
        self._stream.write("\r" + text + padding)
        self._stream.flush()

    def finish(self) -> None:
        """Draw the final state and release the line."""
        self._draw(time.perf_counter())
        self._stream.write("\n")
        self._stream.flush()
