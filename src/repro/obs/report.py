"""Trace aggregation: span totals, percentiles, counter sums.

Powers ``beer-tool trace summary`` and ``trace report``.  The summary
collapses a trace into one row per span name (count, total seconds, mean,
p50/p90/p99, max) plus the final counter/gauge totals; the report adds a
per-process breakdown and the slowest individual spans — the "where did the
time go" view the paper's runtime accounting (sec. 6.3, fig. 6) needs from
the inside of a run.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.obs.schema import read_trace


def _percentile(sorted_values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted, non-empty list."""
    index = max(0, min(len(sorted_values) - 1, round(fraction * (len(sorted_values) - 1))))
    return sorted_values[index]


def summarize_events(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate parsed trace events into the summary document."""
    durations: Dict[str, List[float]] = {}
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    metric_counts: Dict[str, int] = {}
    pids = set()
    for event in events:
        kind = event.get("type")
        pid = event.get("pid")
        if pid is not None:
            pids.add(pid)
        if kind == "span":
            durations.setdefault(event["name"], []).append(float(event["dur"]))
        elif kind == "counter":
            counters[event["name"]] = counters.get(event["name"], 0) + event["value"]
        elif kind == "gauge":
            gauges[event["name"]] = event["value"]
        elif kind == "metric":
            metric_counts[event["name"]] = metric_counts.get(event["name"], 0) + 1

    spans = []
    for name in sorted(durations):
        values = sorted(durations[name])
        total = sum(values)
        spans.append(
            {
                "name": name,
                "count": len(values),
                "total_s": total,
                "mean_s": total / len(values),
                "p50_s": _percentile(values, 0.50),
                "p90_s": _percentile(values, 0.90),
                "p99_s": _percentile(values, 0.99),
                "max_s": values[-1],
            }
        )
    return {
        "processes": len(pids),
        "num_events": len(events),
        "spans": spans,
        "counters": {name: counters[name] for name in sorted(counters)},
        "gauges": {name: gauges[name] for name in sorted(gauges)},
        "metric_events": {name: metric_counts[name] for name in sorted(metric_counts)},
    }


def summarize_trace(path: str) -> Dict[str, Any]:
    """Aggregate one JSONL trace file into the summary document."""
    return summarize_events(read_trace(path))


def slowest_spans(
    events: List[Dict[str, Any]], limit: int = 10
) -> List[Dict[str, Any]]:
    """The ``limit`` longest individual spans, slowest first."""
    spans = [event for event in events if event.get("type") == "span"]
    spans.sort(key=lambda event: (-float(event["dur"]), event["id"]))
    return [
        {
            "name": event["name"],
            "id": event["id"],
            "pid": event["pid"],
            "dur_s": float(event["dur"]),
            "attrs": dict(event.get("attrs", {})),
        }
        for event in spans[:limit]
    ]


def per_process_totals(events: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Span-seconds and event counts broken down per contributing process."""
    rows: Dict[int, Dict[str, Any]] = {}
    for event in events:
        pid = event.get("pid")
        if pid is None:
            continue
        row = rows.setdefault(pid, {"pid": pid, "events": 0, "span_s": 0.0, "spans": 0})
        row["events"] += 1
        if event.get("type") == "span":
            row["spans"] += 1
            row["span_s"] += float(event["dur"])
    return [rows[pid] for pid in sorted(rows)]


def format_summary_text(summary: Dict[str, Any]) -> str:
    """Render the summary document as the CLI's aligned text table."""
    lines = [
        f"trace: {summary['num_events']} events from "
        f"{summary['processes']} process(es)"
    ]
    if summary["spans"]:
        header = ["span", "count", "total_s", "mean_s", "p50_s", "p90_s", "p99_s", "max_s"]
        rows = [
            [
                row["name"],
                str(row["count"]),
                f"{row['total_s']:.6f}",
                f"{row['mean_s']:.6f}",
                f"{row['p50_s']:.6f}",
                f"{row['p90_s']:.6f}",
                f"{row['p99_s']:.6f}",
                f"{row['max_s']:.6f}",
            ]
            for row in summary["spans"]
        ]
        widths = [
            max(len(header[i]), *(len(row[i]) for row in rows))
            for i in range(len(header))
        ]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        for row in rows:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    if summary["counters"]:
        lines.append("")
        lines.append("counters:")
        for name, value in summary["counters"].items():
            rendered = f"{value:.6f}".rstrip("0").rstrip(".") if isinstance(value, float) else str(value)
            lines.append(f"  {name} = {rendered}")
    if summary["gauges"]:
        lines.append("gauges:")
        for name, value in summary["gauges"].items():
            lines.append(f"  {name} = {value}")
    if summary["metric_events"]:
        lines.append("metric events:")
        for name, count in summary["metric_events"].items():
            lines.append(f"  {name} x{count}")
    return "\n".join(lines)
