"""Chrome-trace-event exporter: load a repro trace in Perfetto.

Converts the library's JSONL trace format into the Chrome Trace Event JSON
format (the ``{"traceEvents": [...]}`` object form), loadable by
``chrome://tracing`` and https://ui.perfetto.dev:

* spans become complete events (``ph: "X"``) with microsecond timestamps
  relative to the earliest event in the trace, one track (``tid``) per
  nesting depth is not needed — Chrome nests by time containment per
  ``pid``/``tid``, and all of a process's spans share ``tid`` 1;
* metric events become instant events (``ph: "i"``);
* final counter/gauge totals become counter events (``ph: "C"``) stamped at
  the end of the timeline, so Perfetto shows the run's totals as tracks.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.obs.schema import read_trace


def chrome_trace(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Convert parsed repro trace events into a Chrome trace document."""
    stamped = [e for e in events if isinstance(e.get("ts"), (int, float))]
    origin = min((e["ts"] for e in stamped), default=0.0)
    end_us = 0.0

    def to_us(ts: float) -> float:
        return (ts - origin) * 1e6

    trace_events: List[Dict[str, Any]] = []
    for event in events:
        kind = event.get("type")
        if kind == "span":
            start_us = to_us(event["ts"])
            dur_us = event["dur"] * 1e6
            end_us = max(end_us, start_us + dur_us)
            trace_events.append(
                {
                    "name": event["name"],
                    "ph": "X",
                    "ts": start_us,
                    "dur": dur_us,
                    "pid": event["pid"],
                    "tid": 1,
                    "args": dict(event.get("attrs", {}), span_id=event["id"]),
                }
            )
        elif kind == "metric":
            start_us = to_us(event["ts"])
            end_us = max(end_us, start_us)
            trace_events.append(
                {
                    "name": event["name"],
                    "ph": "i",
                    "s": "p",  # process-scoped instant
                    "ts": start_us,
                    "pid": event["pid"],
                    "tid": 1,
                    "args": dict(event.get("fields", {})),
                }
            )
        elif kind in ("counter", "gauge"):
            trace_events.append(
                {
                    "name": event["name"],
                    "ph": "C",
                    "ts": end_us,
                    "pid": event["pid"],
                    "tid": 1,
                    "args": {"value": event["value"]},
                }
            )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.obs", "origin_unix_s": origin},
    }


def write_chrome_trace(trace_path: str, output_path: str) -> int:
    """Export a JSONL trace file to Chrome trace JSON; returns event count."""
    document = chrome_trace(read_trace(trace_path))
    with open(output_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(document["traceEvents"])
