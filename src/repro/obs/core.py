"""The tracer: spans, counters, gauges, metric events, and the JSONL sink.

One module-level :class:`Tracer` singleton (:data:`TRACER`) serves the whole
process.  It is **disabled by default** and every instrumentation point in
the library guards itself with a single attribute check (``TRACER.enabled``)
before doing any other work, so the disabled overhead is one branch per
instrumented operation — unmeasurable next to the operations themselves.

Enabled, the tracer collects three kinds of telemetry in memory:

* **spans** — context-managed wall-time intervals with nesting (a span
  opened inside another becomes its child) and arbitrary attributes.
  Timestamps are epoch seconds (``time.time``) so spans from different
  processes share one timeline; durations are measured with the
  monotonic high-resolution clock (``time.perf_counter``) so they are
  immune to wall-clock steps.
* **counters / gauges** — named numeric aggregates (cache hits, conflicts,
  propagations, words decoded, DUE words, lock-wait seconds, fsync
  latency).  Counters add, gauges overwrite.
* **metric events** — point-in-time snapshots (e.g. periodic
  ``SolverStats`` dumps from the CDCL solver).

``flush()`` serialises everything to a JSONL *trace file*: one JSON object
per line, validated by :mod:`repro.obs.schema`.  Multi-process sweeps give
each pool worker its own *segment file*; the parent adopts the segments in
deterministic spec order (:meth:`Tracer.adopt_segment`), re-parenting the
workers' root spans under the parent's per-cell span, so span nesting
survives the merge and counter totals aggregate across processes.  The
campaign store's ``records.jsonl`` is never touched by any of this —
tracing writes only to its own files.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional, Union

#: Trace format version stamped into every file's leading ``meta`` event.
TRACE_VERSION = 1


class _NoopSpan:
    """The shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    #: No real span ever has a ``None`` id; instrumentation can pass it
    #: through (e.g. as a merge parent) without checking for enablement.
    span_id = None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    def set_attr(self, name: str, value: Any) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class Span:
    """One live span: closed (and recorded) when its context exits."""

    __slots__ = ("tracer", "name", "span_id", "parent_id", "ts", "_start", "attrs")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self.tracer = tracer
        self.name = name
        self.span_id = tracer._next_span_id()
        self.parent_id = tracer._current_parent_id()
        self.ts = time.time()  # repro-lint: ignore[RPR102] -- trace metadata timestamp, never part of result data
        self._start = time.perf_counter()
        self.attrs = attrs

    def set_attr(self, name: str, value: Any) -> None:
        """Attach (or overwrite) one attribute on the span."""
        self.attrs[name] = value

    def __enter__(self) -> "Span":
        self.tracer._span_stack.append(self)
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        duration = time.perf_counter() - self._start
        stack = self.tracer._span_stack
        # Exits mirror entries; tolerate a tracer disabled mid-span.
        if stack and stack[-1] is self:
            stack.pop()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self.tracer._record_span(self, duration)


class Tracer:
    """Process-wide telemetry collector (see the module docstring)."""

    def __init__(self) -> None:
        self.enabled = False
        self._sink_path: Optional[str] = None
        self._record_events = True
        self._id_prefix = "p"
        self._id_counter = 0
        self._events: List[Dict[str, Any]] = []
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._span_stack: List[Span] = []
        self._meta: Dict[str, Any] = {}

    # -- lifecycle ----------------------------------------------------------
    def enable(
        self,
        sink_path: Optional[str] = None,
        *,
        id_prefix: str = "p",
        record_events: bool = True,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Start collecting.

        ``sink_path`` is where :meth:`flush` writes the JSONL trace;
        ``None`` keeps everything in memory — the *metrics-only* mode the
        benchmark harness uses to snapshot counters without a trace file.
        ``id_prefix`` namespaces span ids (worker segments use a per-cell
        prefix so merged ids never collide).  ``record_events=False``
        aggregates counters/gauges but drops span and metric events —
        bounded memory for arbitrarily long runs.
        """
        self._sink_path = sink_path
        self._id_prefix = id_prefix
        self._id_counter = 0
        self._record_events = record_events
        self._events = []
        self._counters = {}
        self._gauges = {}
        self._span_stack = []
        self._meta = dict(meta or {})
        self.enabled = True

    def disable(self) -> None:
        """Stop collecting and drop any unflushed state."""
        self.enabled = False
        self._sink_path = None
        self._events = []
        self._counters = {}
        self._gauges = {}
        self._span_stack = []
        self._meta = {}

    @property
    def sink_path(self) -> Optional[str]:
        """The trace file :meth:`flush` will write, if any."""
        return self._sink_path

    def segment_dir(self) -> Optional[str]:
        """Directory for worker trace segments (created on demand).

        Lives next to the sink (``<sink>.segments/``) so a trace and its
        in-flight segments move together; ``None`` in metrics-only mode.
        """
        if self._sink_path is None:
            return None
        directory = self._sink_path + ".segments"
        os.makedirs(directory, exist_ok=True)
        return directory

    # -- spans --------------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> Union["Span", "_NoopSpan"]:
        """Open a span context; a shared no-op while disabled."""
        if not self.enabled:
            return NOOP_SPAN
        return Span(self, name, attrs)

    def _next_span_id(self) -> str:
        self._id_counter += 1
        return f"{self._id_prefix}{self._id_counter}"

    def _current_parent_id(self) -> Optional[str]:
        return self._span_stack[-1].span_id if self._span_stack else None

    def _record_span(self, span: Span, duration: float) -> None:
        if not (self.enabled and self._record_events):
            return
        self._events.append(
            {
                "type": "span",
                "name": span.name,
                "id": span.span_id,
                "parent": span.parent_id,
                "pid": os.getpid(),
                "ts": span.ts,
                "dur": duration,
                "attrs": span.attrs,
            }
        )

    # -- counters / gauges / metric events ----------------------------------
    def add(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to counter ``name`` (no-op while disabled)."""
        if self.enabled:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (no-op while disabled)."""
        if self.enabled:
            self._gauges[name] = value

    def event(self, name: str, fields: Optional[Dict[str, Any]] = None) -> None:
        """Record a point-in-time metric event (no-op while disabled)."""
        if self.enabled and self._record_events:
            self._events.append(
                {
                    "type": "metric",
                    "name": name,
                    "pid": os.getpid(),
                    "ts": time.time(),  # repro-lint: ignore[RPR102] -- trace metadata timestamp, never part of result data
                    "fields": dict(fields or {}),
                }
            )

    def counters_snapshot(self) -> Dict[str, float]:
        """Current counter *and* gauge values (gauges win name clashes)."""
        snapshot: Dict[str, float] = dict(self._counters)
        snapshot.update(self._gauges)
        return snapshot

    def counter_totals(self) -> Dict[str, float]:
        """Current counter values only — safe to difference for deltas.

        Gauges are excluded: they overwrite rather than accumulate, so a
        delta between two gauge readings is meaningless.  The benchmark
        harness differences consecutive calls to attach per-condition
        ``obs.*`` metrics.
        """
        return dict(self._counters)

    # -- worker-segment merge ------------------------------------------------
    def adopt_segment(self, path: str, parent_id: Optional[str] = None) -> int:
        """Fold one worker segment file into this tracer, deterministically.

        Span/metric events are appended in the segment's own order; root
        spans (``parent: null``) are re-parented under ``parent_id`` so the
        worker's work hangs off the parent's per-cell span in the merged
        trace.  Counter/gauge lines are aggregated into this tracer's
        totals instead of being copied, so ``trace summary`` sees one
        process-spanning number per counter.  Returns the number of events
        adopted.  Callers adopt segments in spec order, which is what makes
        the merged file deterministic up to timings.
        """
        adopted = 0
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                payload = json.loads(line)
                kind = payload.get("type")
                if kind == "counter":
                    self.add(payload["name"], payload["value"])
                    continue
                if kind == "gauge":
                    self.gauge(payload["name"], payload["value"])
                    continue
                if kind == "meta":
                    continue
                if kind == "span" and payload.get("parent") is None:
                    payload["parent"] = parent_id
                if self._record_events:
                    self._events.append(payload)
                    adopted += 1
        return adopted

    # -- serialisation -------------------------------------------------------
    def flush(self, path: Optional[str] = None) -> Optional[str]:
        """Write the collected telemetry as one JSONL trace file.

        Layout: a leading ``meta`` line, every span/metric event in
        recording order, then the final counter and gauge totals.  Returns
        the path written, or ``None`` when there is no sink (metrics-only
        mode with no explicit ``path``).
        """
        target = path if path is not None else self._sink_path
        if target is None:
            return None
        pid = os.getpid()
        lines = [
            json.dumps(
                {
                    "type": "meta",
                    "version": TRACE_VERSION,
                    "pid": pid,
                    "attrs": self._meta,
                },
                sort_keys=True,
            )
        ]
        for event in self._events:
            lines.append(json.dumps(event, sort_keys=True))
        for name in sorted(self._counters):
            lines.append(
                json.dumps(
                    {
                        "type": "counter",
                        "name": name,
                        "value": self._counters[name],
                        "pid": pid,
                    },
                    sort_keys=True,
                )
            )
        for name in sorted(self._gauges):
            lines.append(
                json.dumps(
                    {"type": "gauge", "name": name, "value": self._gauges[name], "pid": pid},
                    sort_keys=True,
                )
            )
        directory = os.path.dirname(os.path.abspath(target))
        os.makedirs(directory, exist_ok=True)
        with open(target, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        return target


#: The process-wide tracer every instrumentation point checks.
TRACER = Tracer()


def enabled() -> bool:
    """Is the process-wide tracer collecting?"""
    return TRACER.enabled


def span(name: str, **attrs: Any) -> Union["Span", "_NoopSpan"]:
    """Open a span on the process-wide tracer (no-op while disabled)."""
    return TRACER.span(name, **attrs)


def add(name: str, value: float = 1.0) -> None:
    """Bump a counter on the process-wide tracer (no-op while disabled)."""
    TRACER.add(name, value)


def gauge(name: str, value: float) -> None:
    """Set a gauge on the process-wide tracer (no-op while disabled)."""
    TRACER.gauge(name, value)


def event(name: str, fields: Optional[Dict[str, Any]] = None) -> None:
    """Record a metric event on the process-wide tracer (no-op while disabled)."""
    TRACER.event(name, fields)
