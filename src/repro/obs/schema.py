"""Trace event schema: what a valid JSONL trace file looks like.

A trace file is newline-delimited JSON.  The first line must be a ``meta``
event; every following line is one of ``span``, ``metric``, ``counter`` or
``gauge``.  Required fields per type::

    meta     version (int), pid (int), attrs (object)
    span     name (str), id (str), parent (str|null), pid (int),
             ts (number), dur (number >= 0), attrs (object)
    metric   name (str), pid (int), ts (number), fields (object)
    counter  name (str), value (number), pid (int)
    gauge    name (str), value (number), pid (int)

Beyond per-line shape, a valid trace is *referentially consistent*: every
span's ``parent`` (when not null) names the ``id`` of another span in the
same file, and span ids are unique.  That property is what the worker-merge
machinery must preserve and what the CI smoke job asserts.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Tuple, Union

from repro.exceptions import ReproError
from repro.obs.core import TRACE_VERSION


class TraceValidationError(ReproError):
    """A trace file does not conform to the event schema."""


_REQUIRED_FIELDS: Dict[str, Tuple[Tuple[str, Union[type, Tuple[type, ...]]], ...]] = {
    "meta": (("version", int), ("pid", int), ("attrs", dict)),
    "span": (
        ("name", str),
        ("id", str),
        ("pid", int),
        ("ts", (int, float)),
        ("dur", (int, float)),
        ("attrs", dict),
    ),
    "metric": (("name", str), ("pid", int), ("ts", (int, float)), ("fields", dict)),
    "counter": (("name", str), ("value", (int, float)), ("pid", int)),
    "gauge": (("name", str), ("value", (int, float)), ("pid", int)),
}


def validate_event(payload: Any, line_number: int = 0) -> List[str]:
    """Return the schema violations of one parsed event (empty when valid)."""
    where = f"line {line_number}: " if line_number else ""
    if not isinstance(payload, dict):
        return [f"{where}event must be a JSON object, got {type(payload).__name__}"]
    kind = payload.get("type")
    if kind not in _REQUIRED_FIELDS:
        return [
            f"{where}unknown event type {kind!r}; expected one of "
            f"{sorted(_REQUIRED_FIELDS)}"
        ]
    errors = []
    for field, expected in _REQUIRED_FIELDS[kind]:
        if field not in payload:
            errors.append(f"{where}{kind} event is missing field {field!r}")
            continue
        value = payload[field]
        if isinstance(value, bool) or not isinstance(value, expected):
            errors.append(
                f"{where}{kind} field {field!r} has the wrong type: {value!r}"
            )
    if kind == "span":
        parent = payload.get("parent", "<absent>")
        if parent is not None and not isinstance(parent, str):
            errors.append(f"{where}span field 'parent' must be a string or null")
        if isinstance(payload.get("dur"), (int, float)) and payload["dur"] < 0:
            errors.append(f"{where}span duration is negative: {payload['dur']!r}")
    if kind == "meta" and payload.get("version") != TRACE_VERSION:
        errors.append(
            f"{where}unsupported trace version {payload.get('version')!r} "
            f"(expected {TRACE_VERSION})"
        )
    return errors


def validate_events(events: Iterable[Dict[str, Any]]) -> List[str]:
    """Validate a parsed event stream, including cross-event consistency."""
    errors: List[str] = []
    span_ids: Dict[str, int] = {}
    parents: List[Tuple[int, str]] = []
    for number, payload in enumerate(events, start=1):
        errors.extend(validate_event(payload, number))
        if number == 1 and payload.get("type") != "meta":
            errors.append("line 1: a trace must start with a 'meta' event")
        if payload.get("type") == "span" and isinstance(payload.get("id"), str):
            if payload["id"] in span_ids:
                errors.append(
                    f"line {number}: duplicate span id {payload['id']!r} "
                    f"(first seen at line {span_ids[payload['id']]})"
                )
            else:
                span_ids[payload["id"]] = number
            if isinstance(payload.get("parent"), str):
                parents.append((number, payload["parent"]))
    for number, parent in parents:
        if parent not in span_ids:
            errors.append(
                f"line {number}: span parent {parent!r} does not name any "
                "span in this trace"
            )
    return errors


def read_trace(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL trace file into its event list (no validation)."""
    events = []
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise TraceValidationError(
                    f"{path}: line {number} is not JSON: {error}"
                ) from error
    return events


def validate_trace_file(path: str) -> List[str]:
    """All schema violations of a trace file (empty when fully valid)."""
    return validate_events(read_trace(path))
