"""Advisory file locks: capped-backoff acquisition, stale-lock recovery.

Every append to a campaign store happens under an exclusive advisory lock
on a sidecar lockfile — one store-wide lock for the v1 single-file layout,
one lock *per segment* for the v2 sharded layout.  :func:`file_lock` is
the single primitive both use:

* **fcntl where available** — ``fcntl.flock`` on the lockfile, released
  automatically by the kernel if the holder dies, polled with capped
  exponential backoff (a healthy holder releases within one append+fsync,
  so the first retries come quickly; long waits back off to a cap instead
  of burning CPU).  The schedule is deterministic — no jitter, by the
  repository's no-entropy rule (RPR102).
* **``O_EXCL`` lockfile fallback elsewhere** — existence of the lockfile
  is the lock.  The file records its owner (``pid`` and hostname), so a
  lock whose owner is a dead process on this host is *broken* instead of
  wedging every writer until the timeout: a crashed writer cannot wedge a
  fleet on non-POSIX hosts.  Foreign-host or unreadable owner stamps are
  never broken — liveness cannot be probed across machines.

Acquisition waits at most ``timeout_s`` seconds (default
:data:`DEFAULT_LOCK_TIMEOUT_S`, overridable via the
:data:`LOCK_TIMEOUT_ENV` environment variable) and then raises
:class:`~repro.exceptions.StoreLockTimeoutError` naming the lock path and
the wait, so a fleet worker fails loudly instead of hanging forever
behind a wedged peer.

When tracing is enabled the wait is accounted to ``<prefix>_wait_s``
(with ``<prefix>_acquisitions`` / ``<prefix>_timeouts`` counting outcomes
and ``<prefix>_breaks`` counting stale locks broken); the store-wide lock
uses the historical ``store.lock`` prefix, segment locks use
``store.segment.lock``.
"""

from __future__ import annotations

import contextlib
import errno
import os
import socket
import time
from typing import Iterator, Optional

from repro.exceptions import StoreError, StoreLockTimeoutError
from repro.obs import TRACER

try:  # POSIX; absent on some platforms — the lockfile fallback covers those.
    import fcntl
except ImportError:  # pragma: no cover - exercised only on non-POSIX hosts
    fcntl = None  # type: ignore[assignment]


#: Environment variable overriding the store-lock acquisition timeout.
LOCK_TIMEOUT_ENV = "REPRO_STORE_LOCK_TIMEOUT"

#: Default seconds to wait for a store lock before failing loudly.  A
#: healthy holder releases within milliseconds (one append + fsync), so two
#: minutes means a wedged or dead peer, not contention.
DEFAULT_LOCK_TIMEOUT_S = 120.0

#: First retry delay of the capped exponential backoff schedule.
BACKOFF_INITIAL_S = 0.0005

#: Multiplier applied to the delay after every failed attempt.
BACKOFF_FACTOR = 2.0

#: Ceiling the backoff saturates at; bounds worst-case release latency.
BACKOFF_CAP_S = 0.05


def resolve_lock_timeout(timeout_s: Optional[float] = None) -> float:
    """The effective lock timeout: explicit arg, else env override, else default."""
    if timeout_s is None:
        raw = os.environ.get(LOCK_TIMEOUT_ENV)
        if raw is None:
            return DEFAULT_LOCK_TIMEOUT_S
        try:
            timeout_s = float(raw)
        except ValueError:
            raise StoreError(
                f"{LOCK_TIMEOUT_ENV}={raw!r} is not a number of seconds"
            ) from None
    if timeout_s <= 0:
        raise StoreError(
            f"store lock timeout must be positive, got {timeout_s!r}"
        )
    return float(timeout_s)


def backoff_delays(
    initial_s: float = BACKOFF_INITIAL_S,
    factor: float = BACKOFF_FACTOR,
    cap_s: float = BACKOFF_CAP_S,
) -> Iterator[float]:
    """Yield the deterministic capped exponential backoff schedule.

    ``initial_s, initial_s*factor, ...`` saturating at ``cap_s``.  No
    jitter: randomness is banned library-wide (RPR102), and the advisory
    locks here are held for sub-millisecond appends, where a deterministic
    schedule loses nothing measurable to lockstep retries.
    """
    delay = initial_s
    while True:
        yield delay
        delay = min(delay * factor, cap_s)


def owner_stamp() -> bytes:
    """The ``pid\\nhostname\\n`` stamp written into ``O_EXCL`` lockfiles."""
    return f"{os.getpid()}\n{socket.gethostname()}\n".encode("utf-8")


def is_stale_lockfile(lock_path: str) -> bool:
    """Is ``lock_path`` an owner-stamped lockfile whose owner is dead?

    Only lockfiles stamped by *this host* whose pid no longer exists are
    stale; unreadable, unstamped (fcntl-style), or foreign-host lockfiles
    are never judged stale.
    """
    try:
        with open(lock_path, "rb") as handle:
            raw = handle.read(512)
    except OSError:
        return False  # vanished (owner released it) or unreadable
    lines = raw.decode("utf-8", errors="replace").splitlines()
    if len(lines) < 2:
        return False  # no owner stamp (fcntl lockfile, or mid-write)
    try:
        pid = int(lines[0])
    except ValueError:
        return False
    if lines[1] != socket.gethostname():
        return False  # cannot probe liveness across hosts
    return not _pid_alive(pid)


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - alive, owned by another user
        return True
    return True


@contextlib.contextmanager
def file_lock(
    lock_path: str,
    timeout_s: Optional[float] = None,
    counter_prefix: str = "store.lock",
) -> Iterator[None]:
    """Hold the exclusive advisory lock at ``lock_path`` for the block.

    Reentrant use within one process is *not* supported — the store
    acquires locks only in leaf methods.
    """
    timeout = resolve_lock_timeout(timeout_s)
    tracing = TRACER.enabled
    wait_start = time.perf_counter() if tracing else 0.0
    deadline = time.monotonic() + timeout
    delays = backoff_delays()
    if fcntl is not None:
        fd = os.open(lock_path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            while True:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    break
                except OSError as error:
                    if error.errno not in (errno.EAGAIN, errno.EACCES):
                        raise
                    if time.monotonic() >= deadline:
                        _note_outcome(tracing, wait_start, counter_prefix, "_timeouts")
                        raise StoreLockTimeoutError(lock_path, timeout) from None
                    time.sleep(next(delays))
            _note_outcome(tracing, wait_start, counter_prefix, "_acquisitions")
            try:
                yield
            finally:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)
        return
    # Portable fallback: existence of the lockfile is the lock; the owner
    # stamp lets a crashed holder's lock be broken instead of honoured.
    while True:
        try:
            fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
            break
        except OSError as error:
            if error.errno != errno.EEXIST:
                raise
            if is_stale_lockfile(lock_path):
                with contextlib.suppress(FileNotFoundError):
                    os.unlink(lock_path)
                if TRACER.enabled:
                    TRACER.add(f"{counter_prefix}_breaks")
                    TRACER.event("store.lock_break", {"path": lock_path})
                continue  # retry the O_EXCL create immediately
            if time.monotonic() >= deadline:
                _note_outcome(tracing, wait_start, counter_prefix, "_timeouts")
                raise StoreLockTimeoutError(lock_path, timeout) from None
            time.sleep(next(delays))
    with os.fdopen(fd, "wb") as handle:
        handle.write(owner_stamp())
        handle.flush()
    _note_outcome(tracing, wait_start, counter_prefix, "_acquisitions")
    try:
        yield
    finally:
        with contextlib.suppress(FileNotFoundError):
            os.unlink(lock_path)


def _note_outcome(
    tracing: bool, wait_start: float, prefix: str, outcome: str
) -> None:
    if tracing and TRACER.enabled:
        TRACER.add(f"{prefix}_wait_s", time.perf_counter() - wait_start)
        TRACER.add(f"{prefix}{outcome}")
