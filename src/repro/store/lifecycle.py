"""Store lifecycle operations: stat, verify, compact, gc, migrate.

These are the administrative verbs behind the ``repro store`` CLI group.
Each operates on a campaign *directory* (not an open store), detects the
layout with :func:`repro.store.layout.detect_layout`, and returns a plain
dict the CLI renders as text or JSON.

Migration is the delicate one.  ``v1 -> v2`` routes every record to its
segment in store order, stamping each index entry with its original line
position as the commit sequence number, then writes ``MANIFEST.json`` as
the commit point — only after re-opening the sharded store and **proving**
that its reconstructed record stream matches the v1 file is the old
``records.jsonl`` removed (an interrupted migration therefore leaves
either a valid v1 store, or a valid v2 store plus a dead v1 file that
``repro store gc`` sweeps).  ``v2 -> v1`` writes the records in global
iteration order to a temp file, re-parses it as proof, atomically renames
it to ``records.jsonl``, and only then removes the manifest and segment
directories.  For a canonically written store the round trip
``v1 -> v2 -> v1`` is byte-identical.
"""

from __future__ import annotations

import os
import shutil
from typing import Any, Dict, List, Optional

from repro.exceptions import StoreError
from repro.obs import TRACER
from repro.store.layout import (
    INDEX_DIRNAME,
    LOCK_FILENAME,
    MANIFEST_FILENAME,
    RECORDS_FILENAME,
    SEGMENTS_DIRNAME,
    SHARD_PREFIX_CHARS,
    SHARDED,
    SINGLE_FILE,
    IndexEntry,
    ShardedLayout,
    SingleFileLayout,
    StoreLayout,
    detect_layout,
    make_layout,
    write_manifest,
)
from repro.store.records import parse_record_line


def _open_detected(
    directory: str, lock_timeout_s: Optional[float] = None
) -> StoreLayout:
    detected = detect_layout(directory)
    if detected is None:
        raise StoreError(
            f"{directory} holds no campaign store (no "
            f"{RECORDS_FILENAME} and no {MANIFEST_FILENAME})"
        )
    return make_layout(detected, directory, lock_timeout_s)


def store_stat(directory: str) -> Dict[str, Any]:
    """Summarise a store: layout, record count, bytes, segment breakdown."""
    layout = _open_detected(directory)
    stat: Dict[str, Any] = {
        "directory": layout.directory,
        "layout": layout.name,
        "records": len(layout),
    }
    if isinstance(layout, SingleFileLayout):
        path = layout.records_path
        stat["bytes"] = os.path.getsize(path) if os.path.exists(path) else 0
        stat["segments"] = 1
    elif isinstance(layout, ShardedLayout):
        segments = []
        total = 0
        for shard in layout._shard_names():
            seg_bytes = os.path.getsize(layout._segment_path(shard))
            sidecar = layout._sidecar_path(shard)
            idx_bytes = (
                os.path.getsize(sidecar) if os.path.exists(sidecar) else 0
            )
            records = sum(
                1 for entry in layout._entries.values() if entry.shard == shard
            )
            segments.append(
                {"segment": shard, "records": records,
                 "bytes": seg_bytes, "index_bytes": idx_bytes}
            )
            total += seg_bytes
        stat["bytes"] = total
        stat["segments"] = len(segments)
        stat["segment_detail"] = segments
        stat["shard_prefix_chars"] = layout._prefix_chars
    return stat


def store_verify(directory: str) -> Dict[str, Any]:
    """Deep-verify every record byte; list problems instead of raising.

    Integrity failures that abort even *opening* the store (mid-file
    corruption, conflicting duplicates) are reported as problems too, so
    ``repro store verify`` always renders a verdict rather than a
    traceback.
    """
    try:
        layout = _open_detected(directory)
    except StoreError as error:
        return {
            "directory": str(directory), "layout": detect_layout(directory),
            "ok": False, "problems": [str(error)],
        }
    problems = layout.verify()
    return {
        "directory": layout.directory,
        "layout": layout.name,
        "records": len(layout),
        "ok": not problems,
        "problems": problems,
    }


def store_compact(directory: str) -> Dict[str, Any]:
    """Rewrite segments canonically, dropping index garbage."""
    layout = _open_detected(directory)
    summary = layout.compact()
    summary["directory"] = layout.directory
    return summary


def store_gc(directory: str) -> Dict[str, Any]:
    """Remove dead artefacts: tmp files, stale locks, migration leftovers."""
    layout = _open_detected(directory)
    summary = layout.gc()
    summary["directory"] = layout.directory
    return summary


def store_migrate(
    directory: str,
    to_layout: str,
    lock_timeout_s: Optional[float] = None,
) -> Dict[str, Any]:
    """Convert a store between layouts with a proven record round-trip."""
    detected = detect_layout(directory)
    if detected is None:
        raise StoreError(f"{directory} holds no campaign store to migrate")
    if to_layout not in (SINGLE_FILE, SHARDED):
        raise StoreError(
            f"unknown migration target {to_layout!r}; "
            f"expected {SINGLE_FILE!r} or {SHARDED!r}"
        )
    if detected == to_layout:
        return {
            "directory": str(directory), "from": detected, "to": to_layout,
            "records": len(_open_detected(directory)), "migrated": False,
        }
    if to_layout == SHARDED:
        records = _migrate_v1_to_v2(directory, lock_timeout_s)
    else:
        records = _migrate_v2_to_v1(directory, lock_timeout_s)
    if TRACER.enabled:
        TRACER.add("store.migrations")
        TRACER.event(
            "store.migrate",
            {"directory": str(directory), "from": detected,
             "to": to_layout, "records": records},
        )
    return {
        "directory": str(directory), "from": detected, "to": to_layout,
        "records": records, "migrated": True,
    }


def _migrate_v1_to_v2(
    directory: str, lock_timeout_s: Optional[float]
) -> int:
    source = SingleFileLayout(directory, lock_timeout_s)
    segments_dir = os.path.join(directory, SEGMENTS_DIRNAME)
    index_dir = os.path.join(directory, INDEX_DIRNAME)
    for stale in (segments_dir, index_dir):
        if os.path.isdir(stale):
            shutil.rmtree(stale)  # debris from an interrupted attempt
    os.makedirs(segments_dir)
    os.makedirs(index_dir)
    # Route records to segments in store order; the v1 line position
    # becomes each entry's commit sequence number, so the v2 global
    # iteration order *is* the v1 file order.
    per_shard: Dict[str, List[bytes]] = {}
    per_shard_index: Dict[str, List[bytes]] = {}
    offsets: Dict[str, int] = {}
    expected_lines: List[str] = []
    for seq, key in enumerate(source.keys()):
        record = source.get(key)
        assert record is not None
        line = record.to_json_line()
        expected_lines.append(line)
        shard = key[:SHARD_PREFIX_CHARS]
        payload = (line + "\n").encode("utf-8")
        offset = offsets.get(shard, 0)
        entry = IndexEntry(
            key=key, shard=shard, offset=offset,
            length=len(payload) - 1, seq=seq, config=record.config,
        )
        per_shard.setdefault(shard, []).append(payload)
        per_shard_index.setdefault(shard, []).append(
            (entry.to_json_line() + "\n").encode("utf-8")
        )
        offsets[shard] = offset + len(payload)
    for shard in sorted(per_shard):
        _write_durably(
            os.path.join(segments_dir, f"{shard}.jsonl"),
            b"".join(per_shard[shard]),
        )
        _write_durably(
            os.path.join(index_dir, f"{shard}.idx"),
            b"".join(per_shard_index[shard]),
        )
    write_manifest(directory)  # the commit point: the store is now v2
    # Proof before dropping v1: the sharded store must reconstruct the
    # exact record stream (same records, same order, same bytes).
    reopened = ShardedLayout(directory, lock_timeout_s)
    actual_lines = [
        record.to_json_line() for record in reopened.iter_records()
    ]
    if actual_lines != expected_lines:
        os.unlink(os.path.join(directory, MANIFEST_FILENAME))
        shutil.rmtree(segments_dir)
        shutil.rmtree(index_dir)
        raise StoreError(
            f"migration of {directory} to sharded failed verification "
            f"({len(actual_lines)} reconstructed records vs "
            f"{len(expected_lines)} source records); the v1 store is intact"
        )
    os.unlink(os.path.join(directory, RECORDS_FILENAME))
    return len(expected_lines)


def _migrate_v2_to_v1(
    directory: str, lock_timeout_s: Optional[float]
) -> int:
    source = ShardedLayout(directory, lock_timeout_s)
    records_path = os.path.join(directory, RECORDS_FILENAME)
    payload = "".join(
        record.to_json_line() + "\n" for record in source.iter_records()
    ).encode("utf-8")
    # Proof before committing: the file we are about to install must parse
    # back to exactly the records the sharded store holds.
    count = 0
    position = 0
    while position < len(payload):
        newline = payload.index(b"\n", position)
        parse_record_line(payload[position:newline], records_path, position)
        count += 1
        position = newline + 1
    if count != len(source):
        raise StoreError(
            f"migration of {directory} to single-file failed verification "
            f"({count} serialised records vs {len(source)} in the store); "
            "the sharded store is intact"
        )
    _write_durably(records_path, payload)
    # records.jsonl is now authoritative; removing the manifest commits
    # the layout switch, then the segment dirs are dead weight.
    os.unlink(os.path.join(directory, MANIFEST_FILENAME))
    for dirname in (SEGMENTS_DIRNAME, INDEX_DIRNAME):
        path = os.path.join(directory, dirname)
        if os.path.isdir(path):
            shutil.rmtree(path)
    lock_path = os.path.join(directory, SEGMENTS_DIRNAME, LOCK_FILENAME)
    if os.path.exists(lock_path):  # pragma: no cover - belt and braces
        os.unlink(lock_path)
    return count


def _write_durably(path: str, payload: bytes) -> None:
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
