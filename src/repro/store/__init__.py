"""Persistent, content-addressed result store for experiment campaigns.

Every simulated experiment cell is identified by a canonical hash of its full
configuration (scenario, code, simulation config, seed, backend); results are
appended to a JSONL file under a campaign directory as they complete.  This
gives three properties the scenario subsystem is built on:

* **cache hits** — re-running a sweep never recomputes a cell whose key is
  already in the store;
* **resumability** — an interrupted sweep checkpoints per cell, so rerunning
  it completes exactly the missing cells and yields a store byte-identical
  to an uninterrupted run;
* **queryability** — typed load/query APIs for :mod:`repro.analysis` and the
  CLI's ``scenario report``;
* **crash/concurrency safety** — appends are atomic under an advisory lock
  (so multiple writer processes can share one store), a torn trailing line
  left by a killed writer is repaired on open, and every record's content
  address is verified on load.
"""

from repro.exceptions import StoreError, StoreLockTimeoutError
from repro.store.store import (
    DEFAULT_LOCK_TIMEOUT_S,
    LOCK_TIMEOUT_ENV,
    CampaignStore,
    ResultRecord,
    StoreIntegrityError,
    canonical_json,
    content_key,
    resolve_lock_timeout,
    store_lock,
)

__all__ = [
    "DEFAULT_LOCK_TIMEOUT_S",
    "LOCK_TIMEOUT_ENV",
    "CampaignStore",
    "ResultRecord",
    "StoreError",
    "StoreIntegrityError",
    "StoreLockTimeoutError",
    "canonical_json",
    "content_key",
    "resolve_lock_timeout",
    "store_lock",
]
