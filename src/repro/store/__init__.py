"""Persistent, content-addressed result store for experiment campaigns.

Every simulated experiment cell is identified by a canonical hash of its full
configuration (scenario, code, simulation config, seed, backend); results are
appended durably under a campaign directory as they complete.  This gives
four properties the scenario subsystem is built on:

* **cache hits** — re-running a sweep never recomputes a cell whose key is
  already in the store;
* **resumability** — an interrupted sweep checkpoints per cell, so rerunning
  it completes exactly the missing cells and yields a store byte-identical
  to an uninterrupted run;
* **queryability** — typed load/query APIs for :mod:`repro.analysis` and the
  CLI's ``scenario report``;
* **crash/concurrency safety** — appends are atomic under advisory locks
  (so multiple writer processes can share one store), a torn trailing line
  left by a killed writer is repaired on open, and every record's content
  address is verified when its bytes are parsed.

The package is layered: :mod:`repro.store.records` defines the canonical
record model, :mod:`repro.store.locks` the advisory-lock primitive,
:mod:`repro.store.layout` the on-disk engines (single-file **v1** and
sharded-with-compacted-index **v2**), :mod:`repro.store.lifecycle` the
administrative operations behind ``repro store`` (stat/verify/compact/
gc/migrate), and :mod:`repro.store.store` the :class:`CampaignStore`
facade everything else consumes.
"""

from repro.exceptions import StoreError, StoreLockTimeoutError
from repro.store.layout import (
    LAYOUT_NAMES,
    MANIFEST_FILENAME,
    SHARD_PREFIX_CHARS,
    SHARDED,
    SINGLE_FILE,
    ShardedLayout,
    SingleFileLayout,
    StoreLayout,
    detect_layout,
    make_layout,
)
from repro.store.lifecycle import (
    store_compact,
    store_gc,
    store_migrate,
    store_stat,
    store_verify,
)
from repro.store.locks import (
    DEFAULT_LOCK_TIMEOUT_S,
    LOCK_TIMEOUT_ENV,
    backoff_delays,
    file_lock,
    is_stale_lockfile,
    resolve_lock_timeout,
)
from repro.store.records import (
    ResultRecord,
    StoreIntegrityError,
    canonical_json,
    content_key,
)
from repro.store.store import CampaignStore, store_lock

__all__ = [
    "DEFAULT_LOCK_TIMEOUT_S",
    "LAYOUT_NAMES",
    "LOCK_TIMEOUT_ENV",
    "MANIFEST_FILENAME",
    "SHARD_PREFIX_CHARS",
    "SHARDED",
    "SINGLE_FILE",
    "CampaignStore",
    "ResultRecord",
    "ShardedLayout",
    "SingleFileLayout",
    "StoreError",
    "StoreIntegrityError",
    "StoreLayout",
    "StoreLockTimeoutError",
    "backoff_delays",
    "canonical_json",
    "content_key",
    "detect_layout",
    "file_lock",
    "is_stale_lockfile",
    "make_layout",
    "resolve_lock_timeout",
    "store_compact",
    "store_gc",
    "store_lock",
    "store_migrate",
    "store_stat",
    "store_verify",
]
