"""Store layouts: the on-disk engines behind :class:`CampaignStore`.

Two layouts implement one contract (:class:`StoreLayout`):

* :class:`SingleFileLayout` (**v1**) — one append-only ``records.jsonl``
  under one store-wide advisory lock.  Kept bit-for-bit compatible with
  every store the repository has ever written: a pre-existing campaign
  directory opens, resumes, and re-serialises byte-identically.
* :class:`ShardedLayout` (**v2**) — records routed to
  ``segments/<prefix>.jsonl`` by the leading hex characters of their
  content key, one advisory lock *per segment* (concurrent writers on
  different shards never contend), plus a compacted JSONL sidecar index
  per segment (``index/<prefix>.idx``) mapping
  ``key -> (offset, length, seq, config)``.  Membership checks and
  config-equality queries are O(1) dictionary lookups over the index and
  never parse result payloads; record bodies load lazily on first access.
  A ``MANIFEST.json`` format marker identifies the layout;
  :func:`detect_layout` auto-detects it on open.

Determinism contract
--------------------

v1 guarantees a byte-identical ``records.jsonl`` for a deterministic
spec-order commit sequence.  v2 guarantees the same **per segment**: each
segment's bytes are a deterministic function of the committed record
sequence (spec-order commits land in spec order within their shard).
Global iteration order is the commit sequence number (``seq``) recorded
in the index — exactly the v1 insertion order for a single committer —
with ties across co-writing processes broken by ``(shard, offset)``,
which keeps iteration deterministic for any fixed record set.

Durability contract
-------------------

All of v1's machinery holds per segment in v2: appends are one
``write``+``fsync`` to an ``O_APPEND`` fd under the segment lock,
co-writers are deduplicated by content key after re-scanning the segment
tail, a torn trailing line left by a crashed writer is repaired on open,
and every record's content address is verified when its bytes are parsed
— eagerly on open for v1, lazily on first load for v2 (``repro store
verify`` forces the full check).  The sidecar index is *derived* state: a
torn, stale, or corrupt index is rebuilt from the segment bytes, never
trusted over them.
"""

from __future__ import annotations

import contextlib
import json
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.exceptions import StoreError
from repro.obs import TRACER
from repro.store.locks import file_lock
from repro.store.records import (
    ResultRecord,
    StoreIntegrityError,
    canonical_json,
    content_key,
    parse_record_line,
    reconcile,
)

#: v1 artefacts (also the facade's historical class-attribute values).
RECORDS_FILENAME = "records.jsonl"
LOCK_FILENAME = "records.lock"

#: v2 artefacts.
MANIFEST_FILENAME = "MANIFEST.json"
SEGMENTS_DIRNAME = "segments"
INDEX_DIRNAME = "index"
MANIFEST_FORMAT = "repro-campaign-store"
SHARDED_LAYOUT_VERSION = 2

#: Hex characters of the content key that route a record to its segment
#: (2 -> up to 256 segments, plenty of lock granularity for one campaign).
SHARD_PREFIX_CHARS = 2

#: Public layout names (CLI values, ``CampaignStore(layout=...)``).
SINGLE_FILE = "single-file"
SHARDED = "sharded"
LAYOUT_NAMES = (SINGLE_FILE, SHARDED)


def detect_layout(directory: str) -> Optional[str]:
    """Auto-detect the layout of a campaign directory, ``None`` if empty.

    A ``MANIFEST.json`` marks a sharded (v2) store and wins over a stray
    ``records.jsonl`` (an interrupted migration's leftover; ``repro store
    gc`` removes it).  A bare ``records.jsonl`` is a v1 store.
    """
    if os.path.exists(os.path.join(directory, MANIFEST_FILENAME)):
        read_manifest(directory)  # validate loudly before claiming sharded
        return SHARDED
    if os.path.exists(os.path.join(directory, RECORDS_FILENAME)):
        return SINGLE_FILE
    return None


def read_manifest(directory: str) -> Optional[Dict[str, Any]]:
    """Load and validate ``MANIFEST.json``; ``None`` when absent."""
    path = os.path.join(directory, MANIFEST_FILENAME)
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except ValueError as error:
            raise StoreError(f"{path} is not valid JSON ({error})") from error
    if not isinstance(payload, dict) or payload.get("format") != MANIFEST_FORMAT:
        raise StoreError(
            f"{path} is not a {MANIFEST_FORMAT} manifest; refusing to guess"
        )
    if payload.get("layout") != SHARDED or payload.get("version") != (
        SHARDED_LAYOUT_VERSION
    ):
        raise StoreError(
            f"{path} declares unsupported layout "
            f"{payload.get('layout')!r} v{payload.get('version')!r}; this "
            f"build supports {SHARDED!r} v{SHARDED_LAYOUT_VERSION}"
        )
    chars = payload.get("shard_prefix_chars")
    if not isinstance(chars, int) or not 1 <= chars <= 8:
        raise StoreError(f"{path} has invalid shard_prefix_chars {chars!r}")
    return payload


def write_manifest(
    directory: str, shard_prefix_chars: int = SHARD_PREFIX_CHARS
) -> None:
    """Atomically write the sharded-layout manifest (the v2 commit point)."""
    path = os.path.join(directory, MANIFEST_FILENAME)
    payload = {
        "format": MANIFEST_FORMAT,
        "layout": SHARDED,
        "version": SHARDED_LAYOUT_VERSION,
        "shard_prefix_chars": shard_prefix_chars,
    }
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


#: Structural prefix of an index line: the key always leads, so opening a
#: store can slice keys out of sidecar lines without a JSON parse per row.
_INDEX_LINE_PREFIX = b'{"k":"'
_KEY_HEX_CHARS = 64  # SHA-256


class IndexEntry:
    """One compacted-index row: where a record lives and what configured it.

    ``length`` is the record line's byte length *excluding* its newline;
    ``seq`` is the commit sequence number ordering global iteration;
    ``config`` rides along so config-equality queries never touch payloads.

    Entries are **lazily parsed**: opening a store materialises only the
    ``key``/``shard`` of each row (sliced straight out of the sidecar
    bytes — the O(1)-membership hot path never runs a JSON parse per
    record); ``offset``/``length``/``seq``/``config`` decode the raw line
    on first access.  A row that turns out to be garbage when finally
    decoded raises :class:`StoreIntegrityError` at that point — mid-file
    sidecar damage cannot be crash fallout (appends only ever tear the
    tail, which open reconciles), so it fails loudly like any other
    corruption.
    """

    __slots__ = ("key", "shard", "_raw", "_fields")

    def __init__(
        self,
        key: str,
        shard: str,
        offset: int,
        length: int,
        seq: int,
        config: Dict[str, Any],
    ) -> None:
        self.key = key
        self.shard = shard
        self._raw: Optional[bytes] = None
        self._fields: Optional[Tuple[int, int, int, Dict[str, Any]]] = (
            offset, length, seq, config,
        )

    @classmethod
    def lazy(cls, key: str, shard: str, raw: bytes) -> "IndexEntry":
        """An entry backed by its raw sidecar line, decoded on first use."""
        entry = cls.__new__(cls)
        entry.key = key
        entry.shard = shard
        entry._raw = raw
        entry._fields = None
        return entry

    def _decode(self) -> Tuple[int, int, int, Dict[str, Any]]:
        fields = self._fields
        if fields is None:
            assert self._raw is not None
            source = f"index entry for key {self.key}"
            try:
                payload = json.loads(self._raw)
                fields = (
                    int(payload["o"]), int(payload["l"]),
                    int(payload["q"]), payload["c"],
                )
            except (ValueError, KeyError, TypeError) as error:
                raise StoreIntegrityError(
                    f"{source} (segment {self.shard}) is unparseable "
                    f"({error}); rebuild the index with `repro store "
                    "compact`"
                ) from error
            if (
                payload.get("k") != self.key
                or not isinstance(fields[3], dict)
                or fields[0] < 0
                or fields[1] <= 0
                or not self.key.startswith(self.shard)
            ):
                raise StoreIntegrityError(
                    f"{source} (segment {self.shard}) is inconsistent; "
                    "rebuild the index with `repro store compact`"
                )
            self._fields = fields
        return fields

    @property
    def offset(self) -> int:
        return self._decode()[0]

    @property
    def length(self) -> int:
        return self._decode()[1]

    @property
    def seq(self) -> int:
        return self._decode()[2]

    @property
    def config(self) -> Dict[str, Any]:
        return self._decode()[3]

    def end(self) -> int:
        """First segment byte past this record (its newline included)."""
        return self.offset + self.length + 1

    def to_json_line(self) -> str:
        # Fixed field order with the key first, matching
        # _INDEX_LINE_PREFIX so open can slice keys without parsing.
        offset, length, seq, config = self._decode()
        return (
            f'{{"k":"{self.key}","o":{offset},"l":{length},"q":{seq},'
            f'"c":{canonical_json(config)}}}'
        )

    @classmethod
    def from_json_line(cls, line: str, shard: str) -> "IndexEntry":
        payload = json.loads(line)
        return cls(
            key=payload["k"],
            shard=shard,
            offset=int(payload["o"]),
            length=int(payload["l"]),
            seq=int(payload["q"]),
            config=payload["c"],
        )


class StoreLayout:
    """Contract a storage layout implements for :class:`CampaignStore`.

    A layout owns the on-disk representation under one campaign directory:
    membership, deterministic iteration order, (lazy) record loading,
    locked durable appends, and the lifecycle operations ``verify`` /
    ``compact`` / ``gc``.
    """

    name: str = "abstract"

    def __init__(self, directory: str, lock_timeout_s: Optional[float] = None):
        self._directory = str(directory)
        self._lock_timeout_s = lock_timeout_s
        os.makedirs(self._directory, exist_ok=True)

    @property
    def directory(self) -> str:
        """The campaign directory this layout persists under."""
        return self._directory

    def __len__(self) -> int:
        raise NotImplementedError

    def has(self, key: str) -> bool:
        """O(1) membership: is ``key`` committed? (the cache-hit check)"""
        raise NotImplementedError

    def keys(self) -> List[str]:
        """All stored keys in the layout's deterministic iteration order."""
        raise NotImplementedError

    def get(self, key: str) -> Optional[ResultRecord]:
        """The record stored under ``key`` (loaded lazily), or ``None``."""
        raise NotImplementedError

    def iter_records(self) -> Iterator[ResultRecord]:
        """Every record, in :meth:`keys` order."""
        for key in self.keys():
            record = self.get(key)
            assert record is not None  # keys() only lists committed records
            yield record

    def iter_configs(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """``(key, config)`` pairs in :meth:`keys` order, payload-free.

        The index-resident path config-equality queries filter on without
        deserialising result payloads.
        """
        raise NotImplementedError

    def append(self, record: ResultRecord) -> ResultRecord:
        """Durably commit ``record`` (dedup-checked, locked, fsynced)."""
        raise NotImplementedError

    def verify(self) -> List[str]:
        """Deep-check every byte; return human-readable problem strings."""
        raise NotImplementedError

    def compact(self) -> Dict[str, Any]:
        """Rewrite storage dropping garbage; return a summary dict."""
        raise NotImplementedError

    def gc(self) -> Dict[str, Any]:
        """Remove dead artefacts (stale locks, tmp files, orphans)."""
        raise NotImplementedError


# ---------------------------------------------------------------------------
# v1: single records.jsonl under one store-wide lock
# ---------------------------------------------------------------------------

class SingleFileLayout(StoreLayout):
    """v1: one append-only ``records.jsonl``, fully indexed in memory.

    Opening scans the whole file under the store lock, verifying every
    record's content address and repairing a torn trailing line left by a
    crashed writer — the exact machinery PR 4 hardened, unchanged, so
    every existing campaign directory keeps its byte-for-byte guarantees.
    """

    name = SINGLE_FILE

    def __init__(self, directory: str, lock_timeout_s: Optional[float] = None):
        super().__init__(directory, lock_timeout_s)
        self._records: Dict[str, ResultRecord] = {}
        self._order: List[str] = []
        #: Byte offset up to which ``records.jsonl`` has been indexed; bytes
        #: past it were appended by other writers since our last look.
        self._scan_offset = 0
        if os.path.exists(self.records_path):
            with self._lock():
                self._refresh_from_disk()

    @property
    def records_path(self) -> str:
        """Path of the JSONL records file."""
        return os.path.join(self._directory, RECORDS_FILENAME)

    def _lock(self) -> Any:
        return file_lock(
            os.path.join(self._directory, LOCK_FILENAME),
            timeout_s=self._lock_timeout_s,
        )

    # -- read side ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def has(self, key: str) -> bool:
        return key in self._records

    def keys(self) -> List[str]:
        return list(self._order)

    def get(self, key: str) -> Optional[ResultRecord]:
        return self._records.get(key)

    def iter_configs(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        for key in self._order:
            yield key, self._records[key].config

    # -- write side ---------------------------------------------------------
    def append(self, record: ResultRecord) -> ResultRecord:
        existing = self._records.get(record.key)
        if existing is not None:
            return reconcile(existing, record)
        with self._lock():
            # Another process may have committed this cell (or others) since
            # we last looked; index the new tail before deciding to append.
            self._refresh_from_disk()
            existing = self._records.get(record.key)
            if existing is not None:
                return reconcile(existing, record)
            payload = (record.to_json_line() + "\n").encode("utf-8")
            self._append_payload_locked(payload)
            self._scan_offset += len(payload)
        self._records[record.key] = record
        self._order.append(record.key)
        return record

    def _append_payload_locked(self, payload: bytes) -> None:
        """One write+fsync to the O_APPEND fd.  Caller holds the lock."""
        append_start = time.perf_counter() if TRACER.enabled else 0.0
        fd = os.open(  # repro-lint: ignore[RPR104] -- leaf of append(), which holds the store lock around this call
            self.records_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            start = os.fstat(fd).st_size
            try:
                written = 0
                while written < len(payload):
                    chunk = os.write(fd, payload[written:])  # repro-lint: ignore[RPR104] -- leaf of append(), which holds the store lock around this call
                    if chunk == 0:
                        raise StoreError(
                            f"zero-byte write appending to {self.records_path}"
                        )
                    written += chunk
                fsync_start = time.perf_counter() if TRACER.enabled else 0.0
                os.fsync(fd)
                if TRACER.enabled:
                    now = time.perf_counter()
                    TRACER.add("store.appends")
                    TRACER.add("store.bytes_appended", len(payload))
                    TRACER.add("store.fsync_s", now - fsync_start)
                    TRACER.add("store.append_s", now - append_start)
            except BaseException:
                # A short/failed write leaves a torn fragment that later
                # appends would turn into unrepairable *mid-file*
                # corruption; roll it back while we still hold the lock.
                with contextlib.suppress(OSError):
                    os.ftruncate(fd, start)
                raise
        finally:
            os.close(fd)

    # -- internals ----------------------------------------------------------
    def _refresh_from_disk(self) -> None:
        """Index records appended since the last scan.  Caller holds the lock.

        Because every writer appends only while holding the lock, a partial
        trailing line observed *under the lock* can only be a crash artifact:
        it is repaired in place (truncated, or completed with its missing
        newline when the record itself survived intact).
        """
        if not os.path.exists(self.records_path):
            return
        with open(self.records_path, "rb") as handle:
            handle.seek(self._scan_offset)
            data = handle.read()
        position = 0
        while position < len(data):
            newline = data.find(b"\n", position)
            if newline == -1:
                self._repair_tail(data[position:], self._scan_offset + position)
                return
            line = data[position:newline]
            if line.strip():
                self._index_line(line, self._scan_offset + position)
            position = newline + 1
        self._scan_offset += position

    def _index_line(self, line: bytes, offset: int) -> None:
        record = parse_record_line(line, self.records_path, offset)
        existing = self._records.get(record.key)
        if existing is not None:
            if existing.to_json_line() != record.to_json_line():
                raise StoreIntegrityError(
                    f"{self.records_path} holds two different results for key "
                    f"{record.key} (second at byte {offset}); refusing to "
                    "pick one silently"
                )
            return
        self._records[record.key] = record
        self._order.append(record.key)

    def _repair_tail(self, fragment: bytes, offset: int) -> None:
        """Handle a trailing line with no newline (a crashed writer's append).

        A crash-torn append is a strict prefix of one JSON object and can
        never parse, so an unparseable fragment is truncated away (the cell
        is re-simulated on resume).  A fragment that *does* parse is a
        complete record missing only its newline: it is verified exactly
        like any other line — failing loudly on a bad content address —
        and then completed in place.
        """
        if not fragment.strip():
            # Just stray whitespace at the tail; absorb it.
            self._scan_offset = offset + len(fragment)
            return
        try:
            ResultRecord.from_json_line(fragment.decode("utf-8"))
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            fd = os.open(self.records_path, os.O_RDWR)
            try:
                os.ftruncate(fd, offset)
                os.fsync(fd)
            finally:
                os.close(fd)
            self._scan_offset = offset
            if TRACER.enabled:
                TRACER.add("store.torn_tail_repairs")
                TRACER.event(
                    "store.torn_tail_repair",
                    {"path": self.records_path, "offset": offset,
                     "truncated_bytes": len(fragment)},
                )
            return
        self._index_line(fragment, offset)  # raises on key/config mismatch
        with open(self.records_path, "ab") as handle:  # repro-lint: ignore[RPR104] -- _repair_tail runs with the store lock already held by its caller
            handle.write(b"\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._scan_offset = offset + len(fragment) + 1
        if TRACER.enabled:
            TRACER.add("store.torn_tail_repairs")
            TRACER.event(
                "store.torn_tail_repair",
                {"path": self.records_path, "offset": offset,
                 "restored_newline": True},
            )

    # -- lifecycle ----------------------------------------------------------
    def verify(self) -> List[str]:
        problems: List[str] = []
        if not os.path.exists(self.records_path):
            return problems
        raw = _read_bytes(self.records_path)
        if raw and not raw.endswith(b"\n"):
            problems.append(
                f"{self.records_path}: missing trailing newline (reopening "
                "the store repairs this)"
            )
        return problems

    def compact(self) -> Dict[str, Any]:
        """Rewrite ``records.jsonl`` canonically (drops stray whitespace)."""
        with self._lock():
            self._refresh_from_disk()
            before = (
                os.path.getsize(self.records_path)
                if os.path.exists(self.records_path) else 0
            )
            payload = "".join(
                self._records[key].to_json_line() + "\n" for key in self._order
            ).encode("utf-8")
            if payload or before:
                _write_file_durably(self.records_path, payload)
            self._scan_offset = len(payload)
        if TRACER.enabled:
            TRACER.add("store.compactions")
            TRACER.add("store.compaction.bytes_reclaimed", before - len(payload))
        return {
            "layout": self.name,
            "segments_compacted": 1 if (payload or before) else 0,
            "bytes_before": before,
            "bytes_after": len(payload),
            "records": len(self._records),
        }

    def gc(self) -> Dict[str, Any]:
        removed: Dict[str, List[str]] = {
            "stale_locks": [], "tmp_files": [], "migration_leftovers": [],
        }
        _gc_stale_lock(os.path.join(self._directory, LOCK_FILENAME), removed)
        _gc_tmp_files(self._directory, removed)
        # An interrupted sharded->single-file migration removes the manifest
        # (making v1 authoritative) before the segment dirs; sweep them up.
        for dirname in (SEGMENTS_DIRNAME, INDEX_DIRNAME):
            path = os.path.join(self._directory, dirname)
            if os.path.isdir(path):
                _gc_tmp_files(path, removed)
                for name in sorted(os.listdir(path)):
                    os.unlink(os.path.join(path, name))
                    removed["migration_leftovers"].append(
                        os.path.join(path, name)
                    )
                os.rmdir(path)
                removed["migration_leftovers"].append(path)
        return {"layout": self.name, "removed": removed}


# ---------------------------------------------------------------------------
# v2: key-prefix segments + compacted sidecar index, per-segment locks
# ---------------------------------------------------------------------------

class ShardedLayout(StoreLayout):
    """v2: records sharded by content-key prefix with a compacted index.

    See the module docstring for the determinism and durability contracts.
    """

    name = SHARDED

    def __init__(self, directory: str, lock_timeout_s: Optional[float] = None):
        super().__init__(directory, lock_timeout_s)
        manifest = read_manifest(self._directory)
        if manifest is None:
            if os.path.exists(os.path.join(self._directory, RECORDS_FILENAME)):
                raise StoreError(
                    f"{self._directory} holds a v1 single-file store; run "
                    "`repro store migrate --to sharded` instead of opening "
                    "it as sharded"
                )
            write_manifest(self._directory)
            self._prefix_chars = SHARD_PREFIX_CHARS
        else:
            self._prefix_chars = int(manifest["shard_prefix_chars"])
        os.makedirs(self._segments_dir, exist_ok=True)
        os.makedirs(self._index_dir, exist_ok=True)
        #: key -> index entry (the O(1) membership map; payload-free).
        self._entries: Dict[str, IndexEntry] = {}
        #: Lazily parsed records, cached by key.
        self._loaded: Dict[str, ResultRecord] = {}
        #: Per shard: segment bytes accounted for by ``_entries``.
        self._coverage: Dict[str, int] = {}
        #: Next commit sequence number; materialised lazily on first write
        #: (computing it decodes every index entry, which a read-only open
        #: never needs to pay for).
        self._next_seq: Optional[int] = None
        self._order_cache: Optional[List[str]] = None
        self._load_existing()

    # -- paths --------------------------------------------------------------
    @property
    def _segments_dir(self) -> str:
        return os.path.join(self._directory, SEGMENTS_DIRNAME)

    @property
    def _index_dir(self) -> str:
        return os.path.join(self._directory, INDEX_DIRNAME)

    def _segment_path(self, shard: str) -> str:
        return os.path.join(self._segments_dir, f"{shard}.jsonl")

    def _sidecar_path(self, shard: str) -> str:
        return os.path.join(self._index_dir, f"{shard}.idx")

    def _segment_lock(self, shard: str) -> Any:
        return file_lock(
            os.path.join(self._segments_dir, f"{shard}.lock"),
            timeout_s=self._lock_timeout_s,
            counter_prefix="store.segment.lock",
        )

    def shard_of(self, key: str) -> str:
        """The segment a content key routes to (its leading hex chars)."""
        if len(key) <= self._prefix_chars:
            raise StoreIntegrityError(
                f"content key {key!r} is too short to shard"
            )
        return key[: self._prefix_chars]

    def _shard_names(self) -> List[str]:
        names = []
        for filename in sorted(os.listdir(self._segments_dir)):
            if not filename.endswith(".jsonl"):
                continue
            shard = filename[: -len(".jsonl")]
            if len(shard) == self._prefix_chars and _is_hex(shard):
                names.append(shard)
        return names

    # -- open ---------------------------------------------------------------
    def _load_existing(self) -> None:
        if TRACER.enabled:
            TRACER.add("store.index.loads")
        for shard in self._shard_names():
            self._load_shard(shard)

    def _load_shard(self, shard: str) -> None:
        seg_path = self._segment_path(shard)
        size = os.path.getsize(seg_path)
        entries, coverage, intact = self._read_sidecar(shard, size)
        if intact and coverage == size:
            # The hot path: a compacted index fully covering its segment —
            # no lock, no segment read, no payload parse.
            self._adopt(shard, entries, coverage)
            return
        # Index stale (writer crashed between segment and index append),
        # torn, or corrupt: reconcile against the authoritative segment
        # bytes under the segment lock, then rewrite the sidecar compacted.
        with self._segment_lock(shard):
            if not intact:
                entries, coverage = [], 0
                if TRACER.enabled:
                    TRACER.add("store.index.rebuilds")
            by_key = {entry.key: entry for entry in entries}
            tail, coverage = self._scan_segment_locked(shard, coverage, by_key)
            entries.extend(tail)
            self._rewrite_sidecar_locked(shard, entries)
        self._adopt(shard, entries, coverage)

    def _adopt(
        self, shard: str, entries: List[IndexEntry], coverage: int
    ) -> None:
        for entry in entries:
            self._entries[entry.key] = entry
            if self._next_seq is not None and entry.seq >= self._next_seq:
                self._next_seq = entry.seq + 1
        self._coverage[shard] = coverage
        self._order_cache = None

    def _take_seq(self) -> int:
        """Claim the next commit sequence number (materialising it lazily)."""
        if self._next_seq is None:
            self._next_seq = 1 + max(
                (entry.seq for entry in self._entries.values()), default=-1
            )
        seq = self._next_seq
        self._next_seq = seq + 1
        return seq

    def _read_sidecar(
        self, shard: str, segment_size: int
    ) -> Tuple[List[IndexEntry], int, bool]:
        """Load ``index/<shard>.idx``: ``(entries, coverage, intact)``.

        ``intact=False`` demands a full rebuild from the segment.  A torn
        *final* line (a writer crashed mid index append) is dropped — the
        segment tail scan recovers the records it covered — but damage
        anywhere else distrusts the whole sidecar.
        """
        path = self._sidecar_path(shard)
        if not os.path.exists(path):
            return [], 0, segment_size == 0
        raw = _read_bytes(path)
        entries: List[IndexEntry] = []
        seen = set()
        prefix_len = len(_INDEX_LINE_PREFIX)
        key_end = prefix_len + _KEY_HEX_CHARS
        lines = raw.split(b"\n")
        # A final chunk with no terminating newline is a torn index append;
        # drop it — the segment tail scan recovers the record it covered.
        lines.pop()
        last = len(lines) - 1
        make_lazy = IndexEntry.lazy
        adopt_entry = entries.append
        note_seen = seen.add
        for position, line in enumerate(lines):
            # Fast structural check: the fixed field order puts the key
            # first, so membership needs only a slice, not a JSON parse.
            if (
                line[:prefix_len] == _INDEX_LINE_PREFIX
                and line[key_end:key_end + 2] == b'",'
            ):
                key = line[prefix_len:key_end].decode("ascii")
                if key[: len(shard)] != shard:
                    return [], 0, False
                entry = make_lazy(key, shard, line)
            else:
                if not line.strip():
                    continue
                try:
                    entry = IndexEntry.from_json_line(
                        line.decode("utf-8"), shard
                    )
                except (ValueError, KeyError, TypeError, UnicodeDecodeError):
                    if position == last:
                        break  # unparseable *final* line: torn-append case
                    return [], 0, False
                if not entry.key.startswith(shard):
                    return [], 0, False
            if entry.key in seen:
                return [], 0, False
            note_seen(entry.key)
            adopt_entry(entry)
        # Coverage comes from the final entry alone; interior rows decode
        # lazily and are deep-checked by `verify`.  A final row that fails
        # to decode is the torn-append case one more time: drop it and let
        # the locked tail scan recover its record from the segment — but
        # only the final row earns that forgiveness.
        if not entries:
            return [], 0, True
        try:
            coverage = entries[-1].end()
        except StoreIntegrityError:
            entries.pop()
            if not entries:
                return [], 0, True
            try:
                coverage = entries[-1].end()
            except StoreIntegrityError:
                return [], 0, False
        if coverage > segment_size:
            return [], 0, False
        return entries, coverage, True

    def _scan_segment_locked(
        self,
        shard: str,
        from_offset: int,
        known: Dict[str, IndexEntry],
    ) -> Tuple[List[IndexEntry], int]:
        """Index segment bytes past ``from_offset``.  Caller holds the lock.

        Returns the new entries and the post-scan coverage.  Exactly v1's
        tail semantics per segment: whitespace is absorbed, an unparseable
        trailing fragment is truncated away, a parseable one is verified
        and completed with its newline, and damage anywhere *except* the
        tail raises :class:`StoreIntegrityError`.
        """
        seg_path = self._segment_path(shard)
        if not os.path.exists(seg_path):
            return [], from_offset
        with open(seg_path, "rb") as handle:
            handle.seek(from_offset)
            data = handle.read()
        new_entries: List[IndexEntry] = []
        position = 0
        coverage = from_offset
        while position < len(data):
            newline = data.find(b"\n", position)
            offset = from_offset + position
            if newline == -1:
                fragment = data[position:]
                coverage = self._repair_segment_tail_locked(
                    shard, fragment, offset, known, new_entries
                )
                return new_entries, coverage
            line = data[position:newline]
            if line.strip():
                self._index_segment_line(
                    shard, line, offset, known, new_entries
                )
            position = newline + 1
            coverage = from_offset + position
        return new_entries, coverage

    def _index_segment_line(
        self,
        shard: str,
        line: bytes,
        offset: int,
        known: Dict[str, IndexEntry],
        new_entries: List[IndexEntry],
    ) -> None:
        seg_path = self._segment_path(shard)
        record = parse_record_line(line, seg_path, offset)
        if self.shard_of(record.key) != shard:
            raise StoreIntegrityError(
                f"{seg_path} is corrupt at byte {offset}: record key "
                f"{record.key} does not belong to segment {shard!r}"
            )
        existing = known.get(record.key)
        if existing is not None:
            duplicate = self._load_record(existing)
            if duplicate.to_json_line() != record.to_json_line():
                raise StoreIntegrityError(
                    f"{seg_path} holds two different results for key "
                    f"{record.key} (second at byte {offset}); refusing to "
                    "pick one silently"
                )
            return
        entry = IndexEntry(
            key=record.key,
            shard=shard,
            offset=offset,
            length=len(line),
            seq=self._take_seq(),
            config=record.config,
        )
        known[record.key] = entry
        new_entries.append(entry)
        self._loaded[record.key] = record

    def _repair_segment_tail_locked(
        self,
        shard: str,
        fragment: bytes,
        offset: int,
        known: Dict[str, IndexEntry],
        new_entries: List[IndexEntry],
    ) -> int:
        """v1's torn-tail repair, per segment.  Caller holds the lock."""
        seg_path = self._segment_path(shard)
        if not fragment.strip():
            return offset + len(fragment)  # stray whitespace; absorb it
        try:
            ResultRecord.from_json_line(fragment.decode("utf-8"))
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            fd = os.open(seg_path, os.O_RDWR)
            try:
                os.ftruncate(fd, offset)
                os.fsync(fd)
            finally:
                os.close(fd)
            if TRACER.enabled:
                TRACER.add("store.torn_tail_repairs")
                TRACER.event(
                    "store.torn_tail_repair",
                    {"path": seg_path, "offset": offset,
                     "truncated_bytes": len(fragment)},
                )
            return offset
        # A complete record missing only its newline: verify it like any
        # other line, then complete it in place.
        self._index_segment_line(shard, fragment, offset, known, new_entries)
        with open(seg_path, "ab") as handle:  # repro-lint: ignore[RPR104] -- tail repair runs with the segment lock already held by its caller
            handle.write(b"\n")
            handle.flush()
            os.fsync(handle.fileno())
        if TRACER.enabled:
            TRACER.add("store.torn_tail_repairs")
            TRACER.event(
                "store.torn_tail_repair",
                {"path": seg_path, "offset": offset, "restored_newline": True},
            )
        return offset + len(fragment) + 1

    def _rewrite_sidecar_locked(
        self, shard: str, entries: List[IndexEntry]
    ) -> None:
        """Atomically replace ``index/<shard>.idx``.  Caller holds the lock."""
        payload = "".join(
            entry.to_json_line() + "\n" for entry in entries
        ).encode("utf-8")
        _write_file_durably(self._sidecar_path(shard), payload)

    # -- read side ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def has(self, key: str) -> bool:
        return key in self._entries

    def keys(self) -> List[str]:
        if self._order_cache is None:
            ordered = sorted(
                self._entries.values(),
                key=lambda entry: (entry.seq, entry.shard, entry.offset),
            )
            self._order_cache = [entry.key for entry in ordered]
        return list(self._order_cache)

    def get(self, key: str) -> Optional[ResultRecord]:
        entry = self._entries.get(key)
        if entry is None:
            return None
        cached = self._loaded.get(key)
        if cached is not None:
            return cached
        record = self._load_record(entry)
        self._loaded[key] = record
        return record

    def _load_record(self, entry: IndexEntry) -> ResultRecord:
        cached = self._loaded.get(entry.key)
        if cached is not None:
            return cached
        seg_path = self._segment_path(entry.shard)
        with open(seg_path, "rb") as handle:
            handle.seek(entry.offset)
            line = handle.read(entry.length)
        record = parse_record_line(line, seg_path, entry.offset)
        if record.key != entry.key:
            raise StoreIntegrityError(
                f"{seg_path}: index entry for key {entry.key} points at a "
                f"record with key {record.key} (byte {entry.offset}); the "
                "sidecar index is stale — run `repro store compact`"
            )
        if TRACER.enabled:
            TRACER.add("store.lazy_record_loads")
        return record

    def iter_configs(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        for key in self.keys():
            yield key, self._entries[key].config

    # -- write side ---------------------------------------------------------
    def append(self, record: ResultRecord) -> ResultRecord:
        existing_entry = self._entries.get(record.key)
        if existing_entry is not None:
            loaded = self.get(record.key)
            assert loaded is not None
            return reconcile(loaded, record)
        shard = self.shard_of(record.key)
        with self._segment_lock(shard):
            # Another process may have committed to this segment since we
            # last looked; index its new tail before deciding to append.
            self._refresh_shard_locked(shard)
            existing_entry = self._entries.get(record.key)
            if existing_entry is not None:
                loaded = self._load_record(existing_entry)
                return reconcile(loaded, record)
            line = record.to_json_line()
            payload = (line + "\n").encode("utf-8")
            start = self._append_segment_payload_locked(shard, payload)
            entry = IndexEntry(
                key=record.key,
                shard=shard,
                offset=start,
                length=len(payload) - 1,
                seq=self._take_seq(),
                config=record.config,
            )
            # The sidecar append is unfsynced on purpose: the index is
            # derived state, rebuilt from the segment if a crash tears it.
            with open(self._sidecar_path(shard), "ab") as handle:
                handle.write((entry.to_json_line() + "\n").encode("utf-8"))
                handle.flush()
            self._entries[record.key] = entry
            self._coverage[shard] = entry.end()
            self._order_cache = None
        self._loaded[record.key] = record
        return record

    def _append_segment_payload_locked(self, shard: str, payload: bytes) -> int:
        """One write+fsync to the segment's O_APPEND fd.  Caller holds its lock.

        Returns the byte offset the payload landed at.
        """
        seg_path = self._segment_path(shard)
        append_start = time.perf_counter() if TRACER.enabled else 0.0
        fd = os.open(  # repro-lint: ignore[RPR104] -- leaf of append(), which holds the segment lock around this call
            seg_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            start = os.fstat(fd).st_size
            try:
                written = 0
                while written < len(payload):
                    chunk = os.write(fd, payload[written:])  # repro-lint: ignore[RPR104] -- leaf of append(), which holds the segment lock around this call
                    if chunk == 0:
                        raise StoreError(
                            f"zero-byte write appending to {seg_path}"
                        )
                    written += chunk
                fsync_start = time.perf_counter() if TRACER.enabled else 0.0
                os.fsync(fd)
                if TRACER.enabled:
                    now = time.perf_counter()
                    TRACER.add("store.appends")
                    TRACER.add("store.bytes_appended", len(payload))
                    TRACER.add("store.segment.appends")
                    TRACER.add("store.segment.bytes_appended", len(payload))
                    TRACER.add("store.fsync_s", now - fsync_start)
                    TRACER.add("store.append_s", now - append_start)
            except BaseException:
                with contextlib.suppress(OSError):
                    os.ftruncate(fd, start)
                raise
        finally:
            os.close(fd)
        return start

    def _refresh_shard_locked(self, shard: str) -> None:
        """Index other writers' appends to ``shard``.  Caller holds its lock."""
        coverage = self._coverage.get(shard, 0)
        by_key = {
            key: entry for key, entry in self._entries.items()
            if entry.shard == shard
        }
        tail, coverage = self._scan_segment_locked(shard, coverage, by_key)
        if tail:
            self._adopt(shard, tail, coverage)
            # Keep the sidecar ahead of what we just learned from the
            # segment so the next open takes the lock-free fast path.
            all_entries = sorted(
                (e for e in self._entries.values() if e.shard == shard),
                key=lambda entry: entry.offset,
            )
            self._rewrite_sidecar_locked(shard, all_entries)
        else:
            self._coverage[shard] = coverage

    # -- lifecycle ----------------------------------------------------------
    def verify(self) -> List[str]:
        """Load and content-verify every record; cross-check the index."""
        problems: List[str] = []
        by_shard: Dict[str, List[IndexEntry]] = {}
        for key in sorted(self._entries):
            entry = self._entries[key]
            by_shard.setdefault(entry.shard, []).append(entry)
            if self.shard_of(key) != entry.shard:
                problems.append(
                    f"index entry for key {key} routed to segment "
                    f"{entry.shard!r}, expected {self.shard_of(key)!r}"
                )
        for shard in self._shard_names():
            size = os.path.getsize(self._segment_path(shard))
            covered = self._coverage.get(shard, 0)
            if covered != size:
                problems.append(
                    f"segment {shard}: {size - covered} bytes beyond index "
                    "coverage (reopen or compact to reconcile)"
                )
            spans: List[Tuple[int, int]] = []
            for entry in by_shard.get(shard, []):
                try:
                    self._load_record(entry)
                    spans.append((entry.offset, entry.end()))
                except StoreIntegrityError as error:
                    problems.append(str(error))
            spans.sort()
            position = 0
            for start, stop in spans:
                if start < position:
                    problems.append(
                        f"segment {shard}: index entries overlap at byte "
                        f"{start}"
                    )
                position = stop
        return problems

    def compact(self) -> Dict[str, Any]:
        """Rewrite each segment + sidecar, dropping index garbage.

        Records are rewritten canonically in offset order (preserving every
        ``seq``, hence the global iteration order), which drops stray
        whitespace from the segments and stale or duplicate rows from the
        sidecars; afterwards every sidecar exactly covers its segment, so
        subsequent opens take the lock-free fast path.
        """
        segments = 0
        bytes_before = 0
        bytes_after = 0
        for shard in self._shard_names():
            with self._segment_lock(shard):
                self._refresh_shard_locked(shard)
                entries = sorted(
                    (e for e in self._entries.values() if e.shard == shard),
                    key=lambda entry: entry.offset,
                )
                before = os.path.getsize(self._segment_path(shard))
                pieces: List[bytes] = []
                rewritten: List[IndexEntry] = []
                offset = 0
                for entry in entries:
                    record = self._load_record(entry)
                    line = record.to_json_line().encode("utf-8")
                    pieces.append(line + b"\n")
                    rewritten.append(
                        IndexEntry(
                            key=entry.key,
                            shard=shard,
                            offset=offset,
                            length=len(line),
                            seq=entry.seq,
                            config=entry.config,
                        )
                    )
                    offset += len(line) + 1
                payload = b"".join(pieces)
                _write_file_durably(self._segment_path(shard), payload)
                self._rewrite_sidecar_locked(shard, rewritten)
                for entry in rewritten:
                    self._entries[entry.key] = entry
                self._coverage[shard] = len(payload)
                self._order_cache = None
            segments += 1
            bytes_before += before
            bytes_after += len(payload)
        if TRACER.enabled:
            TRACER.add("store.compactions")
            TRACER.add("store.compaction.segments", segments)
            TRACER.add(
                "store.compaction.bytes_reclaimed", bytes_before - bytes_after
            )
        return {
            "layout": self.name,
            "segments_compacted": segments,
            "bytes_before": bytes_before,
            "bytes_after": bytes_after,
            "records": len(self._entries),
        }

    def gc(self) -> Dict[str, Any]:
        removed: Dict[str, List[str]] = {
            "stale_locks": [], "tmp_files": [], "migration_leftovers": [],
            "orphan_sidecars": [], "empty_segments": [],
        }
        for base in (self._directory, self._segments_dir, self._index_dir):
            _gc_tmp_files(base, removed)
        for name in sorted(os.listdir(self._segments_dir)):
            if name.endswith(".lock"):
                _gc_stale_lock(
                    os.path.join(self._segments_dir, name), removed
                )
        _gc_stale_lock(os.path.join(self._directory, LOCK_FILENAME), removed)
        # A records.jsonl next to a manifest is an interrupted migration's
        # leftover: the manifest is authoritative, the v1 file is dead.
        stale_v1 = os.path.join(self._directory, RECORDS_FILENAME)
        if os.path.exists(stale_v1):
            os.unlink(stale_v1)
            removed["migration_leftovers"].append(stale_v1)
        shards = set(self._shard_names())
        for name in sorted(os.listdir(self._index_dir)):
            if not name.endswith(".idx"):
                continue
            shard = name[: -len(".idx")]
            if shard not in shards:
                os.unlink(os.path.join(self._index_dir, name))
                removed["orphan_sidecars"].append(
                    os.path.join(self._index_dir, name)
                )
        for shard in sorted(shards):
            seg_path = self._segment_path(shard)
            if os.path.getsize(seg_path) == 0:
                os.unlink(seg_path)
                removed["empty_segments"].append(seg_path)
                sidecar = self._sidecar_path(shard)
                if os.path.exists(sidecar):
                    os.unlink(sidecar)
                    removed["empty_segments"].append(sidecar)
        return {"layout": self.name, "removed": removed}


# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------

def make_layout(
    name: str, directory: str, lock_timeout_s: Optional[float] = None
) -> StoreLayout:
    """Instantiate the layout registered under ``name``."""
    if name == SINGLE_FILE:
        return SingleFileLayout(directory, lock_timeout_s)
    if name == SHARDED:
        return ShardedLayout(directory, lock_timeout_s)
    raise StoreError(
        f"unknown store layout {name!r}; known layouts: {LAYOUT_NAMES}"
    )


def _is_hex(text: str) -> bool:
    return all(char in "0123456789abcdef" for char in text)


def _read_bytes(path: str) -> bytes:
    with open(path, "rb") as handle:
        return handle.read()


def _write_file_durably(path: str, payload: bytes) -> None:
    """Atomically replace ``path`` with ``payload`` (tmp + fsync + rename)."""
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def _gc_stale_lock(lock_path: str, removed: Dict[str, List[str]]) -> None:
    from repro.store.locks import is_stale_lockfile

    if os.path.exists(lock_path) and is_stale_lockfile(lock_path):
        with contextlib.suppress(FileNotFoundError):
            os.unlink(lock_path)
        removed["stale_locks"].append(lock_path)


def _gc_tmp_files(directory: str, removed: Dict[str, List[str]]) -> None:
    if not os.path.isdir(directory):
        return
    for name in sorted(os.listdir(directory)):
        if name.endswith(".tmp"):
            path = os.path.join(directory, name)
            with contextlib.suppress(FileNotFoundError):
                os.unlink(path)
            removed["tmp_files"].append(path)
