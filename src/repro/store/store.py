"""Content-addressed campaign store, safe for crashes and co-writers.

:class:`CampaignStore` is the facade the rest of the repository talks to;
the on-disk engine behind it is a pluggable :class:`~repro.store.layout.
StoreLayout`:

* **single-file (v1)** — one append-only ``records.jsonl`` under one
  store-wide advisory lock.  The historical layout; every pre-existing
  campaign directory opens, resumes, and re-serialises byte-identically.
* **sharded (v2)** — records routed to ``segments/<hex-prefix>.jsonl``
  by content-key prefix with per-segment locks and a compacted sidecar
  index, so membership/cache-hit checks are O(1) over the index and open
  never parses result payloads.  Created with ``layout="sharded"`` (or
  ``repro scenario sweep --layout sharded``); converted to and from v1
  with ``repro store migrate``.

The layout of an existing directory is auto-detected (``MANIFEST.json``
marks v2); asking for a layout that contradicts what is on disk raises
:class:`~repro.exceptions.StoreError` pointing at ``repro store
migrate`` instead of silently forking the campaign.

Each record is one completed experiment cell::

    {"key": "<sha256>", "config": {...}, "result": {...}}

serialised canonically (sorted keys, compact separators) so a
deterministic campaign produces byte-identical store files run after
run.  The key is the SHA-256 of the canonical JSON of ``config`` — the
content address every cache/resume decision is made on.

Durability model (both layouts; per segment in v2)
--------------------------------------------------

* **Atomic appends** — every record is one ``write``/``fsync`` to a file
  opened ``O_APPEND`` while holding an exclusive advisory lock, so
  concurrent writer processes never interleave bytes within a record.
* **Multi-writer dedupe** — before appending, a store re-scans whatever
  other writers appended since its last look (under the same lock), so
  two processes racing on the same cell commit exactly one line.
* **Crash repair** — a process killed mid-append can leave a torn
  trailing line; opening the store truncates it (or restores its missing
  newline) and resumes.  Torn bytes anywhere *except* a tail raise
  :class:`StoreIntegrityError`.
* **Verification** — every record's ``key`` is re-derived from its
  ``config`` when its bytes are parsed: eagerly on open for v1, lazily
  on first load for v2 (``repro store verify`` forces the full check).
"""

from __future__ import annotations

import contextlib
import os
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.exceptions import StoreError
from repro.store.layout import (
    LAYOUT_NAMES,
    LOCK_FILENAME,
    RECORDS_FILENAME,
    SINGLE_FILE,
    StoreLayout,
    detect_layout,
    make_layout,
)
from repro.store.locks import file_lock, resolve_lock_timeout
from repro.store.records import (
    ResultRecord,
    StoreIntegrityError,
    content_key,
)

__all__ = [
    "CampaignStore",
    "StoreIntegrityError",
    "store_lock",
]


@contextlib.contextmanager
def store_lock(
    directory: str, timeout_s: Optional[float] = None
) -> Iterator[None]:
    """Hold the store-wide advisory lock of one campaign directory.

    The lock that serialises v1 appends (v2 uses one lock per segment; see
    :func:`repro.store.locks.file_lock` for acquisition semantics — capped
    exponential backoff, stale-lock recovery on the non-fcntl fallback,
    :class:`~repro.exceptions.StoreLockTimeoutError` after ``timeout_s``).
    """
    with file_lock(
        os.path.join(str(directory), CampaignStore.LOCK_FILENAME),
        timeout_s=timeout_s,
    ):
        yield


class CampaignStore:
    """Append-only, content-addressed result store under a directory.

    The facade over a :class:`~repro.store.layout.StoreLayout`: opening
    auto-detects the on-disk layout (defaulting to single-file for new
    directories), :meth:`put` appends and fsyncs one line per completed
    cell — the per-cell checkpoint that makes interrupted sweeps
    resumable — and reads go through the layout's index, loading record
    payloads lazily where the layout supports it.  Multiple processes may
    write to the same directory concurrently: appends are serialised by
    advisory locks and deduplicated by content address.
    """

    RECORDS_FILENAME = RECORDS_FILENAME
    LOCK_FILENAME = LOCK_FILENAME

    def __init__(
        self,
        directory: str,
        lock_timeout_s: Optional[float] = None,
        layout: Optional[str] = None,
    ):
        self._directory = str(directory)
        #: Seconds to wait for an advisory lock before raising
        #: :class:`~repro.exceptions.StoreLockTimeoutError`; ``None`` defers
        #: to ``REPRO_STORE_LOCK_TIMEOUT`` / the generous default.
        self._lock_timeout_s = (
            None if lock_timeout_s is None
            else resolve_lock_timeout(lock_timeout_s)
        )
        os.makedirs(self._directory, exist_ok=True)
        detected = detect_layout(self._directory)
        if layout is None or layout == "auto":
            chosen = detected if detected is not None else SINGLE_FILE
        else:
            if layout not in LAYOUT_NAMES:
                raise StoreError(
                    f"unknown store layout {layout!r}; "
                    f"known layouts: {LAYOUT_NAMES}"
                )
            if detected is not None and detected != layout:
                raise StoreError(
                    f"{self._directory} already holds a {detected} store; "
                    f"run `repro store migrate --to {layout}` instead of "
                    f"opening it with layout={layout!r}"
                )
            chosen = layout
        self._layout = make_layout(
            chosen, self._directory, self._lock_timeout_s
        )

    # -- basic properties ---------------------------------------------------
    @property
    def directory(self) -> str:
        """The campaign directory this store persists under."""
        return self._directory

    @property
    def layout(self) -> StoreLayout:
        """The storage engine behind this store."""
        return self._layout

    @property
    def layout_name(self) -> str:
        """The active layout's public name (``single-file``/``sharded``)."""
        return self._layout.name

    @property
    def records_path(self) -> str:
        """Path of the v1 JSONL records file (meaningful for single-file)."""
        return os.path.join(self._directory, self.RECORDS_FILENAME)

    def __len__(self) -> int:
        return len(self._layout)

    def __contains__(self, key: str) -> bool:
        return self._layout.has(key)

    def keys(self) -> List[str]:
        """All stored keys, in deterministic global commit order."""
        return self._layout.keys()

    # -- read API -----------------------------------------------------------
    def get(self, key: str) -> Optional[ResultRecord]:
        """Return the record stored under ``key`` (loaded lazily), or ``None``."""
        return self._layout.get(key)

    def records(self) -> Iterator[ResultRecord]:
        """Iterate over every record in commit order."""
        return self._layout.iter_records()

    def query(
        self,
        predicate: Optional[Callable[[ResultRecord], bool]] = None,
        **config_equals: Any,
    ) -> List[ResultRecord]:
        """Return records whose config matches every ``field=value`` filter.

        Config-equality filters are evaluated against the layout's index
        (which carries each record's config), so on a sharded store a
        filtered query deserialises only the *matching* records' payloads
        — unmatched segments are never read.  ``predicate`` (if given)
        additionally filters on the full, lazily-loaded record.
        """
        matches = []
        for key, config in self._layout.iter_configs():
            if any(
                config.get(field) != value
                for field, value in config_equals.items()
            ):
                continue
            record = self._layout.get(key)
            assert record is not None  # the index only lists committed keys
            if predicate is not None and not predicate(record):
                continue
            matches.append(record)
        return matches

    # -- write API ----------------------------------------------------------
    def put(self, config: Dict[str, Any], result: Dict[str, Any]) -> ResultRecord:
        """Store one completed cell (checkpointing it to disk immediately).

        Idempotent for identical results; storing a *different* result under
        an existing key raises :class:`StoreIntegrityError` — that means the
        simulation is not deterministic in something the key does not cover.
        Safe against concurrent writers: the append happens under the
        layout's advisory lock, after indexing whatever other processes
        committed meanwhile.
        """
        key = content_key(config)
        record = ResultRecord(key=key, config=config, result=result)
        return self._layout.append(record)
