"""Content-addressed JSONL campaign store.

Layout: a campaign directory holding a single append-only ``records.jsonl``.
Each line is one completed experiment cell::

    {"key": "<sha256>", "config": {...}, "result": {...}}

serialised canonically (sorted keys, compact separators), so that a
deterministic campaign produces byte-identical store files run after run.
The key is the SHA-256 of the canonical JSON of ``config`` — the content
address every cache/resume decision is made on.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional

from repro.exceptions import ReproError


class StoreIntegrityError(ReproError):
    """A store record conflicts with what the campaign is trying to write."""


def canonical_json(payload) -> str:
    """Serialise ``payload`` to a canonical JSON string (sorted, compact).

    Canonical form makes hashing and byte-level store comparison meaningful:
    two equal configurations always serialise identically.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_key(config: Dict) -> str:
    """Return the SHA-256 content address of a cell configuration."""
    return hashlib.sha256(canonical_json(config).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ResultRecord:
    """One completed experiment cell: its key, configuration, and result."""

    key: str
    config: Dict
    result: Dict

    def to_json_line(self) -> str:
        """Serialise to the canonical single-line store representation."""
        return canonical_json(
            {"config": self.config, "key": self.key, "result": self.result}
        )

    @classmethod
    def from_json_line(cls, line: str) -> "ResultRecord":
        """Parse a store line back into a record."""
        payload = json.loads(line)
        return cls(key=payload["key"], config=payload["config"], result=payload["result"])


class CampaignStore:
    """Append-only, content-addressed result store under a directory.

    Opening a store scans ``records.jsonl`` (if present) and indexes every
    record by key; :meth:`put` appends and flushes one line per completed
    cell, which is the per-cell checkpoint that makes interrupted sweeps
    resumable.
    """

    RECORDS_FILENAME = "records.jsonl"

    def __init__(self, directory: str):
        self._directory = str(directory)
        os.makedirs(self._directory, exist_ok=True)
        self._records: Dict[str, ResultRecord] = {}
        self._order: List[str] = []
        self._load_existing()

    # -- basic properties ---------------------------------------------------
    @property
    def directory(self) -> str:
        """The campaign directory this store persists under."""
        return self._directory

    @property
    def records_path(self) -> str:
        """Path of the JSONL records file."""
        return os.path.join(self._directory, self.RECORDS_FILENAME)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def keys(self) -> List[str]:
        """All stored keys, in insertion order."""
        return list(self._order)

    # -- read API -----------------------------------------------------------
    def get(self, key: str) -> Optional[ResultRecord]:
        """Return the record stored under ``key``, or ``None``."""
        return self._records.get(key)

    def records(self) -> Iterator[ResultRecord]:
        """Iterate over every record in insertion order."""
        for key in self._order:
            yield self._records[key]

    def query(
        self,
        predicate: Optional[Callable[[ResultRecord], bool]] = None,
        **config_equals,
    ) -> List[ResultRecord]:
        """Return records whose config matches every ``field=value`` filter.

        ``predicate`` (if given) additionally filters on the full record.
        """
        matches = []
        for record in self.records():
            if any(
                record.config.get(field) != value
                for field, value in config_equals.items()
            ):
                continue
            if predicate is not None and not predicate(record):
                continue
            matches.append(record)
        return matches

    # -- write API ----------------------------------------------------------
    def put(self, config: Dict, result: Dict) -> ResultRecord:
        """Store one completed cell (checkpointing it to disk immediately).

        Idempotent for identical results; storing a *different* result under
        an existing key raises :class:`StoreIntegrityError` — that means the
        simulation is not deterministic in something the key does not cover.
        """
        key = content_key(config)
        record = ResultRecord(key=key, config=config, result=result)
        existing = self._records.get(key)
        if existing is not None:
            if existing.to_json_line() != record.to_json_line():
                raise StoreIntegrityError(
                    f"key {key} already stored with a different result; "
                    "the configuration hash does not capture all sources of "
                    "variation"
                )
            return existing
        with open(self.records_path, "a", encoding="utf-8") as handle:
            handle.write(record.to_json_line() + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._records[key] = record
        self._order.append(key)
        return record

    # -- internals ----------------------------------------------------------
    def _load_existing(self) -> None:
        if not os.path.exists(self.records_path):
            return
        with open(self.records_path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = ResultRecord.from_json_line(line)
                if record.key not in self._records:
                    self._order.append(record.key)
                self._records[record.key] = record
