"""Content-addressed JSONL campaign store, safe for crashes and co-writers.

Layout: a campaign directory holding a single append-only ``records.jsonl``.
Each line is one completed experiment cell::

    {"key": "<sha256>", "config": {...}, "result": {...}}

serialised canonically (sorted keys, compact separators), so that a
deterministic campaign produces byte-identical store files run after run.
The key is the SHA-256 of the canonical JSON of ``config`` — the content
address every cache/resume decision is made on.

Durability model
----------------

* **Atomic appends** — every record is written as one ``write``/``fsync``
  to a file opened ``O_APPEND``, while holding an exclusive advisory lock
  (``fcntl.flock`` on a sidecar ``records.lock``; an ``O_EXCL`` lockfile
  where ``fcntl`` is unavailable).  Concurrent writer processes therefore
  never interleave bytes within a record.
* **Multi-writer dedupe** — before appending, a store re-scans whatever
  other writers appended since its last look (under the same lock), so two
  processes racing on the same cell commit exactly one line.
* **Crash repair** — a process killed mid-append can leave a torn trailing
  line.  Opening the store detects it, truncates the torn tail, and resumes;
  the interrupted cell is simply re-simulated.  A torn line anywhere *except*
  the tail cannot be produced by a crash of this writer and raises
  :class:`StoreIntegrityError`.
* **Verification on load** — every record's ``key`` is re-derived from its
  ``config``; a mismatch (bit rot, hand editing) fails loudly instead of
  silently poisoning the cache.
"""

from __future__ import annotations

import contextlib
import errno
import hashlib
import json
import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional

from repro.exceptions import StoreError, StoreLockTimeoutError
from repro.obs import TRACER

try:  # POSIX; absent on some platforms — the lockfile fallback covers those.
    import fcntl
except ImportError:  # pragma: no cover - exercised only on non-POSIX hosts
    fcntl = None  # type: ignore[assignment]


class StoreIntegrityError(StoreError):
    """A store record is corrupt or conflicts with what is being written."""


#: Environment variable overriding the store-lock acquisition timeout.
LOCK_TIMEOUT_ENV = "REPRO_STORE_LOCK_TIMEOUT"

#: Default seconds to wait for the store lock before failing loudly.  A
#: healthy holder releases within milliseconds (one append + fsync), so two
#: minutes means a wedged or dead peer, not contention.
DEFAULT_LOCK_TIMEOUT_S = 120.0

#: Seconds between lock-acquisition attempts while waiting.
_LOCK_POLL_INTERVAL_S = 0.002


def resolve_lock_timeout(timeout_s: Optional[float] = None) -> float:
    """The effective lock timeout: explicit arg, else env override, else default."""
    if timeout_s is None:
        raw = os.environ.get(LOCK_TIMEOUT_ENV)
        if raw is None:
            return DEFAULT_LOCK_TIMEOUT_S
        try:
            timeout_s = float(raw)
        except ValueError:
            raise StoreError(
                f"{LOCK_TIMEOUT_ENV}={raw!r} is not a number of seconds"
            ) from None
    if timeout_s <= 0:
        raise StoreError(
            f"store lock timeout must be positive, got {timeout_s!r}"
        )
    return float(timeout_s)


def canonical_json(payload) -> str:
    """Serialise ``payload`` to a canonical JSON string (sorted, compact).

    Canonical form makes hashing and byte-level store comparison meaningful:
    two equal configurations always serialise identically.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_key(config: Dict) -> str:
    """Return the SHA-256 content address of a cell configuration."""
    return hashlib.sha256(canonical_json(config).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ResultRecord:
    """One completed experiment cell: its key, configuration, and result."""

    key: str
    config: Dict
    result: Dict

    def to_json_line(self) -> str:
        """Serialise to the canonical single-line store representation."""
        return canonical_json(
            {"config": self.config, "key": self.key, "result": self.result}
        )

    @classmethod
    def from_json_line(cls, line: str) -> "ResultRecord":
        """Parse a store line back into a record."""
        payload = json.loads(line)
        return cls(key=payload["key"], config=payload["config"], result=payload["result"])


@contextlib.contextmanager
def store_lock(directory: str, timeout_s: Optional[float] = None):
    """Exclusive advisory lock guarding one campaign directory's records file.

    Uses ``fcntl.flock`` on ``<directory>/records.lock`` where available
    (released automatically by the kernel if the holder dies), otherwise an
    ``O_CREAT|O_EXCL`` lockfile.  Either way acquisition waits at most
    ``timeout_s`` seconds (default :data:`DEFAULT_LOCK_TIMEOUT_S`,
    overridable via :data:`LOCK_TIMEOUT_ENV`) and then raises
    :class:`~repro.exceptions.StoreLockTimeoutError` naming the lock path
    and the wait — a fleet worker fails loudly instead of hanging forever
    behind a wedged peer.  Reentrant use within one process is *not*
    supported — the store acquires it only in leaf methods.

    When tracing is enabled the wait is accounted to the
    ``store.lock_wait_s`` counter (with ``store.lock_acquisitions`` and
    ``store.lock_timeouts`` counting outcomes).
    """
    timeout_s = resolve_lock_timeout(timeout_s)
    lock_path = os.path.join(directory, CampaignStore.LOCK_FILENAME)
    tracing = TRACER.enabled
    wait_start = time.perf_counter() if tracing else 0.0
    deadline = time.monotonic() + timeout_s
    if fcntl is not None:
        fd = os.open(lock_path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            while True:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    break
                except OSError as error:
                    if error.errno not in (errno.EAGAIN, errno.EACCES):
                        raise
                    if time.monotonic() >= deadline:
                        _note_lock_timeout(tracing, wait_start)
                        raise StoreLockTimeoutError(lock_path, timeout_s) from None
                    time.sleep(_LOCK_POLL_INTERVAL_S)
            _note_lock_acquired(tracing, wait_start)
            try:
                yield
            finally:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)
        return
    # Portable fallback: existence of the lockfile is the lock.
    while True:  # pragma: no cover - exercised only on non-POSIX hosts
        try:
            fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
            break
        except OSError as error:
            if error.errno != errno.EEXIST:
                raise
            if time.monotonic() >= deadline:
                _note_lock_timeout(tracing, wait_start)
                raise StoreLockTimeoutError(lock_path, timeout_s) from None
            time.sleep(0.01)
    _note_lock_acquired(tracing, wait_start)  # pragma: no cover - non-POSIX
    try:  # pragma: no cover - exercised only on non-POSIX hosts
        yield
    finally:  # pragma: no cover - exercised only on non-POSIX hosts
        os.close(fd)
        os.unlink(lock_path)


def _note_lock_acquired(tracing: bool, wait_start: float) -> None:
    if tracing and TRACER.enabled:
        TRACER.add("store.lock_wait_s", time.perf_counter() - wait_start)
        TRACER.add("store.lock_acquisitions")


def _note_lock_timeout(tracing: bool, wait_start: float) -> None:
    if tracing and TRACER.enabled:
        TRACER.add("store.lock_wait_s", time.perf_counter() - wait_start)
        TRACER.add("store.lock_timeouts")


class CampaignStore:
    """Append-only, content-addressed result store under a directory.

    Opening a store scans ``records.jsonl`` (if present) under the store
    lock, verifying every record's content address and repairing a torn
    trailing line left by a crashed writer; :meth:`put` appends and fsyncs
    one line per completed cell — the per-cell checkpoint that makes
    interrupted sweeps resumable.  Multiple processes may write to the same
    directory concurrently: appends are serialised by the advisory lock and
    deduplicated by content address.
    """

    RECORDS_FILENAME = "records.jsonl"
    LOCK_FILENAME = "records.lock"

    def __init__(self, directory: str, lock_timeout_s: Optional[float] = None):
        self._directory = str(directory)
        #: Seconds to wait for the advisory lock before raising
        #: :class:`~repro.exceptions.StoreLockTimeoutError`; ``None`` defers
        #: to ``REPRO_STORE_LOCK_TIMEOUT`` / the generous default.
        self._lock_timeout_s = (
            None if lock_timeout_s is None else resolve_lock_timeout(lock_timeout_s)
        )
        os.makedirs(self._directory, exist_ok=True)
        self._records: Dict[str, ResultRecord] = {}
        self._order: List[str] = []
        #: Byte offset up to which ``records.jsonl`` has been indexed; bytes
        #: past it were appended by other writers since our last look.
        self._scan_offset = 0
        self._load_existing()

    def _lock(self):
        return store_lock(self._directory, timeout_s=self._lock_timeout_s)

    # -- basic properties ---------------------------------------------------
    @property
    def directory(self) -> str:
        """The campaign directory this store persists under."""
        return self._directory

    @property
    def records_path(self) -> str:
        """Path of the JSONL records file."""
        return os.path.join(self._directory, self.RECORDS_FILENAME)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def keys(self) -> List[str]:
        """All stored keys, in insertion order."""
        return list(self._order)

    # -- read API -----------------------------------------------------------
    def get(self, key: str) -> Optional[ResultRecord]:
        """Return the record stored under ``key``, or ``None``."""
        return self._records.get(key)

    def records(self) -> Iterator[ResultRecord]:
        """Iterate over every record in insertion order."""
        for key in self._order:
            yield self._records[key]

    def query(
        self,
        predicate: Optional[Callable[[ResultRecord], bool]] = None,
        **config_equals,
    ) -> List[ResultRecord]:
        """Return records whose config matches every ``field=value`` filter.

        ``predicate`` (if given) additionally filters on the full record.
        """
        matches = []
        for record in self.records():
            if any(
                record.config.get(field) != value
                for field, value in config_equals.items()
            ):
                continue
            if predicate is not None and not predicate(record):
                continue
            matches.append(record)
        return matches

    # -- write API ----------------------------------------------------------
    def put(self, config: Dict, result: Dict) -> ResultRecord:
        """Store one completed cell (checkpointing it to disk immediately).

        Idempotent for identical results; storing a *different* result under
        an existing key raises :class:`StoreIntegrityError` — that means the
        simulation is not deterministic in something the key does not cover.
        Safe against concurrent writers: the append happens under the store
        lock, after indexing whatever other processes committed meanwhile.
        """
        key = content_key(config)
        record = ResultRecord(key=key, config=config, result=result)
        existing = self._records.get(key)
        if existing is not None:
            return self._reconcile(existing, record)
        with self._lock():
            # Another process may have committed this cell (or others) since
            # we last looked; index the new tail before deciding to append.
            self._refresh_from_disk()
            existing = self._records.get(key)
            if existing is not None:
                return self._reconcile(existing, record)
            payload = (record.to_json_line() + "\n").encode("utf-8")
            append_start = time.perf_counter() if TRACER.enabled else 0.0
            fd = os.open(
                self.records_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
            try:
                start = os.fstat(fd).st_size
                try:
                    written = 0
                    while written < len(payload):
                        chunk = os.write(fd, payload[written:])
                        if chunk == 0:
                            raise StoreError(
                                f"zero-byte write appending to {self.records_path}"
                            )
                        written += chunk
                    fsync_start = time.perf_counter() if TRACER.enabled else 0.0
                    os.fsync(fd)
                    if TRACER.enabled:
                        now = time.perf_counter()
                        TRACER.add("store.appends")
                        TRACER.add("store.bytes_appended", len(payload))
                        TRACER.add("store.fsync_s", now - fsync_start)
                        TRACER.add("store.append_s", now - append_start)
                except BaseException:
                    # A short/failed write leaves a torn fragment that later
                    # appends would turn into unrepairable *mid-file*
                    # corruption; roll it back while we still hold the lock.
                    with contextlib.suppress(OSError):
                        os.ftruncate(fd, start)
                    raise
            finally:
                os.close(fd)
            self._scan_offset += len(payload)
        self._records[key] = record
        self._order.append(key)
        return record

    @staticmethod
    def _reconcile(existing: ResultRecord, incoming: ResultRecord) -> ResultRecord:
        if existing.to_json_line() != incoming.to_json_line():
            raise StoreIntegrityError(
                f"key {existing.key} already stored with a different result; "
                "the configuration hash does not capture all sources of "
                "variation"
            )
        return existing

    # -- internals ----------------------------------------------------------
    def _load_existing(self) -> None:
        if not os.path.exists(self.records_path):
            return
        with self._lock():
            self._refresh_from_disk()

    def _refresh_from_disk(self) -> None:
        """Index records appended since the last scan.  Caller holds the lock.

        Because every writer appends only while holding the lock, a partial
        trailing line observed *under the lock* can only be a crash artifact:
        it is repaired in place (truncated, or completed with its missing
        newline when the record itself survived intact).
        """
        if not os.path.exists(self.records_path):
            return
        with open(self.records_path, "rb") as handle:
            handle.seek(self._scan_offset)
            data = handle.read()
        position = 0
        while position < len(data):
            newline = data.find(b"\n", position)
            if newline == -1:
                self._repair_tail(data[position:], self._scan_offset + position)
                return
            line = data[position:newline]
            if line.strip():
                self._index_line(line, self._scan_offset + position)
            position = newline + 1
        self._scan_offset += position

    def _index_line(self, line: bytes, offset: int) -> None:
        record = self._parse_record(line, offset)
        existing = self._records.get(record.key)
        if existing is not None:
            if existing.to_json_line() != record.to_json_line():
                raise StoreIntegrityError(
                    f"{self.records_path} holds two different results for key "
                    f"{record.key} (second at byte {offset}); refusing to "
                    "pick one silently"
                )
            return
        self._records[record.key] = record
        self._order.append(record.key)

    def _parse_record(self, line: bytes, offset: int) -> ResultRecord:
        try:
            record = ResultRecord.from_json_line(line.decode("utf-8"))
        except (ValueError, KeyError, TypeError, UnicodeDecodeError) as error:
            raise StoreIntegrityError(
                f"{self.records_path} is corrupt at byte {offset}: "
                f"unparseable record line ({error}); only a *trailing* torn "
                "line can be crash damage, so this needs manual inspection"
            ) from error
        derived = content_key(record.config)
        if record.key != derived:
            raise StoreIntegrityError(
                f"{self.records_path} is corrupt at byte {offset}: stored key "
                f"{record.key} does not match the content address {derived} "
                "of its config"
            )
        return record

    def _repair_tail(self, fragment: bytes, offset: int) -> None:
        """Handle a trailing line with no newline (a crashed writer's append).

        A crash-torn append is a strict prefix of one JSON object and can
        never parse, so an unparseable fragment is truncated away (the cell
        is re-simulated on resume).  A fragment that *does* parse is a
        complete record missing only its newline: it is verified exactly
        like any other line — failing loudly on a bad content address —
        and then completed in place.
        """
        if not fragment.strip():
            # Just stray whitespace at the tail; absorb it.
            self._scan_offset = offset + len(fragment)
            return
        try:
            ResultRecord.from_json_line(fragment.decode("utf-8"))
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            fd = os.open(self.records_path, os.O_RDWR)
            try:
                os.ftruncate(fd, offset)
                os.fsync(fd)
            finally:
                os.close(fd)
            self._scan_offset = offset
            if TRACER.enabled:
                TRACER.add("store.torn_tail_repairs")
                TRACER.event(
                    "store.torn_tail_repair",
                    {"path": self.records_path, "offset": offset,
                     "truncated_bytes": len(fragment)},
                )
            return
        self._index_line(fragment, offset)  # raises on key/config mismatch
        with open(self.records_path, "ab") as handle:  # repro-lint: ignore[RPR104] -- _repair_tail runs with the store lock already held by its caller
            handle.write(b"\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._scan_offset = offset + len(fragment) + 1
        if TRACER.enabled:
            TRACER.add("store.torn_tail_repairs")
            TRACER.event(
                "store.torn_tail_repair",
                {"path": self.records_path, "offset": offset,
                 "restored_newline": True},
            )
