"""Canonical record model shared by every store layout.

A campaign store — whatever its on-disk layout — holds
:class:`ResultRecord` values: one completed experiment cell, serialised as
a single canonical JSON line ``{"config": ..., "key": ..., "result": ...}``
(sorted keys, compact separators) so a deterministic campaign produces
byte-identical store files run after run.  The ``key`` is the SHA-256 of
the canonical JSON of ``config`` — the content address every cache/resume
decision is made on.

This module is layout-agnostic: :mod:`repro.store.layout` builds the v1
single-file and v2 sharded engines on top of it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict

from repro.exceptions import StoreError


class StoreIntegrityError(StoreError):
    """A store record is corrupt or conflicts with what is being written."""


def canonical_json(payload: Any) -> str:
    """Serialise ``payload`` to a canonical JSON string (sorted, compact).

    Canonical form makes hashing and byte-level store comparison meaningful:
    two equal configurations always serialise identically.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_key(config: Dict[str, Any]) -> str:
    """Return the SHA-256 content address of a cell configuration."""
    return hashlib.sha256(canonical_json(config).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ResultRecord:
    """One completed experiment cell: its key, configuration, and result."""

    key: str
    config: Dict[str, Any]
    result: Dict[str, Any]

    def to_json_line(self) -> str:
        """Serialise to the canonical single-line store representation."""
        return canonical_json(
            {"config": self.config, "key": self.key, "result": self.result}
        )

    @classmethod
    def from_json_line(cls, line: str) -> "ResultRecord":
        """Parse a store line back into a record."""
        payload = json.loads(line)
        return cls(key=payload["key"], config=payload["config"], result=payload["result"])


def parse_record_line(line: bytes, source: str, offset: int) -> ResultRecord:
    """Parse one record line of ``source`` and verify its content address.

    Both layouts funnel every on-disk line through here, so bit rot and hand
    edits fail loudly (:class:`StoreIntegrityError`) instead of silently
    poisoning the cache.
    """
    try:
        record = ResultRecord.from_json_line(line.decode("utf-8"))
    except (ValueError, KeyError, TypeError, UnicodeDecodeError) as error:
        raise StoreIntegrityError(
            f"{source} is corrupt at byte {offset}: "
            f"unparseable record line ({error}); only a *trailing* torn "
            "line can be crash damage, so this needs manual inspection"
        ) from error
    derived = content_key(record.config)
    if record.key != derived:
        raise StoreIntegrityError(
            f"{source} is corrupt at byte {offset}: stored key "
            f"{record.key} does not match the content address {derived} "
            "of its config"
        )
    return record


def reconcile(existing: ResultRecord, incoming: ResultRecord) -> ResultRecord:
    """Resolve a duplicate ``put``: idempotent for identical results.

    Storing a *different* result under an existing key raises
    :class:`StoreIntegrityError` — it means the simulation is not
    deterministic in something the content key does not cover.
    """
    if existing.to_json_line() != incoming.to_json_line():
        raise StoreIntegrityError(
            f"key {existing.key} already stored with a different result; "
            "the configuration hash does not capture all sources of "
            "variation"
        )
    return existing
