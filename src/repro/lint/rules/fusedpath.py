"""RPR107 — bit-unpacking calls in the fused decode hot path.

The fused Monte-Carlo pipeline's whole value proposition (PR 10) is that a
round never materializes ``(num_words, n)`` ``uint8`` batches: masks stay in
packed ``uint64`` lanes (or sparser forms) from injection through
classification.  A single ``np.unpackbits`` — or one of the
:mod:`repro.gf2.bitpack` unpack helpers — inside ``einsim/fused.py`` or
``gf2/native.py`` silently reintroduces the 8x memory blow-up and the
per-bit arithmetic the fused backend exists to avoid, while every
differential test keeps passing.  This rule makes the regression a lint
failure instead of a benchmark-gate surprise.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.lint.astutil import dotted_name
from repro.lint.engine import Finding, LintContext, Rule

#: Module paths (below ``repro``) that form the fused packed-only hot path.
FUSED_HOT_MODULES = (
    ("einsim", "fused.py"),
    ("gf2", "native.py"),
)

#: :mod:`repro.gf2.bitpack` helpers that materialize unpacked uint8 batches.
_BITPACK_UNPACK_HELPERS = {"unpack_rows", "unpack_vector"}

#: Modules whose ``unpackbits`` attribute is the numpy unpacker.
_NUMPY_RECEIVERS = {"np", "numpy"}


class FusedPathUnpackRule(Rule):
    code = "RPR107"
    name = "fused-path-unpack"
    summary = "no np.unpackbits / unpack_rows in the fused decode hot path"
    explanation = """\
The fused kernels (repro.einsim.fused, repro.gf2.native) classify whole
Monte-Carlo rounds over packed uint64 lanes; they must never materialize a
one-byte-per-bit batch.

Bad (inside the fused modules):
    bits = np.unpackbits(lanes.view(np.uint8), bitorder="little")
    rows = unpack_rows(lanes, num_bits)       # from repro.gf2.bitpack

Good:
    mask_bytes = lanes_to_bytes(lanes, num_bits)     # stays packed
    counts = packed_column_counts(mask_bytes, num_bits)

Work from the packed helpers in repro.gf2.bitpack (lanes_to_bytes,
packed_column_counts, popcount_u64, fold_bytes) instead; unpacking is fine
anywhere else — tests, analysis, the staged reference backend — just not on
the fused hot path whose benchmarks assume it never happens."""

    def applies(self, context: LintContext) -> bool:
        return context.module_tail() in FUSED_HOT_MODULES

    def check(self, context: LintContext) -> List[Finding]:
        imported = self._unpack_imports(context.tree)
        findings: List[Finding] = []
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            label = self._unpack_label(node, imported)
            if label is None:
                continue
            findings.append(
                self.finding(
                    context,
                    node,
                    f"{label} materializes one byte per bit inside the fused "
                    "packed-only pipeline; use the packed helpers in "
                    "repro.gf2.bitpack (lanes_to_bytes, packed_column_counts, "
                    "popcount_u64) instead",
                )
            )
        return findings

    @staticmethod
    def _unpack_imports(tree: ast.Module) -> Set[str]:
        """Local names bound to an unpacker by a module-level import."""
        names: Set[str] = set()
        for node in tree.body:
            if not isinstance(node, ast.ImportFrom):
                continue
            if node.module in ("repro.gf2.bitpack", "repro.gf2"):
                for alias in node.names:
                    if alias.name in _BITPACK_UNPACK_HELPERS:
                        names.add(alias.asname or alias.name)
            elif node.module == "numpy":
                for alias in node.names:
                    if alias.name == "unpackbits":
                        names.add(alias.asname or alias.name)
        return names

    @staticmethod
    def _unpack_label(node: ast.Call, imported: Set[str]) -> str | None:
        callee = dotted_name(node.func)
        if callee is None:
            return None
        if "." in callee:
            receiver, _, method = callee.rpartition(".")
            if receiver in _NUMPY_RECEIVERS and method == "unpackbits":
                return f"{callee}(...)"
            return None
        if callee in imported or callee in _BITPACK_UNPACK_HELPERS:
            return f"{callee}(...)"
        return None
