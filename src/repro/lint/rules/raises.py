"""RPR106 — exception discipline in library code.

The CLI maps ``ReproError`` subclasses to clean exit codes and messages;
anything else escaping from ``repro.*`` is a traceback in the user's face
and an unclassifiable failure in sweep logs.  Library code therefore
raises from the ``repro.exceptions`` hierarchy only.  Symmetrically,
``except:`` and ``except Exception:`` swallow ``ReproError`` diagnostics
(and, for bare ``except:``, ``KeyboardInterrupt``) unless the handler
re-raises.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.astutil import dotted_name
from repro.lint.engine import Finding, LintContext, Rule

#: Builtin exception types library code must not raise.  The repro
#: hierarchy provides dual-inheritance bridges (ValidationError is a
#: ValueError, UnknownNameError is a KeyError) so callers keep working.
_FORBIDDEN_RAISES = {
    "ValueError",
    "TypeError",
    "KeyError",
    "IndexError",
    "RuntimeError",
    "OSError",
    "IOError",
    "ArithmeticError",
    "ZeroDivisionError",
    "OverflowError",
    "AttributeError",
    "LookupError",
    "EOFError",
    "AssertionError",
    "Exception",
    "BaseException",
}

#: Overbroad handler types: catching these hides ReproError diagnostics.
_OVERBROAD_HANDLERS = {"Exception", "BaseException"}


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    """Does the handler body contain a bare ``raise``? (cleanup-then-rethrow)"""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise) and node.exc is None:
            return True
    return False


def _handler_type_names(handler: ast.ExceptHandler) -> List[str]:
    if handler.type is None:
        return []
    types = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    names: List[str] = []
    for entry in types:
        name = dotted_name(entry)
        if name is not None:
            names.append(name)
    return names


class ExceptionDisciplineRule(Rule):
    code = "RPR106"
    name = "exception-discipline"
    summary = "library raises ReproError subclasses; no bare/overbroad except"
    explanation = """\
Bad (in src/repro):
    raise ValueError(f"bad dimension {k}")   # CLI shows a raw traceback
    except: pass                             # swallows KeyboardInterrupt too
    except Exception: return None            # swallows ReproError diagnostics

Good:
    raise DimensionError(f"bad dimension {k}")
    raise ValidationError(...)     # is-a ValueError, callers keep working
    except BaseException:          # allowed: cleanup then bare re-raise
        cleanup()
        raise

NotImplementedError is exempt (abstract-interface convention), and raising
is unrestricted in tests/fixtures.  An overbroad handler is allowed when
its body re-raises with a bare `raise`."""

    def applies(self, context: LintContext) -> bool:
        return context.in_library()

    def check(self, context: LintContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Raise):
                findings.extend(self._check_raise(context, node))
            elif isinstance(node, ast.ExceptHandler):
                findings.extend(self._check_handler(context, node))
        return findings

    def _check_raise(
        self, context: LintContext, node: ast.Raise
    ) -> List[Finding]:
        if node.exc is None:
            return []  # bare re-raise
        exc = node.exc
        name = None
        if isinstance(exc, ast.Call):
            name = dotted_name(exc.func)
        else:
            name = dotted_name(exc)
        if name is None or name not in _FORBIDDEN_RAISES:
            return []
        return [
            self.finding(
                context,
                node,
                f"raise {name}(...) from library code; raise a ReproError "
                "subclass (repro.exceptions) so the CLI can classify it",
            )
        ]

    def _check_handler(
        self, context: LintContext, handler: ast.ExceptHandler
    ) -> List[Finding]:
        if handler.type is None:
            return [
                self.finding(
                    context,
                    handler,
                    "bare `except:` swallows KeyboardInterrupt and "
                    "ReproError diagnostics; catch specific exceptions",
                )
            ]
        overbroad = [
            name
            for name in _handler_type_names(handler)
            if name in _OVERBROAD_HANDLERS
        ]
        if not overbroad or _handler_reraises(handler):
            return []
        return [
            self.finding(
                context,
                handler,
                f"`except {overbroad[0]}:` without re-raise hides "
                "ReproError diagnostics; catch the specific failure or "
                "re-raise after cleanup",
            )
        ]
