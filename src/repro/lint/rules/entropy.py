"""RPR102 — forbidden entropy in library code.

Every repro result must be a pure function of its configuration: the
content-addressed store, cache-hit resumes, and byte-identical parallel
sweeps all depend on it.  Wall-clock reads, uuids, the legacy global RNGs
(``random.*``, ``np.random.seed``/``np.random.rand``/...), unseeded
generators, and builtin ``hash()`` (salted per process by
``PYTHONHASHSEED``) all smuggle per-run state into what should be
deterministic output.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.lint.astutil import call_name, enclosing_function
from repro.lint.engine import Finding, LintContext, Rule

#: Wall-clock reads.  (``time.perf_counter``/``monotonic`` are fine: they
#: measure durations, they do not timestamp output.)
_WALL_CLOCK_CALLS = {"time.time", "time.time_ns"}

#: ``datetime`` constructors that read the wall clock (matched by suffix so
#: both ``datetime.now()`` and ``datetime.datetime.now()`` resolve).
_DATETIME_SUFFIXES = (
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
)

#: numpy RNG entry points that are explicitly seeded constructions, not
#: draws from (or seeding of) the legacy global state.
_NUMPY_RNG_ALLOWED = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}


def _numpy_random_attr(callee: str) -> Optional[str]:
    """The attribute under ``np.random``/``numpy.random``, if that's the callee."""
    for prefix in ("np.random.", "numpy.random."):
        if callee.startswith(prefix):
            return callee[len(prefix):]
    return None


class EntropyRule(Rule):
    code = "RPR102"
    name = "forbidden-entropy"
    summary = (
        "no wall clocks, uuids, global RNGs or builtin hash() in library code"
    )
    explanation = """\
Results must be pure functions of their configuration — that is what makes
content-addressed cache hits, --jobs N byte-identity, and resumable sweeps
sound.  Flagged:

    time.time()/time.time_ns()        wall-clock timestamps in output
    datetime.now()/utcnow()/today()   same, via datetime
    uuid.uuid1()/uuid4()/...          per-run identifiers
    random.<anything>                 the global Mersenne state
    np.random.seed()/rand()/...       the legacy numpy global RNG
    np.random.default_rng()           UNSEEDED generator (OS entropy)
    hash(...)                         salted by PYTHONHASHSEED for str/bytes

Allowed: time.perf_counter()/monotonic() (durations, not timestamps),
np.random.default_rng(seed) and explicitly threaded np.random.Generator
objects (e.g. the sample-derived rng bootstrap_confidence_interval builds),
and hash() inside a __hash__ method (in-process only, never serialised)."""

    def check(self, context: LintContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            message = self._violation(node)
            if message is not None:
                findings.append(self.finding(context, node, message))
        return findings

    def _violation(self, node: ast.Call) -> Optional[str]:
        callee = call_name(node)
        if callee is None:
            return None
        if callee == "hash":
            function = enclosing_function(node)
            if function is not None and function.name == "__hash__":
                return None  # in-process hashing protocol, never serialised
            return (
                "builtin hash() is salted by PYTHONHASHSEED; derive keys "
                "with hashlib over a canonical serialisation instead"
            )
        if callee in _WALL_CLOCK_CALLS:
            return (
                f"{callee}() reads the wall clock; results must be pure "
                "functions of their configuration (use time.perf_counter() "
                "for durations)"
            )
        if any(
            callee == suffix or callee.endswith("." + suffix)
            for suffix in _DATETIME_SUFFIXES
        ):
            return (
                f"{callee}() reads the wall clock; thread timestamps in "
                "explicitly if output needs them"
            )
        if callee.startswith("uuid."):
            return (
                f"{callee}() generates per-run identifiers; use the "
                "content-addressed key of the configuration instead"
            )
        if callee.startswith("random."):
            return (
                f"{callee}() draws from the global Mersenne state; thread an "
                "explicit np.random.Generator (or a sample-derived rng) "
                "through instead"
            )
        numpy_attr = _numpy_random_attr(callee)
        if numpy_attr is not None:
            if numpy_attr == "default_rng" and not (node.args or node.keywords):
                return (
                    "np.random.default_rng() without a seed draws OS "
                    "entropy; pass an explicit seed"
                )
            if numpy_attr not in _NUMPY_RNG_ALLOWED:
                return (
                    f"{callee}() uses numpy's legacy global RNG; construct "
                    "an explicit np.random.default_rng(seed) and thread it "
                    "through"
                )
        return None
