"""RPR103 — unguarded instrumentation in the hot kernels.

The tracer's disabled-mode contract (PR 7) is *one attribute check per
instrumentation point*.  In the packages that sit on hot paths —
``sat/``, ``einsim/``, ``gf2/``, ``store/`` — every ``TRACER.span()``,
``TRACER.add()``, ``TRACER.event()`` or ``TRACER.gauge()`` call must be
behind an ``if TRACER.enabled:`` fast-path guard; otherwise each call pays
Python call overhead plus eager argument construction (f-strings, dicts,
``stats().as_dict()``) on every decode batch or solver conflict, and the
CI instrumentation-overhead gate starts failing for no functional reason.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.lint.astutil import (
    assigned_alias_names,
    dotted_name,
    enclosing_function,
    guarded_by_test,
)
from repro.lint.engine import Finding, LintContext, Rule

#: Packages whose inner loops are performance-gated by benchmarks.
HOT_PACKAGES = ("sat", "einsim", "gf2", "store")

#: Instrumentation entry points that must sit behind the enabled guard.
_INSTRUMENTATION_METHODS = {"span", "add", "event", "gauge", "counter", "metric"}


class UnguardedInstrumentationRule(Rule):
    code = "RPR103"
    name = "unguarded-instrumentation"
    summary = "TRACER calls in sat/einsim/gf2/store need the enabled guard"
    explanation = """\
In the hot kernels (repro.sat, repro.einsim, repro.gf2, repro.store) every
tracer call must be behind the one-branch fast path:

Bad:
    TRACER.add("sat.conflicts", n)          # call + args built every time

Good:
    if TRACER.enabled:
        TRACER.add("sat.conflicts", n)

The guard may be an if-statement, a conditional expression's true branch,
`TRACER.enabled and TRACER.add(...)`, or a local alias assigned from
TRACER.enabled (`tracing = TRACER.enabled ... if tracing:`).  Code outside
the hot packages (sweep orchestration, CLI) may rely on the tracer's own
internal no-op check instead — one span per sweep cell is not a hot loop."""

    def applies(self, context: LintContext) -> bool:
        return context.in_packages(*HOT_PACKAGES)

    def check(self, context: LintContext) -> List[Finding]:
        imported = self._obs_imports(context.tree)
        findings: List[Finding] = []
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            label = self._instrumentation_label(node, imported)
            if label is None:
                continue
            function = enclosing_function(node)
            aliases = assigned_alias_names(function, "enabled")
            if guarded_by_test(node, "enabled", aliases):
                continue
            findings.append(
                self.finding(
                    context,
                    node,
                    f"{label} runs on every pass through this hot path; put "
                    "it (and its argument construction) behind "
                    "`if TRACER.enabled:`",
                )
            )
        return findings

    @staticmethod
    def _obs_imports(tree: ast.Module) -> Set[str]:
        """Names of tracer convenience functions imported from repro.obs."""
        names: Set[str] = set()
        for node in tree.body:
            if isinstance(node, ast.ImportFrom) and node.module in (
                "repro.obs",
                "repro.obs.core",
            ):
                for alias in node.names:
                    if alias.name in _INSTRUMENTATION_METHODS:
                        names.add(alias.asname or alias.name)
        return names

    @staticmethod
    def _instrumentation_label(node: ast.Call, imported: Set[str]) -> str | None:
        callee = dotted_name(node.func)
        if callee is None:
            return None
        if "." in callee:
            receiver, _, method = callee.rpartition(".")
            if receiver == "TRACER" and method in _INSTRUMENTATION_METHODS:
                return f"TRACER.{method}(...)"
            return None
        if callee in imported:
            return f"{callee}(...)"
        return None
