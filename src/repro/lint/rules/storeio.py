"""RPR104 — store write discipline.

The campaign store's durability model (PR 4, layered in PR 9) holds only
if *every* append goes through the ``repro.store`` package: one
``write``+``fsync`` to an ``O_APPEND`` fd, under the exclusive advisory
lock (store-wide for the v1 single-file layout, per segment for the v2
sharded layout), with multi-writer dedupe.  An append-mode ``open()`` or
raw ``os.write`` done anywhere else can interleave bytes with a
concurrent writer and turn a crash into unrepairable mid-file corruption
— so append-style writes are flagged everywhere outside the store
package's modules, and inside them they must be lexically under the lock
helper.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.lint.astutil import ancestors, call_name
from repro.lint.engine import Finding, LintContext, Rule


def _append_mode(node: ast.Call) -> bool:
    """Is this an ``open(...)`` call with an append mode string?"""
    mode: Optional[ast.expr] = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return False
    return (
        isinstance(mode, ast.Constant)
        and isinstance(mode.value, str)
        and "a" in mode.value
    )


def _uses_append_flag(node: ast.Call) -> bool:
    """Does an ``os.open(...)`` call pass ``O_APPEND`` in its flags?"""
    for arg in list(node.args) + [kw.value for kw in node.keywords]:
        for sub in ast.walk(arg):
            if isinstance(sub, ast.Attribute) and sub.attr == "O_APPEND":
                return True
            if isinstance(sub, ast.Name) and sub.id == "O_APPEND":
                return True
    return False


def _under_store_lock(node: ast.AST) -> bool:
    """Is ``node`` lexically inside a ``with <...lock...>():`` block?"""
    for ancestor in ancestors(node):
        if not isinstance(ancestor, (ast.With, ast.AsyncWith)):
            continue
        for item in ancestor.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call):
                callee = call_name(expr)
                if callee is not None and "lock" in callee.lower():
                    return True
    return False


class StoreWriteDisciplineRule(Rule):
    code = "RPR104"
    name = "store-write-discipline"
    summary = "appends belong in the repro.store package, under a store lock"
    explanation = """\
records.jsonl / segment files (and any append-only artifact) may only be
written through the store package: an append-mode open()/os.write()
elsewhere bypasses the advisory lock (store-wide in the v1 layout, per
segment in the v2 sharded layout), the single write+fsync atomicity, and
the multi-writer dedupe — concurrent writers can interleave bytes and a
crash becomes mid-file corruption that torn-tail repair refuses to touch.

Bad (anywhere outside src/repro/store/):
    with open(path, "a") as f: f.write(line)
    os.write(fd, payload)

Inside the store package's modules, appends must additionally sit
lexically inside a `with self._lock():` / `with file_lock(...):` block;
helper methods whose caller holds the lock document that with a
suppression naming the contract."""

    def check(self, context: LintContext) -> List[Finding]:
        tail = context.module_tail()
        in_store_module = len(tail) == 2 and tail[0] == "store"
        findings: List[Finding] = []
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = call_name(node)
            label: Optional[str] = None
            if callee in ("open", "io.open") and _append_mode(node):
                label = "append-mode open(...)"
            elif callee == "os.write":
                label = "os.write(...)"
            elif callee == "os.open" and _uses_append_flag(node):
                label = "os.open(..., O_APPEND)"
            if label is None:
                continue
            if in_store_module:
                if not _under_store_lock(node):
                    findings.append(
                        self.finding(
                            context,
                            node,
                            f"{label} outside a `with ..._lock():` block; "
                            "store appends must hold the advisory lock",
                        )
                    )
            else:
                findings.append(
                    self.finding(
                        context,
                        node,
                        f"{label} bypasses the campaign store's locked, "
                        "fsynced append path; write through "
                        "repro.store.store instead",
                    )
                )
        return findings
