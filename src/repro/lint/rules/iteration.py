"""RPR101 — nondeterministic iteration order.

Two failure families, both of which have broken real reproducibility
guarantees in systems like this one:

* iterating a ``set``/``frozenset`` (whose order depends on
  ``PYTHONHASHSEED`` for str/bytes elements) into anything
  order-sensitive — a list, a loop that appends, a joined string;
* consuming directory listings (``os.listdir``, ``glob.glob``,
  ``Path.iterdir``/``glob``/``rglob``, ``os.scandir``) without
  ``sorted()`` — the OS returns entries in on-disk order, which differs
  across filesystems and mutation histories.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Union

from repro.lint.astutil import call_name, dotted_name, parent, scope_walk
from repro.lint.engine import Finding, LintContext, Rule

#: Callables whose output order is irrelevant — consuming a set or an
#: unsorted listing through these is safe.
_ORDER_INSENSITIVE_CONSUMERS = {
    "sorted", "len", "sum", "min", "max", "any", "all", "set", "frozenset",
}

#: Callables that materialise their argument *in iteration order*.
_ORDER_SENSITIVE_CONSUMERS = {"list", "tuple", "enumerate", "iter", "reversed"}

#: Dotted callee names that produce filesystem listings in on-disk order.
_LISTING_CALLS = {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}

#: Method names that produce listings regardless of receiver (Path API).
_LISTING_METHODS = {"iterdir", "rglob"}

#: Set methods that return another set.
_SET_PRODUCING_METHODS = {
    "difference", "union", "intersection", "symmetric_difference", "copy",
}

_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)

ScopeNode = Union[ast.Module, ast.FunctionDef, ast.AsyncFunctionDef]


def _set_valued_names(scope: ScopeNode) -> Set[str]:
    """Names that are *only ever* assigned set-valued expressions in ``scope``.

    Conservative single-scope dataflow: one non-set assignment removes the
    name from the tracked set, so false positives from rebinding are
    impossible.
    """
    status: Dict[str, bool] = {}

    def note(name: str, is_set: bool) -> None:
        status[name] = status.get(name, True) and is_set

    for node in scope_walk(scope):
        if isinstance(node, ast.Assign):
            is_set = _is_set_expression(node.value, set())
            for target in node.targets:
                if isinstance(target, ast.Name):
                    note(target.id, is_set)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                note(node.target.id, _is_set_expression(node.value, set()))
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Name):
                # `s |= {...}` keeps a set a set; anything else is unknown.
                if not isinstance(node.op, _SET_BINOPS):
                    note(node.target.id, False)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if isinstance(node.target, ast.Name):
                note(node.target.id, False)
    # Fixpoint pass so `a = {...}; b = a` tracks through one level of alias.
    names = {name for name, is_set in status.items() if is_set}
    for node in scope_walk(scope):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Name):
            if node.value.id in names:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.discard(target.id)
    return names


def _is_set_expression(node: ast.AST, set_names: Set[str]) -> bool:
    """Is ``node`` statically known to evaluate to a set/frozenset?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Call):
        callee = call_name(node)
        if callee in ("set", "frozenset"):
            return True
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SET_PRODUCING_METHODS
            and _is_set_expression(node.func.value, set_names)
        ):
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
        return _is_set_expression(node.left, set_names) or _is_set_expression(
            node.right, set_names
        )
    if isinstance(node, ast.IfExp):
        return _is_set_expression(node.body, set_names) and _is_set_expression(
            node.orelse, set_names
        )
    return False


def _consumer_name(node: ast.AST) -> Optional[str]:
    """The callee name when ``node`` is a direct call argument, else None."""
    enclosing = parent(node)
    if isinstance(enclosing, ast.Call) and node in enclosing.args:
        return call_name(enclosing)
    return None


class NondeterministicIterationRule(Rule):
    code = "RPR101"
    name = "nondeterministic-iteration"
    summary = (
        "sets and unsorted directory listings must not feed ordered output"
    )
    explanation = """\
Iterating a set (or frozenset) observes hash order, which for str/bytes
elements changes with PYTHONHASHSEED — one run's records.jsonl will not be
byte-identical to the next.  Directory listings (os.listdir, glob.glob,
Path.iterdir/glob/rglob, os.scandir) come back in on-disk order, which
differs across filesystems and file-creation histories.

Bad:
    for name in {"b", "a"}: emit(name)
    for path in root.glob("*.json"): load(path)

Good:
    for name in sorted({"b", "a"}): emit(name)
    for path in sorted(root.glob("*.json")): load(path)

Order-insensitive consumers (len, sum, min, max, any, all, set,
frozenset, membership tests) are never flagged.  Dict iteration is not
flagged: CPython dicts preserve insertion order, so a deterministically
built dict iterates deterministically."""

    def check(self, context: LintContext) -> List[Finding]:
        findings: List[Finding] = []
        scopes: List[ScopeNode] = [context.tree]
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node)
        for scope in scopes:
            findings.extend(self._check_scope(context, scope))
        findings.extend(self._check_listings(context))
        return findings

    # -- set iteration ------------------------------------------------------
    def _check_scope(
        self, context: LintContext, scope: ScopeNode
    ) -> List[Finding]:
        set_names = _set_valued_names(scope)
        findings: List[Finding] = []

        def flag(node: ast.AST, what: str) -> None:
            findings.append(
                self.finding(
                    context,
                    node,
                    f"{what} iterates a set in hash order; wrap it in "
                    "sorted(...) before it reaches ordered output",
                )
            )

        for node in scope_walk(scope):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expression(node.iter, set_names):
                    flag(node.iter, "this for-loop")
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                consumer = None
                if isinstance(node, ast.GeneratorExp):
                    consumer = _consumer_name(node)
                if consumer in _ORDER_INSENSITIVE_CONSUMERS:
                    continue
                for generator in node.generators:
                    if _is_set_expression(generator.iter, set_names):
                        flag(generator.iter, "this comprehension")
            elif isinstance(node, ast.Call):
                callee = call_name(node)
                first = node.args[0] if node.args else None
                if first is None:
                    continue
                if callee in _ORDER_SENSITIVE_CONSUMERS and _is_set_expression(
                    first, set_names
                ):
                    flag(node, f"{callee}(...)")
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                    and _is_set_expression(first, set_names)
                ):
                    flag(node, "str.join(...)")
            elif isinstance(node, ast.Starred):
                if _is_set_expression(node.value, set_names):
                    flag(node, "unpacking (*...)")
        return findings

    # -- directory listings -------------------------------------------------
    def _check_listings(self, context: LintContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = call_name(node)
            is_listing = callee in _LISTING_CALLS
            if (
                not is_listing
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _LISTING_METHODS
            ):
                is_listing = True
            if (
                not is_listing
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "glob"
                and dotted_name(node.func.value) != "glob"
            ):
                # `<path>.glob(...)`; the module-level `glob.glob` matched above.
                is_listing = True
            if not is_listing:
                continue
            consumer = _consumer_name(node)
            if consumer in _ORDER_INSENSITIVE_CONSUMERS:
                continue
            enclosing = parent(node)
            if isinstance(enclosing, ast.Compare):
                continue  # membership / equality tests are order-insensitive
            findings.append(
                self.finding(
                    context,
                    node,
                    f"{callee or node.func.attr}(...) returns entries in "
                    "on-disk order; wrap the call in sorted(...) so the scan "
                    "is stable across filesystems",
                )
            )
        return findings
