"""Rule registry: one module per rule, one stable RPR1xx code each."""

from __future__ import annotations

from typing import List

from repro.lint.engine import Rule
from repro.lint.rules.entropy import EntropyRule
from repro.lint.rules.fusedpath import FusedPathUnpackRule
from repro.lint.rules.instrumentation import UnguardedInstrumentationRule
from repro.lint.rules.iteration import NondeterministicIterationRule
from repro.lint.rules.pools import PoolSafetyRule
from repro.lint.rules.raises import ExceptionDisciplineRule
from repro.lint.rules.storeio import StoreWriteDisciplineRule

#: Every registered rule, in code order.  ``repro lint`` runs all of these
#: unless narrowed with ``--select`` / ``--ignore``.
ALL_RULES: List[Rule] = [
    NondeterministicIterationRule(),
    EntropyRule(),
    UnguardedInstrumentationRule(),
    StoreWriteDisciplineRule(),
    PoolSafetyRule(),
    ExceptionDisciplineRule(),
    FusedPathUnpackRule(),
]

__all__ = [
    "ALL_RULES",
    "EntropyRule",
    "ExceptionDisciplineRule",
    "FusedPathUnpackRule",
    "NondeterministicIterationRule",
    "PoolSafetyRule",
    "StoreWriteDisciplineRule",
    "UnguardedInstrumentationRule",
]
