"""RPR105 — process-pool safety.

Two invariants from the parallel-sweep work (PR 4):

* callables submitted to a ``ProcessPoolExecutor`` must be **module-level
  functions** — lambdas, nested closures and bound methods either fail to
  pickle outright or silently capture state that differs between parent
  and worker;
* **worker entry points must never fan out again**: a function that is
  itself submitted to a pool must not construct another pool or pass a
  non-literal ``processes=`` downstream, or a ``--jobs N`` sweep forks
  ``N * processes`` workers and deadlocks on machines with small cores.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set

from repro.lint.astutil import call_name, scope_walk
from repro.lint.engine import Finding, LintContext, Rule

#: Constructor names that create a process pool.
_POOL_CONSTRUCTORS = ("ProcessPoolExecutor", "Pool")

#: Pool methods that take a callable to run in a worker.
_SUBMIT_METHODS = {"submit", "map", "apply", "apply_async", "imap", "starmap"}


def _is_pool_constructor(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    callee = call_name(node)
    return callee is not None and callee.split(".")[-1] in _POOL_CONSTRUCTORS


class PoolSafetyRule(Rule):
    code = "RPR105"
    name = "pool-safety"
    summary = "pools take module-level callables; workers never nest pools"
    explanation = """\
Bad:
    pool.submit(lambda: run(cell))          # unpicklable
    pool.submit(self._execute, cell)        # bound method drags self along
    def outer():
        def job(): ...
        pool.submit(job)                    # nested def, not picklable

Good:
    def execute_cell(cell): ...             # module level
    pool.submit(execute_cell, cell)

And inside any function that is itself submitted to a pool (a worker entry
point), constructing another ProcessPoolExecutor — or forwarding a
processes= value other than the literal 1 — nests pools: a --jobs N sweep
then forks N*processes workers.  Workers run their inner campaigns with
processes=1; the parallelism budget is spent at the cell level."""

    def check(self, context: LintContext) -> List[Finding]:
        module_callables = self._module_level_callables(context.tree)
        module_functions: Dict[str, ast.AST] = {
            node.name: node
            for node in context.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        findings: List[Finding] = []
        worker_names: Set[str] = set()

        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            if not self._is_pool_submit(node, context):
                continue
            if not node.args:
                continue
            target = node.args[0]
            if isinstance(target, ast.Lambda):
                findings.append(
                    self.finding(
                        context,
                        target,
                        "lambda submitted to a process pool cannot be "
                        "pickled; submit a module-level function",
                    )
                )
            elif isinstance(target, ast.Attribute):
                findings.append(
                    self.finding(
                        context,
                        target,
                        "bound method submitted to a process pool; submit a "
                        "module-level function (methods pickle their whole "
                        "instance, or fail to)",
                    )
                )
            elif isinstance(target, ast.Name):
                if target.id in module_callables:
                    worker_names.add(target.id)
                else:
                    findings.append(
                        self.finding(
                            context,
                            target,
                            f"{target.id!r} is not defined at module level; "
                            "pool workers can only import module-level "
                            "callables",
                        )
                    )

        for name in sorted(worker_names):
            worker = module_functions.get(name)
            if worker is not None:
                findings.extend(self._check_worker_body(context, name, worker))
        return findings

    @staticmethod
    def _module_level_callables(tree: ast.Module) -> Set[str]:
        names: Set[str] = set()
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names.add(node.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    names.add((alias.asname or alias.name).split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    names.add(alias.asname or alias.name)
        return names

    def _is_pool_submit(self, node: ast.Call, context: LintContext) -> bool:
        """Is this ``<pool>.submit/map/...`` on a plausible pool object?"""
        if not isinstance(node.func, ast.Attribute):
            return False
        if node.func.attr not in _SUBMIT_METHODS:
            return False
        receiver = node.func.value
        receiver_name = call_name(node) or ""
        base = receiver_name.rsplit(".", 1)[0].lower()
        if any(hint in base for hint in ("pool", "executor")):
            return True
        # A receiver assigned from a pool constructor in the same scope.
        if isinstance(receiver, ast.Name):
            for candidate in ast.walk(context.tree):
                if (
                    isinstance(candidate, ast.Assign)
                    and _is_pool_constructor(candidate.value)
                    and any(
                        isinstance(t, ast.Name) and t.id == receiver.id
                        for t in candidate.targets
                    )
                ):
                    return True
        if _is_pool_constructor(receiver):
            return True
        return False

    def _check_worker_body(
        self, context: LintContext, name: str, worker: ast.AST
    ) -> List[Finding]:
        findings: List[Finding] = []
        for node in scope_walk(worker):
            if not isinstance(node, ast.Call):
                continue
            if _is_pool_constructor(node):
                findings.append(
                    self.finding(
                        context,
                        node,
                        f"worker entry point {name!r} constructs a nested "
                        "process pool; the parallelism budget is spent at "
                        "the cell level",
                    )
                )
                continue
            for keyword in node.keywords:
                if keyword.arg != "processes":
                    continue
                value = keyword.value
                if isinstance(value, ast.Constant) and value.value == 1:
                    continue
                findings.append(
                    self.finding(
                        context,
                        keyword.value,
                        f"worker entry point {name!r} forwards processes= "
                        "other than the literal 1; nested pools deadlock "
                        "on small machines",
                    )
                )
        return findings
