"""Shared AST machinery for the lint rules: parents, dotted names, guards.

Every rule operates on a module tree produced by :func:`repro.lint.engine`
— which has already attached parent links — so rules can reason about the
*context* of a node (is this call wrapped in ``sorted()``? is it inside the
body branch of an ``if TRACER.enabled:``?) without re-walking the module.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set, Union

#: Attribute under which the engine stores each node's parent link.
PARENT_ATTR = "_repro_lint_parent"

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def attach_parents(tree: ast.AST) -> None:
    """Annotate every node of ``tree`` with a link to its parent node."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            setattr(child, PARENT_ATTR, node)


def parent(node: ast.AST) -> Optional[ast.AST]:
    """The parent of ``node`` (``None`` for the module root)."""
    return getattr(node, PARENT_ATTR, None)


def ancestors(node: ast.AST) -> Iterator[ast.AST]:
    """Yield ``node``'s ancestors, nearest first, ending at the module."""
    current = parent(node)
    while current is not None:
        yield current
        current = parent(current)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``"os.path.join"`` for a nested attribute access; ``None`` otherwise.

    Only pure ``Name``/``Attribute`` chains resolve; anything computed
    (subscripts, calls) yields ``None``, which every rule treats as
    "unknown — do not flag".
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """The dotted name of a call's callee, when statically resolvable."""
    return dotted_name(node.func)


def enclosing_function(node: ast.AST) -> Optional[FunctionNode]:
    """The nearest function definition containing ``node``, if any."""
    for ancestor in ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor
    return None


def expression_mentions(tree: ast.AST, attr: str, names: Set[str]) -> bool:
    """Does ``tree`` read ``<anything>.<attr>`` or one of ``names``?

    The guard-detection primitive: ``if TRACER.enabled:`` mentions the
    ``enabled`` attribute, ``if tracing and TRACER.enabled:`` additionally
    mentions the alias name ``tracing``.
    """
    for sub in ast.walk(tree):
        if isinstance(sub, ast.Attribute) and sub.attr == attr:
            return True
        if isinstance(sub, ast.Name) and sub.id in names:
            return True
    return False


def guarded_by_test(
    node: ast.AST, attr: str = "enabled", alias_names: Optional[Set[str]] = None
) -> bool:
    """Is ``node`` inside the *true* branch of a test mentioning ``attr``?

    Walks the parent chain looking for an ``if``/``while``/conditional
    expression whose test reads ``<x>.<attr>`` (or one of ``alias_names``,
    local variables holding such a read).  Only the body branch counts as
    guarded — code in the ``else`` branch runs exactly when the guard is
    false.
    """
    aliases = alias_names or set()
    previous: ast.AST = node
    for ancestor in ancestors(node):
        if isinstance(ancestor, (ast.If, ast.While)):
            if (
                expression_mentions(ancestor.test, attr, aliases)
                and previous in ancestor.body
            ):
                return True
        elif isinstance(ancestor, ast.IfExp):
            if (
                expression_mentions(ancestor.test, attr, aliases)
                and previous is ancestor.body
            ):
                return True
        elif isinstance(ancestor, ast.BoolOp) and isinstance(ancestor.op, ast.And):
            # `TRACER.enabled and TRACER.add(...)`: operands after the first
            # run only when every earlier operand was truthy.
            index = next(
                (i for i, value in enumerate(ancestor.values) if value is previous),
                None,
            )
            if index is not None and any(
                expression_mentions(value, attr, aliases)
                for value in ancestor.values[:index]
            ):
                return True
        previous = ancestor
    return False


def assigned_alias_names(function: Optional[FunctionNode], attr: str) -> Set[str]:
    """Local names assigned from an expression reading ``<x>.<attr>``.

    Supports the common two-step guard idiom::

        tracing = TRACER.enabled
        ...
        if tracing:
            TRACER.add(...)
    """
    if function is None:
        return set()
    aliases: Set[str] = set()
    for node in ast.walk(function):
        if not isinstance(node, ast.Assign):
            continue
        if not expression_mentions(node.value, attr, set()):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                aliases.add(target.id)
    return aliases


def scope_walk(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk ``scope`` without descending into nested function definitions.

    Module- and class-level statements belong to the enclosing scope; a
    nested ``def``/``lambda`` opens a fresh one and is analysed separately.
    """
    stack = [scope]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            stack.append(child)


def is_inside(node: ast.AST, container: ast.AST) -> bool:
    """Is ``node`` equal to or a descendant of ``container``?"""
    if node is container:
        return True
    return any(ancestor is container for ancestor in ancestors(node))
