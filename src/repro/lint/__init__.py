"""repro.lint — AST-based determinism and invariant linter.

A dependency-free static analyzer for the invariants this codebase's
correctness story rests on: deterministic iteration (RPR101), no hidden
entropy (RPR102), guarded instrumentation in hot kernels (RPR103), store
write discipline (RPR104), process-pool safety (RPR105), and exception
discipline (RPR106).  Run it as ``repro lint [PATHS]``; suppress a finding
inline with ``# repro-lint: ignore[RPR101] -- <reason>``.
"""

from __future__ import annotations

from repro.lint.engine import (
    PARSE_ERROR_CODE,
    SUPPRESSION_CODE,
    Finding,
    LintContext,
    LintError,
    Rule,
    counts_by_code,
    discover_files,
    lint_paths,
    lint_source,
    select_rules,
)
from repro.lint.rules import ALL_RULES

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintContext",
    "LintError",
    "PARSE_ERROR_CODE",
    "Rule",
    "SUPPRESSION_CODE",
    "counts_by_code",
    "discover_files",
    "lint_paths",
    "lint_source",
    "select_rules",
]
