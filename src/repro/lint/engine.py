"""The lint driver: findings, rule framework, file discovery, suppression.

A *rule* is one visitor-style check with a stable ``RPR1xx`` code.  The
engine parses each file once, attaches parent links, runs every applicable
rule, filters the findings through the file's inline suppressions
(:mod:`repro.lint.suppress`), and appends the suppression-hygiene findings
(code :data:`SUPPRESSION_CODE`).  Findings are structured — path, 1-based
line, 0-based column, code, message — and deterministically ordered, so
``repro lint --json`` output is byte-stable for a given tree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path, PurePath
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import ReproError
from repro.lint.astutil import attach_parents
from repro.lint.suppress import Suppression, parse_suppressions

#: Reported when a file cannot be parsed at all.
PARSE_ERROR_CODE = "RPR001"

#: Reported for unused suppressions and suppressions without a reason.
SUPPRESSION_CODE = "RPR100"


class LintError(ReproError):
    """Raised when the linter itself is used incorrectly (bad code, path)."""


@dataclass(frozen=True, order=True)
class Finding:
    """One structured lint finding, ordered by (path, line, col, code)."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        """The human-readable one-line rendering (``path:line:col: CODE msg``)."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly representation (used by ``repro lint --json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


class LintContext:
    """Everything a rule may consult about the file under analysis."""

    def __init__(self, path: str, tree: ast.Module, source: str) -> None:
        self.path = path
        self.tree = tree
        self.source = source
        self.parts: Tuple[str, ...] = PurePath(path).parts

    def in_library(self) -> bool:
        """Is this file part of the ``repro`` package (``src/repro/...``)?"""
        return "repro" in self.parts

    def in_packages(self, *names: str) -> bool:
        """Is this file inside one of the named sub-packages of ``repro``?"""
        if "repro" not in self.parts:
            return False
        tail = self.parts[self.parts.index("repro") + 1:]
        return any(name in tail for name in names)

    def module_tail(self) -> Tuple[str, ...]:
        """Path components below the ``repro`` package (empty outside it)."""
        if "repro" not in self.parts:
            return ()
        return self.parts[self.parts.index("repro") + 1:]


class Rule:
    """Base class: one invariant check with a stable code.

    Subclasses define the class attributes below and implement
    :meth:`check`; :meth:`applies` narrows a rule to the package paths
    whose invariant it encodes (e.g. the instrumentation guard only binds
    in the hot kernels).
    """

    #: Stable finding code, e.g. ``"RPR101"``.
    code: str = ""
    #: Short kebab-case rule name, e.g. ``"nondeterministic-iteration"``.
    name: str = ""
    #: One-line summary shown in listings.
    summary: str = ""
    #: Multi-line rationale with examples, shown by ``--explain``.
    explanation: str = ""

    def applies(self, context: LintContext) -> bool:
        """Whether this rule binds for the file under analysis."""
        return True

    def check(self, context: LintContext) -> List[Finding]:
        """Return every violation of this rule in ``context``'s tree."""
        raise NotImplementedError

    def finding(self, context: LintContext, node: ast.AST, message: str) -> Finding:
        """Construct a finding anchored at ``node``."""
        return Finding(
            path=context.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        )


def _apply_suppressions(
    findings: List[Finding],
    suppressions: List[Suppression],
    path: str,
    active_codes: Sequence[str],
) -> List[Finding]:
    """Filter suppressed findings; append suppression-hygiene findings."""
    by_line: Dict[int, List[Suppression]] = {}
    for suppression in suppressions:
        by_line.setdefault(suppression.line, []).append(suppression)

    kept: List[Finding] = []
    for finding in findings:
        silenced = False
        for suppression in by_line.get(finding.line, ()):
            if finding.code in suppression.codes:
                suppression.used_codes.append(finding.code)
                silenced = True
        if not silenced:
            kept.append(finding)

    active = set(active_codes)
    for suppression in suppressions:
        if not suppression.reason:
            kept.append(
                Finding(
                    path=path,
                    line=suppression.line,
                    col=0,
                    code=SUPPRESSION_CODE,
                    message=(
                        "suppression has no reason; append ' -- <why this "
                        "invariant does not apply here>'"
                    ),
                )
            )
        for code in suppression.codes:
            if code not in active:
                # The rule did not run (--select/--ignore); we cannot know
                # whether the suppression is stale, so stay quiet.
                continue
            if code not in suppression.used_codes:
                kept.append(
                    Finding(
                        path=path,
                        line=suppression.line,
                        col=0,
                        code=SUPPRESSION_CODE,
                        message=(
                            f"unused suppression: no {code} finding on this "
                            "line (remove the stale ignore)"
                        ),
                    )
                )
    return kept


def lint_source(
    source: str,
    path: str,
    rules: Sequence[Rule],
    check_suppressions: bool = True,
) -> List[Finding]:
    """Lint one in-memory module; the core primitive everything else wraps."""
    try:
        tree = ast.parse(source, filename=path)
    except (SyntaxError, ValueError) as error:
        line = getattr(error, "lineno", None) or 1
        col = getattr(error, "offset", None) or 1
        return [
            Finding(
                path=path,
                line=line,
                col=max(col - 1, 0),
                code=PARSE_ERROR_CODE,
                message=f"file does not parse: {error}",
            )
        ]
    attach_parents(tree)
    context = LintContext(path=path, tree=tree, source=source)
    findings: List[Finding] = []
    for rule in rules:
        if rule.applies(context):
            findings.extend(rule.check(context))
    if check_suppressions:
        findings = _apply_suppressions(
            findings,
            parse_suppressions(source),
            path,
            active_codes=[rule.code for rule in rules],
        )
    return sorted(findings)


def discover_files(paths: Iterable[str]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list.

    Directory walks are sorted — the linter must itself be deterministic
    across filesystems, for exactly the reasons RPR101 exists.
    """
    files: List[Path] = []
    seen = set()
    for raw in paths:
        root = Path(raw)
        if root.is_dir():
            candidates: List[Path] = sorted(root.rglob("*.py"))
        elif root.is_file():
            candidates = [root]
        else:
            raise LintError(f"path {raw!r} is neither a file nor a directory")
        for candidate in candidates:
            key = str(candidate)
            if key not in seen:
                seen.add(key)
                files.append(candidate)
    return files


def lint_paths(
    paths: Iterable[str],
    rules: Sequence[Rule],
    check_suppressions: bool = True,
) -> Tuple[List[Finding], int]:
    """Lint files and directories; returns ``(findings, files_checked)``."""
    findings: List[Finding] = []
    files = discover_files(paths)
    for file_path in files:
        source = file_path.read_text(encoding="utf-8")
        findings.extend(
            lint_source(
                source,
                str(file_path),
                rules,
                check_suppressions=check_suppressions,
            )
        )
    return sorted(findings), len(files)


def counts_by_code(findings: Sequence[Finding]) -> Dict[str, int]:
    """Histogram of findings per code, sorted by code for stable output."""
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.code] = counts.get(finding.code, 0) + 1
    return {code: counts[code] for code in sorted(counts)}


def select_rules(
    rules: Sequence[Rule],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Rule]:
    """Apply ``--select`` / ``--ignore`` code filters to a rule set."""
    known = {rule.code for rule in rules}
    for requested in list(select or []) + list(ignore or []):
        if requested not in known:
            raise LintError(
                f"unknown rule code {requested!r}; known codes: "
                f"{', '.join(sorted(known))}"
            )
    chosen = list(rules)
    if select:
        wanted = set(select)
        chosen = [rule for rule in chosen if rule.code in wanted]
    if ignore:
        dropped = set(ignore)
        chosen = [rule for rule in chosen if rule.code not in dropped]
    return chosen
