"""Inline suppressions: ``# repro-lint: ignore[RPR101] -- reason``.

A suppression comment silences findings of the listed codes **on its own
physical line** (put it on the line the linter reports).  Policy, enforced
as rule :data:`~repro.lint.engine.SUPPRESSION_CODE`:

* every suppression must carry a trailing `` -- reason`` explaining *why*
  the invariant does not apply at this site;
* a suppression that silences nothing is itself a finding — stale ignores
  must not outlive the code they excused.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import List, Tuple

#: Comment grammar.  Codes are comma-separated; the reason follows ``--``.
_SUPPRESSION_RE = re.compile(
    r"#\s*repro-lint:\s*ignore\[(?P<codes>[A-Za-z0-9_,\s]+)\]"
    r"(?:\s*--\s*(?P<reason>\S.*?))?\s*$"
)


@dataclass
class Suppression:
    """One parsed suppression comment."""

    line: int
    codes: Tuple[str, ...]
    reason: str = ""
    #: Codes that actually silenced a finding (filled in by the engine).
    used_codes: List[str] = field(default_factory=list)


def parse_suppressions(source: str) -> List[Suppression]:
    """Extract every suppression comment of ``source``, in line order.

    Comments are found with :mod:`tokenize` so ``#`` characters inside
    string literals can never be misread as suppressions.
    """
    suppressions: List[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        # Unparseable files are reported as parse errors by the engine;
        # there is nothing meaningful to suppress in them.
        return []
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESSION_RE.search(token.string)
        if match is None:
            continue
        codes = tuple(
            code.strip().upper()
            for code in match.group("codes").split(",")
            if code.strip()
        )
        if not codes:
            continue
        suppressions.append(
            Suppression(
                line=token.start[0],
                codes=codes,
                reason=(match.group("reason") or "").strip(),
            )
        )
    return suppressions
