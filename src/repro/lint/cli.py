"""``repro lint`` — the command-line front end of :mod:`repro.lint`.

Exit codes: 0 clean, 1 findings, 2 usage error (unknown rule code, bad
path).  ``--json`` emits a stable machine-readable report (sorted
findings, per-code counts) for the CI artifact.
"""

from __future__ import annotations

import json
import sys
from typing import Any, List, Optional, TextIO

from repro.lint.engine import LintError, counts_by_code, lint_paths, select_rules
from repro.lint.rules import ALL_RULES

#: Default lint targets when no PATHS are given: the library and the
#: benchmark definitions, the two trees whose determinism is load-bearing.
DEFAULT_PATHS = ("src", "benchmarks")


def add_lint_parser(subparsers: Any) -> None:
    """Register the ``lint`` subcommand on an argparse subparsers object."""
    lint = subparsers.add_parser(
        "lint",
        help="run the determinism & invariant linter (RPR1xx rules)",
        description=(
            "AST-based static analysis for the invariants the repro "
            "pipeline depends on: deterministic iteration, no hidden "
            "entropy, guarded instrumentation, store write discipline, "
            "pool safety, exception discipline."
        ),
    )
    lint.add_argument(
        "paths", nargs="*", default=list(DEFAULT_PATHS), metavar="PATHS",
        help="files or directories to lint (default: src benchmarks)",
    )
    lint.add_argument(
        "--json", action="store_true",
        help="emit a machine-readable JSON report",
    )
    lint.add_argument(
        "--select", action="append", default=None, metavar="RPRxxx",
        help="run only these rule codes (repeatable)",
    )
    lint.add_argument(
        "--ignore", action="append", default=None, metavar="RPRxxx",
        help="skip these rule codes (repeatable)",
    )
    lint.add_argument(
        "--explain", default=None, metavar="RPRxxx",
        help="print the rationale and examples for one rule code, then exit",
    )
    lint.add_argument(
        "--no-suppression-checks", action="store_true",
        help="skip unused-suppression / missing-reason hygiene findings",
    )


def _explain(code: str, stream: TextIO) -> int:
    for rule in ALL_RULES:
        if rule.code == code:
            stream.write(f"{rule.code} ({rule.name}): {rule.summary}\n\n")
            stream.write(rule.explanation.rstrip() + "\n")
            return 0
    known = ", ".join(rule.code for rule in ALL_RULES)
    stream.write(f"unknown rule code {code!r}; known codes: {known}\n")
    return 2


def handle_lint(args: Any, stream: Optional[TextIO] = None) -> int:
    """Run the linter per parsed CLI ``args``; returns the process exit code."""
    out: TextIO = stream if stream is not None else sys.stdout
    if args.explain is not None:
        return _explain(args.explain, out)
    try:
        rules = select_rules(ALL_RULES, select=args.select, ignore=args.ignore)
        findings, files_checked = lint_paths(
            args.paths,
            rules,
            check_suppressions=not args.no_suppression_checks,
        )
    except LintError as error:
        out.write(f"repro lint: {error}\n")
        return 2
    if args.json:
        report = {
            "files_checked": files_checked,
            "rules": [rule.code for rule in rules],
            "counts": counts_by_code(findings),
            "findings": [finding.to_dict() for finding in findings],
        }
        out.write(json.dumps(report, indent=2, sort_keys=True) + "\n")
        return 1 if findings else 0
    for finding in findings:
        out.write(finding.format() + "\n")
    if findings:
        counts = counts_by_code(findings)
        summary = ", ".join(f"{code}: {n}" for code, n in counts.items())
        out.write(
            f"{len(findings)} finding(s) in {files_checked} file(s) "
            f"({summary})\n"
        )
        return 1
    out.write(f"{files_checked} file(s) clean\n")
    return 0


def list_rules(stream: Optional[TextIO] = None) -> List[str]:
    """One-line-per-rule listing (used by tests and docs tooling)."""
    out = stream if stream is not None else sys.stdout
    lines = [
        f"{rule.code}  {rule.name:<30} {rule.summary}" for rule in ALL_RULES
    ]
    for line in lines:
        out.write(line + "\n")
    return lines
