"""Pre-correction error injection models.

Every injector produces, for a batch of stored codewords, a boolean error mask
of the same shape; a set bit means the corresponding cell reads back flipped.
The masks respect each model's physical semantics — in particular the
data-retention injector only ever flips CHARGED cells, mirroring the
unidirectional CHARGED → DISCHARGED decay BEER exploits.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.exceptions import ChipConfigurationError
from repro.dram.cell import CellType


class UniformRandomInjector:
    """Flip every codeword bit independently with probability ``bit_error_rate``.

    This is the model behind the paper's Figure 1 (uniform-random
    pre-correction errors at a given raw BER).
    """

    def __init__(self, bit_error_rate: float):
        _validate_probability(bit_error_rate)
        self._bit_error_rate = bit_error_rate

    @property
    def bit_error_rate(self) -> float:
        """Per-bit flip probability."""
        return self._bit_error_rate

    def error_mask(self, stored_codewords: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return a boolean mask of injected errors."""
        stored = np.asarray(stored_codewords)
        return rng.random(stored.shape) < self._bit_error_rate


class DataRetentionInjector:
    """Flip CHARGED cells only, each with probability ``bit_error_rate``.

    CHARGED-ness is derived from the stored bit and the cell type: true-cells
    are CHARGED when storing 1, anti-cells when storing 0 (paper Section 3.2).
    """

    def __init__(self, bit_error_rate: float, cell_type: CellType = CellType.TRUE_CELL):
        _validate_probability(bit_error_rate)
        self._bit_error_rate = bit_error_rate
        self._cell_type = cell_type

    @property
    def bit_error_rate(self) -> float:
        """Per-CHARGED-cell flip probability."""
        return self._bit_error_rate

    @property
    def cell_type(self) -> CellType:
        """Cell convention assumed for every cell in the batch."""
        return self._cell_type

    def error_mask(self, stored_codewords: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return a boolean mask of injected errors (CHARGED cells only)."""
        stored = np.asarray(stored_codewords)
        if self._cell_type is CellType.TRUE_CELL:
            charged = stored == 1
        else:
            charged = stored == 0
        return charged & (rng.random(stored.shape) < self._bit_error_rate)


class FixedErrorCountInjector:
    """Inject exactly ``num_errors`` errors per codeword at random positions.

    Optionally the candidate positions can be restricted (e.g. to the cells a
    BEEP experiment knows to be error-prone) and each selected candidate can
    fail only with probability ``per_bit_probability`` (paper Figure 9).
    """

    def __init__(
        self,
        num_errors: int,
        candidate_positions: Optional[Sequence[int]] = None,
        per_bit_probability: float = 1.0,
    ):
        if num_errors < 0:
            raise ChipConfigurationError("number of errors cannot be negative")
        _validate_probability(per_bit_probability)
        self._num_errors = num_errors
        self._candidate_positions = (
            None if candidate_positions is None else list(candidate_positions)
        )
        self._per_bit_probability = per_bit_probability

    @property
    def num_errors(self) -> int:
        """Number of error-prone cells chosen per codeword."""
        return self._num_errors

    def error_mask(self, stored_codewords: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return a boolean mask with up to ``num_errors`` flips per word."""
        stored = np.asarray(stored_codewords)
        num_words, codeword_length = stored.shape
        candidates = (
            np.arange(codeword_length)
            if self._candidate_positions is None
            else np.asarray(self._candidate_positions)
        )
        if self._num_errors > candidates.size:
            raise ChipConfigurationError(
                f"cannot place {self._num_errors} errors among {candidates.size} candidates"
            )
        mask = np.zeros((num_words, codeword_length), dtype=bool)
        for word in range(num_words):
            chosen = rng.choice(candidates, size=self._num_errors, replace=False)
            fires = rng.random(self._num_errors) < self._per_bit_probability
            mask[word, chosen[fires]] = True
        return mask


class PerBitBernoulliInjector:
    """Flip bit ``i`` of every codeword independently with probability ``p[i]``."""

    def __init__(self, probabilities: Sequence[float]):
        probabilities = np.asarray(list(probabilities), dtype=float)
        if probabilities.ndim != 1:
            raise ChipConfigurationError("per-bit probabilities must be one-dimensional")
        if ((probabilities < 0) | (probabilities > 1)).any():
            raise ChipConfigurationError("probabilities must lie in [0, 1]")
        self._probabilities = probabilities

    @property
    def probabilities(self) -> np.ndarray:
        """Per-bit flip probabilities."""
        return self._probabilities.copy()

    def error_mask(self, stored_codewords: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return a boolean mask of injected errors."""
        stored = np.asarray(stored_codewords)
        if stored.shape[1] != self._probabilities.shape[0]:
            raise ChipConfigurationError(
                f"codeword length {stored.shape[1]} does not match "
                f"{self._probabilities.shape[0]} per-bit probabilities"
            )
        return rng.random(stored.shape) < self._probabilities[np.newaxis, :]


def _validate_probability(value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ChipConfigurationError(f"probability {value} must lie in [0, 1]")
