"""Pre-correction error injection models.

Every injector produces, for a batch of stored codewords, a boolean error mask
of the same shape; a set bit means the corresponding cell reads back flipped.
The masks respect each model's physical semantics — in particular the
data-retention injector only ever flips CHARGED cells, mirroring the
unidirectional CHARGED → DISCHARGED decay BEER exploits.

Injectors additionally implement the packed protocol consumed by the fused
simulation backend (:mod:`repro.einsim.fused`):
``error_mask_packed(codeword, num_words, rng)`` returns the same logical
masks as ``error_mask`` on a ``num_words``-fold tiling of ``codeword`` —
drawn from the RNG in exactly the same order, so the two routes are
bit-identical — but in a packed :class:`~repro.einsim.fused.PackedErrorBatch`
representation that never materializes the tiled codeword batch.  Injectors
without the method (e.g. :class:`FaultModelInjector`, whose fault models need
the stored bits) automatically take the generic tile-and-pack fallback.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.exceptions import ChipConfigurationError
from repro.dram.cell import CellType
from repro.einsim.fused import (
    SUBSET_WIDTH_LIMIT,
    PackedErrorBatch,
    packed_error_batch,
)


class UniformRandomInjector:
    """Flip every codeword bit independently with probability ``bit_error_rate``.

    This is the model behind the paper's Figure 1 (uniform-random
    pre-correction errors at a given raw BER).
    """

    def __init__(self, bit_error_rate: float):
        _validate_probability(bit_error_rate)
        self._bit_error_rate = bit_error_rate

    @property
    def bit_error_rate(self) -> float:
        """Per-bit flip probability."""
        return self._bit_error_rate

    def error_mask(self, stored_codewords: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return a boolean mask of injected errors."""
        stored = np.asarray(stored_codewords)
        return rng.random(stored.shape) < self._bit_error_rate

    def error_mask_packed(
        self, codeword: np.ndarray, num_words: int, rng: np.random.Generator
    ) -> PackedErrorBatch:
        """Packed-protocol equivalent of :meth:`error_mask` (same draws)."""
        mask = rng.random((num_words, codeword.shape[0])) < self._bit_error_rate
        return PackedErrorBatch.from_bool_mask(mask)


class DataRetentionInjector:
    """Flip CHARGED cells only, each with probability ``bit_error_rate``.

    CHARGED-ness is derived from the stored bit and the cell type: true-cells
    are CHARGED when storing 1, anti-cells when storing 0 (paper Section 3.2).
    """

    def __init__(self, bit_error_rate: float, cell_type: CellType = CellType.TRUE_CELL):
        _validate_probability(bit_error_rate)
        self._bit_error_rate = bit_error_rate
        self._cell_type = cell_type

    @property
    def bit_error_rate(self) -> float:
        """Per-CHARGED-cell flip probability."""
        return self._bit_error_rate

    @property
    def cell_type(self) -> CellType:
        """Cell convention assumed for every cell in the batch."""
        return self._cell_type

    def error_mask(self, stored_codewords: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return a boolean mask of injected errors (CHARGED cells only)."""
        stored = np.asarray(stored_codewords)
        if self._cell_type is CellType.TRUE_CELL:
            charged = stored == 1
        else:
            charged = stored == 0
        return charged & (rng.random(stored.shape) < self._bit_error_rate)

    def error_mask_packed(
        self, codeword: np.ndarray, num_words: int, rng: np.random.Generator
    ) -> PackedErrorBatch:
        """Packed-protocol equivalent of :meth:`error_mask` (same draws)."""
        charged_value = 1 if self._cell_type is CellType.TRUE_CELL else 0
        charged_row = codeword == charged_value
        mask = rng.random((num_words, codeword.shape[0])) < self._bit_error_rate
        mask &= charged_row[np.newaxis, :]
        return PackedErrorBatch.from_bool_mask(mask)


class FixedErrorCountInjector:
    """Inject exactly ``num_errors`` errors per codeword at random positions.

    Optionally the candidate positions can be restricted (e.g. to the cells a
    BEEP experiment knows to be error-prone) and each selected candidate can
    fail only with probability ``per_bit_probability`` (paper Figure 9).
    """

    def __init__(
        self,
        num_errors: int,
        candidate_positions: Optional[Sequence[int]] = None,
        per_bit_probability: float = 1.0,
    ):
        if num_errors < 0:
            raise ChipConfigurationError("number of errors cannot be negative")
        _validate_probability(per_bit_probability)
        self._num_errors = num_errors
        self._candidate_positions = (
            None if candidate_positions is None else list(candidate_positions)
        )
        if self._candidate_positions is not None and len(
            set(self._candidate_positions)
        ) != len(self._candidate_positions):
            # The without-replacement draw (and the flat mask assignment in
            # error_mask) both assume distinct positions.
            raise ChipConfigurationError("candidate positions must be distinct")
        self._per_bit_probability = per_bit_probability

    @property
    def num_errors(self) -> int:
        """Number of error-prone cells chosen per codeword."""
        return self._num_errors

    def error_mask(self, stored_codewords: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return a boolean mask with up to ``num_errors`` flips per word.

        Vectorised: a uniform sort key per (word, candidate) pair turns the
        per-word without-replacement draw into one :func:`numpy.argpartition`
        over the batch — the ``num_errors`` smallest keys of each row are a
        uniformly random candidate subset.
        """
        stored = np.asarray(stored_codewords)
        num_words, codeword_length = stored.shape
        candidates = (
            np.arange(codeword_length)
            if self._candidate_positions is None
            else np.asarray(self._candidate_positions)
        )
        if self._num_errors > candidates.size:
            raise ChipConfigurationError(
                f"cannot place {self._num_errors} errors among {candidates.size} candidates"
            )
        mask = np.zeros((num_words, codeword_length), dtype=bool)
        if self._num_errors == 0 or num_words == 0:
            return mask
        keys = rng.random((num_words, candidates.size))
        if self._num_errors < candidates.size:
            chosen = np.argpartition(keys, self._num_errors - 1, axis=1)[
                :, : self._num_errors
            ]
        else:
            chosen = np.broadcast_to(
                np.arange(candidates.size), (num_words, candidates.size)
            )
        positions = candidates[chosen]
        fires = rng.random((num_words, self._num_errors)) < self._per_bit_probability
        rows = np.repeat(np.arange(num_words), self._num_errors)
        # Positions within a row are distinct, so the flat fancy assignment
        # writes each (word, bit) pair exactly once.
        mask[rows, positions.ravel()] = fires.ravel()
        return mask

    def error_mask_packed(
        self, codeword: np.ndarray, num_words: int, rng: np.random.Generator
    ) -> PackedErrorBatch:
        """Packed-protocol equivalent of :meth:`error_mask` (same draws).

        Small candidate lists (at most
        :data:`~repro.einsim.fused.SUBSET_WIDTH_LIMIT` positions — the BEEP
        weak-cell case) come back in the subset representation, which the
        fused kernel classifies from a single histogram; larger draws use
        the per-word sparse representation.
        """
        codeword_length = codeword.shape[0]
        candidates = (
            np.arange(codeword_length, dtype=np.int64)
            if self._candidate_positions is None
            else np.asarray(self._candidate_positions, dtype=np.int64)
        )
        if self._num_errors > candidates.size:
            raise ChipConfigurationError(
                f"cannot place {self._num_errors} errors among {candidates.size} candidates"
            )
        if self._num_errors == 0 or num_words == 0:
            return PackedErrorBatch.from_sparse(
                np.zeros((num_words, 0), dtype=np.int64),
                np.zeros((num_words, 0), dtype=bool),
                codeword_length,
            )
        keys = rng.random((num_words, candidates.size))
        if self._num_errors < candidates.size:
            chosen = np.argpartition(keys, self._num_errors - 1, axis=1)[
                :, : self._num_errors
            ]
        else:
            chosen = np.broadcast_to(
                np.arange(candidates.size), (num_words, candidates.size)
            )
        fires = rng.random((num_words, self._num_errors)) < self._per_bit_probability
        if candidates.size <= SUBSET_WIDTH_LIMIT:
            # Row sums via matmul: numpy's ``sum(axis=1)`` over an axis this
            # narrow is several times slower than a matrix-vector product.
            if self._num_errors < candidates.size:
                subsets = np.where(fires, np.int64(1) << chosen, 0) @ np.ones(
                    self._num_errors, dtype=np.int64
                )
            else:
                # ``chosen`` is the identity permutation, so the subset is
                # just the fired candidates weighted by powers of two.
                subsets = fires.astype(np.int64) @ (
                    np.int64(1) << np.arange(candidates.size, dtype=np.int64)
                )
            return PackedErrorBatch.from_subset(candidates, subsets, codeword_length)
        return PackedErrorBatch.from_sparse(
            candidates[chosen], fires, codeword_length
        )


class PerBitBernoulliInjector:
    """Flip bit ``i`` of every codeword independently with probability ``p[i]``."""

    def __init__(self, probabilities: Sequence[float]):
        probabilities = np.asarray(list(probabilities), dtype=float)
        if probabilities.ndim != 1:
            raise ChipConfigurationError("per-bit probabilities must be one-dimensional")
        if ((probabilities < 0) | (probabilities > 1)).any():
            raise ChipConfigurationError("probabilities must lie in [0, 1]")
        self._probabilities = probabilities

    @property
    def probabilities(self) -> np.ndarray:
        """Per-bit flip probabilities."""
        return self._probabilities.copy()

    def error_mask(self, stored_codewords: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return a boolean mask of injected errors."""
        stored = np.asarray(stored_codewords)
        if stored.shape[1] != self._probabilities.shape[0]:
            raise ChipConfigurationError(
                f"codeword length {stored.shape[1]} does not match "
                f"{self._probabilities.shape[0]} per-bit probabilities"
            )
        return rng.random(stored.shape) < self._probabilities[np.newaxis, :]

    def error_mask_packed(
        self, codeword: np.ndarray, num_words: int, rng: np.random.Generator
    ) -> PackedErrorBatch:
        """Packed-protocol equivalent of :meth:`error_mask` (same draws)."""
        if codeword.shape[0] != self._probabilities.shape[0]:
            raise ChipConfigurationError(
                f"codeword length {codeword.shape[0]} does not match "
                f"{self._probabilities.shape[0]} per-bit probabilities"
            )
        mask = (
            rng.random((num_words, codeword.shape[0]))
            < self._probabilities[np.newaxis, :]
        )
        return PackedErrorBatch.from_bool_mask(mask)


class MixedCellRetentionInjector:
    """Data-retention errors on a word mixing true- and anti-cell columns.

    Real chips can interleave true- and anti-cell regions (manufacturer C in
    paper Section 5.1.1).  Each column is assigned a cell convention; only
    CHARGED cells under that convention can decay: true-cell columns flip
    stored 1s, anti-cell columns flip stored 0s.

    Parameters
    ----------
    bit_error_rate:
        Per-CHARGED-cell flip probability.
    anti_cell_columns:
        Codeword columns using the anti-cell convention.  ``None`` assigns
        every odd column to anti-cells (an alternating layout).
    """

    def __init__(
        self,
        bit_error_rate: float,
        anti_cell_columns: Optional[Sequence[int]] = None,
    ):
        _validate_probability(bit_error_rate)
        self._bit_error_rate = bit_error_rate
        self._anti_cell_columns = (
            None if anti_cell_columns is None else tuple(int(c) for c in anti_cell_columns)
        )

    @property
    def bit_error_rate(self) -> float:
        """Per-CHARGED-cell flip probability."""
        return self._bit_error_rate

    def anti_cell_mask(self, codeword_length: int) -> np.ndarray:
        """Boolean per-column mask; True marks anti-cell columns."""
        anti = np.zeros(codeword_length, dtype=bool)
        if self._anti_cell_columns is None:
            anti[1::2] = True
        else:
            for column in self._anti_cell_columns:
                if not 0 <= column < codeword_length:
                    raise ChipConfigurationError(
                        f"anti-cell column {column} out of range for "
                        f"codeword length {codeword_length}"
                    )
                anti[column] = True
        return anti

    def error_mask(self, stored_codewords: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return a boolean mask of injected errors (CHARGED cells only)."""
        stored = np.asarray(stored_codewords)
        anti = self.anti_cell_mask(stored.shape[1])
        charged = np.where(anti[np.newaxis, :], stored == 0, stored == 1)
        return charged & (rng.random(stored.shape) < self._bit_error_rate)

    def error_mask_packed(
        self, codeword: np.ndarray, num_words: int, rng: np.random.Generator
    ) -> PackedErrorBatch:
        """Packed-protocol equivalent of :meth:`error_mask` (same draws)."""
        anti = self.anti_cell_mask(codeword.shape[0])
        charged_row = np.where(anti, codeword == 0, codeword == 1)
        mask = rng.random((num_words, codeword.shape[0])) < self._bit_error_rate
        mask &= charged_row[np.newaxis, :]
        return PackedErrorBatch.from_bool_mask(mask)


class BurstErrorInjector:
    """Multi-bit burst errors: a contiguous run of flips within a word.

    Models coupling-style failure modes where one event disturbs several
    physically adjacent cells at once (the paper's Section 7.1.5 extension of
    BEEP beyond single-cell retention faults).  Each word independently
    suffers a burst with probability ``burst_probability``; the burst starts
    at a uniformly random position and each cell inside it flips with
    probability ``bit_flip_probability``.
    """

    def __init__(
        self,
        burst_probability: float,
        burst_length: int,
        bit_flip_probability: float = 1.0,
    ):
        _validate_probability(burst_probability)
        _validate_probability(bit_flip_probability)
        if burst_length < 1:
            raise ChipConfigurationError("burst length must be at least one bit")
        self._burst_probability = burst_probability
        self._burst_length = int(burst_length)
        self._bit_flip_probability = bit_flip_probability

    @property
    def burst_length(self) -> int:
        """Number of contiguous cells disturbed by one burst."""
        return self._burst_length

    def error_mask(self, stored_codewords: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return a boolean mask of injected errors."""
        stored = np.asarray(stored_codewords)
        num_words, codeword_length = stored.shape
        length = min(self._burst_length, codeword_length)
        mask = np.zeros((num_words, codeword_length), dtype=bool)
        if num_words == 0:
            return mask
        bursty = rng.random(num_words) < self._burst_probability
        starts = rng.integers(0, codeword_length - length + 1, size=num_words)
        fires = rng.random((num_words, length)) < self._bit_flip_probability
        columns = starts[:, np.newaxis] + np.arange(length)[np.newaxis, :]
        rows = np.repeat(np.arange(num_words), length)
        mask[rows, columns.ravel()] = fires.ravel()
        mask[~bursty] = False
        return mask

    def error_mask_packed(
        self, codeword: np.ndarray, num_words: int, rng: np.random.Generator
    ) -> PackedErrorBatch:
        """Packed-protocol equivalent of :meth:`error_mask` (same draws)."""
        codeword_length = codeword.shape[0]
        length = min(self._burst_length, codeword_length)
        if num_words == 0:
            return PackedErrorBatch.from_sparse(
                np.zeros((0, length), dtype=np.int64),
                np.zeros((0, length), dtype=bool),
                codeword_length,
            )
        bursty = rng.random(num_words) < self._burst_probability
        starts = rng.integers(0, codeword_length - length + 1, size=num_words)
        fires = rng.random((num_words, length)) < self._bit_flip_probability
        fires &= bursty[:, np.newaxis]
        positions = starts[:, np.newaxis].astype(np.int64) + np.arange(
            length, dtype=np.int64
        )
        return PackedErrorBatch.from_sparse(positions, fires, codeword_length)


class RowStripeInjector:
    """RowHammer-like disturbance: victim words see flips on a column stripe.

    Aggressor activity disturbs entire rows, and within a disturbed row the
    vulnerable cells follow the physical column topology — modelled here as a
    periodic stripe (e.g. every other column).  Each word is independently a
    victim with probability ``row_probability``; within a victim word, cells
    on the stripe flip with probability ``bit_flip_probability``.
    """

    def __init__(
        self,
        row_probability: float,
        stripe_period: int = 2,
        stripe_phase: int = 0,
        bit_flip_probability: float = 1.0,
    ):
        _validate_probability(row_probability)
        _validate_probability(bit_flip_probability)
        if stripe_period < 1:
            raise ChipConfigurationError("stripe period must be at least one column")
        if not 0 <= stripe_phase < stripe_period:
            raise ChipConfigurationError(
                f"stripe phase {stripe_phase} must lie in [0, {stripe_period})"
            )
        self._row_probability = row_probability
        self._stripe_period = int(stripe_period)
        self._stripe_phase = int(stripe_phase)
        self._bit_flip_probability = bit_flip_probability

    def stripe_mask(self, codeword_length: int) -> np.ndarray:
        """Boolean per-column mask; True marks columns on the stripe."""
        return np.arange(codeword_length) % self._stripe_period == self._stripe_phase

    def error_mask(self, stored_codewords: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return a boolean mask of injected errors."""
        stored = np.asarray(stored_codewords)
        num_words, codeword_length = stored.shape
        victims = rng.random(num_words) < self._row_probability
        stripe = self.stripe_mask(codeword_length)
        fires = rng.random(stored.shape) < self._bit_flip_probability
        return victims[:, np.newaxis] & stripe[np.newaxis, :] & fires

    def error_mask_packed(
        self, codeword: np.ndarray, num_words: int, rng: np.random.Generator
    ) -> PackedErrorBatch:
        """Packed-protocol equivalent of :meth:`error_mask` (same draws)."""
        codeword_length = codeword.shape[0]
        victims = rng.random(num_words) < self._row_probability
        stripe = self.stripe_mask(codeword_length)
        mask = rng.random((num_words, codeword_length)) < self._bit_flip_probability
        mask &= victims[:, np.newaxis] & stripe[np.newaxis, :]
        return PackedErrorBatch.from_bool_mask(mask)


class FaultModelInjector:
    """Adapt a :mod:`repro.dram.faults` model into a pre-correction injector.

    The chip-level fault models expose ``corrupt(bits, rng)``; the injector
    protocol wants an error *mask*.  The mask is simply the diff between the
    stored bits and their corrupted read-back, so any chip fault model (e.g.
    :class:`~repro.dram.faults.TransientFaultModel` or
    :class:`~repro.dram.faults.StuckAtFaultModel`) plugs straight into the
    batched simulation engine.
    """

    def __init__(self, fault_model):
        if not hasattr(fault_model, "corrupt"):
            raise ChipConfigurationError(
                "fault model must expose a corrupt(bits, rng) method"
            )
        self._fault_model = fault_model

    @property
    def fault_model(self):
        """The wrapped chip-level fault model."""
        return self._fault_model

    def error_mask(self, stored_codewords: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return the mask of bits the fault model corrupts on read-back."""
        stored = np.asarray(stored_codewords, dtype=np.uint8)
        return self._fault_model.corrupt(stored, rng) != stored


class CompositeInjector:
    """OR-combination of several injectors (overlaid error mechanisms).

    Masks are drawn in member order from the shared RNG stream, so a
    composite is deterministic for a given seed.  A bit is in error if *any*
    member flips it — matching how independent physical mechanisms combine.
    """

    def __init__(self, injectors: Sequence):
        members = list(injectors)
        if not members:
            raise ChipConfigurationError("composite injector needs at least one member")
        self._injectors = members

    @property
    def injectors(self) -> Sequence:
        """The member injectors, in application order."""
        return tuple(self._injectors)

    def error_mask(self, stored_codewords: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return the union of every member's error mask."""
        stored = np.asarray(stored_codewords)
        mask = np.zeros(stored.shape, dtype=bool)
        for injector in self._injectors:
            mask |= injector.error_mask(stored, rng)
        return mask

    def error_mask_packed(
        self, codeword: np.ndarray, num_words: int, rng: np.random.Generator
    ) -> PackedErrorBatch:
        """Packed-protocol equivalent of :meth:`error_mask` (same draws).

        Members are drawn in application order from the shared RNG stream —
        the same order as :meth:`error_mask` — and their packed masks are
        OR-combined lane-wise.
        """
        lanes = None
        for injector in self._injectors:
            member = packed_error_batch(injector, codeword, num_words, rng)
            member_lanes = member.to_lanes()
            lanes = member_lanes if lanes is None else lanes | member_lanes
        assert lanes is not None  # the constructor rejects empty members
        return PackedErrorBatch.from_lanes(lanes, codeword.shape[0])


def _validate_probability(value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ChipConfigurationError(f"probability {value} must lie in [0, 1]")
