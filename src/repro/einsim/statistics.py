"""Statistical helpers for simulation results.

The paper reports Figure 1 as medians with 95 % confidence intervals obtained
by statistical bootstrapping over 1000 resamples; these helpers provide that
machinery for the reproduction's figures.
"""

from __future__ import annotations

from repro.exceptions import ValidationError
import hashlib
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class BootstrapInterval:
    """A point estimate with a bootstrap confidence interval."""

    estimate: float
    lower: float
    upper: float
    confidence: float

    def contains(self, value: float) -> bool:
        """Return True if ``value`` lies inside the interval."""
        return self.lower <= value <= self.upper


def _derived_rng(data: np.ndarray) -> np.random.Generator:
    """A deterministic generator seeded from the sample bytes.

    Campaign records must be byte-identical and resumable (see
    :mod:`repro.store`), so falling back to an *unseeded*
    ``np.random.default_rng()`` is not acceptable: when the caller does not
    inject a generator, the bootstrap seed is derived from the data itself,
    making the interval a pure function of its inputs.
    """
    digest = hashlib.blake2b(data.tobytes(), digest_size=8).digest()
    return np.random.default_rng(int.from_bytes(digest, "little"))


def bootstrap_confidence_interval(
    samples: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.median,
    num_resamples: int = 1000,
    confidence: float = 0.95,
    rng: Optional[np.random.Generator] = None,
) -> BootstrapInterval:
    """Bootstrap a confidence interval for ``statistic`` over ``samples``.

    Without an explicit ``rng`` the resampling generator is derived
    deterministically from the sample bytes, so repeated calls on the same
    data reproduce the same interval (required on all campaign paths).
    """
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        raise ValidationError("cannot bootstrap an empty sample")
    if not 0 < confidence < 1:
        raise ValidationError("confidence must lie strictly between 0 and 1")
    if num_resamples < 1:
        raise ValidationError("at least one resample is required")
    generator = rng if rng is not None else _derived_rng(data)
    resample_statistics = np.empty(num_resamples, dtype=float)
    for index in range(num_resamples):
        resample = generator.choice(data, size=data.size, replace=True)
        resample_statistics[index] = float(statistic(resample))
    alpha = (1.0 - confidence) / 2.0
    lower, upper = np.quantile(resample_statistics, [alpha, 1.0 - alpha])
    return BootstrapInterval(
        estimate=float(statistic(data)),
        lower=float(lower),
        upper=float(upper),
        confidence=confidence,
    )


def relative_probabilities(counts: Sequence[float]) -> np.ndarray:
    """Normalise per-bit error counts into relative probabilities (sum = 1).

    This is how Figure 1 presents per-bit error distributions: the interesting
    signal is the *shape* across bit positions, not the absolute error rate.
    """
    values = np.asarray(list(counts), dtype=float)
    total = values.sum()
    if total <= 0:
        return np.zeros_like(values)
    return values / total


def empirical_rate(successes: int, trials: int) -> float:
    """Return a simple empirical probability, guarding against zero trials."""
    if trials < 0 or successes < 0 or successes > trials:
        raise ValidationError("successes must lie within [0, trials]")
    if trials == 0:
        return 0.0
    return successes / trials
