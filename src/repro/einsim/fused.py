"""Fused Monte-Carlo decode pipeline over bit-packed ``uint64`` lanes.

The staged backends (:mod:`repro.einsim.engine`) materialize every
intermediate of a Monte-Carlo round as a full ``(num_words, n)`` ``uint8``
batch: tiled codewords, injected words, corrected words.  The fused backend
never does.  It exploits two identities:

* every stored word of a round is the *same* codeword ``c`` with
  ``H·c = 0``, so the syndrome of a received word equals the syndrome of its
  error mask — decode outcomes are a function of the mask alone;
* all of :class:`~repro.einsim.simulator.SimulationResult` is derivable from
  the mask and the decode action: the post-correction data-bit error at
  position ``j`` is ``mask[j] XOR (action == j)``, so per-bit counts follow
  from mask column counts plus a ±1 adjustment at each acted-on position.

Injectors emit masks directly in packed form via the ``error_mask_packed``
protocol (:mod:`repro.einsim.injectors`), in one of three representations:

* ``lanes`` — dense ``uint64`` lanes, for Bernoulli-style models;
* ``sparse`` — per-word candidate positions plus fire flags, for
  fixed-error-count draws over many candidates;
* ``subset`` — a single integer per word indexing the fired subset of a
  small shared candidate list (the BEEP weak-cell case), classified entirely
  through ``2**c``-entry lookup tables and one histogram.

Injectors without the protocol fall back to the unpacked
``error_mask`` + pack (bit-identical, just slower).  Classification is
segment-aware so one kernel call covers many patterns or campaign chunks
(:func:`FusedKernel.classify_segments`), and the dense syndrome fold can run
on the optional numba tier (:mod:`repro.gf2.native`) when present.

Every path consumes the RNG stream exactly as the reference backend does and
produces bit-identical statistics (``tests/test_differential_fused.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import DimensionError, ValidationError
from repro.gf2.bitpack import (
    LANE_BITS,
    fold_bytes,
    lanes_to_bytes,
    num_lanes,
    pack_bool_rows,
    packed_column_counts,
    popcount_u64,
)
from repro.gf2.native import fold_classify_native, native_available
from repro.obs import TRACER
from repro.ecc.code import SystematicLinearCode

#: Widest shared candidate list stored as subset integers; beyond this the
#: ``2**c`` per-subset tables stop paying for themselves and injectors fall
#: back to the sparse representation.
SUBSET_WIDTH_LIMIT = 16

#: Smallest dense batch worth dispatching to the numba tier (compilation and
#: call overhead dominate below this).
_NATIVE_MIN_WORDS = 1024


@dataclass
class PackedErrorBatch:
    """One Monte-Carlo round's error masks, in packed form.

    Exactly one representation is populated; ``kind`` reports which.  All
    representations describe the same logical object — a boolean
    ``(num_words, num_bits)`` mask — and :meth:`to_lanes` converts any of
    them to dense lanes without unpacking.
    """

    num_words: int
    num_bits: int
    #: Dense representation: ``(num_words, lanes)`` ``uint64``.
    lanes: Optional[np.ndarray] = None
    #: Sparse representation: ``(num_words, e)`` positions and fire flags.
    positions: Optional[np.ndarray] = None
    fires: Optional[np.ndarray] = None
    #: Subset representation: shared candidate positions ``(c,)`` plus one
    #: integer per word whose bit ``j`` fires ``candidates[j]``.
    candidates: Optional[np.ndarray] = None
    subsets: Optional[np.ndarray] = None

    @property
    def kind(self) -> str:
        """One of ``"lanes"``, ``"sparse"``, ``"subset"``."""
        if self.lanes is not None:
            return "lanes"
        if self.subsets is not None:
            return "subset"
        return "sparse"

    # -- constructors -----------------------------------------------------
    @classmethod
    def from_bool_mask(cls, mask: np.ndarray) -> "PackedErrorBatch":
        """Pack a dense boolean ``(num_words, num_bits)`` mask into lanes."""
        mask = np.asarray(mask, dtype=bool)
        if mask.ndim != 2:
            raise DimensionError(f"expected a 2-D mask, got shape {mask.shape}")
        return cls(
            num_words=mask.shape[0],
            num_bits=mask.shape[1],
            lanes=pack_bool_rows(mask),
        )

    @classmethod
    def from_lanes(cls, lanes: np.ndarray, num_bits: int) -> "PackedErrorBatch":
        """Wrap an already-packed ``(num_words, lanes)`` ``uint64`` array."""
        lanes = np.ascontiguousarray(np.asarray(lanes, dtype=np.uint64))
        if lanes.ndim != 2 or lanes.shape[1] != num_lanes(num_bits):
            raise DimensionError(
                f"lane array of shape {lanes.shape} cannot hold {num_bits} bits"
            )
        return cls(num_words=lanes.shape[0], num_bits=num_bits, lanes=lanes)

    @classmethod
    def from_sparse(
        cls, positions: np.ndarray, fires: np.ndarray, num_bits: int
    ) -> "PackedErrorBatch":
        """Per-word distinct positions ``(m, e)`` with boolean fire flags."""
        positions = np.asarray(positions, dtype=np.int64)
        fires = np.asarray(fires, dtype=bool)
        if positions.ndim != 2 or positions.shape != fires.shape:
            raise DimensionError(
                f"positions {positions.shape} and fires {fires.shape} must be "
                "matching 2-D arrays"
            )
        return cls(
            num_words=positions.shape[0],
            num_bits=num_bits,
            positions=positions,
            fires=fires,
        )

    @classmethod
    def from_subset(
        cls, candidates: np.ndarray, subsets: np.ndarray, num_bits: int
    ) -> "PackedErrorBatch":
        """Shared candidate list plus one fired-subset integer per word."""
        candidates = np.asarray(candidates, dtype=np.int64)
        subsets = np.asarray(subsets, dtype=np.int64)
        if candidates.ndim != 1 or candidates.size > SUBSET_WIDTH_LIMIT:
            raise DimensionError(
                f"candidate list of shape {candidates.shape} exceeds the "
                f"subset width limit ({SUBSET_WIDTH_LIMIT})"
            )
        if subsets.ndim != 1:
            raise DimensionError(f"subsets must be 1-D, got {subsets.shape}")
        return cls(
            num_words=subsets.shape[0],
            num_bits=num_bits,
            candidates=candidates,
            subsets=subsets,
        )

    # -- conversions ------------------------------------------------------
    def to_lanes(self) -> np.ndarray:
        """Densify into ``(num_words, lanes)`` ``uint64`` (never unpacks)."""
        if self.lanes is not None:
            return self.lanes
        if self.subsets is not None:
            assert self.candidates is not None
            width = self.candidates.size
            vbits = ((self.subsets[:, np.newaxis] >> np.arange(width)) & 1) != 0
            positions = np.broadcast_to(
                self.candidates, (self.num_words, width)
            )
            return _scatter_sparse(positions, vbits, self.num_words, self.num_bits)
        assert self.positions is not None and self.fires is not None
        return _scatter_sparse(
            self.positions, self.fires, self.num_words, self.num_bits
        )


def _scatter_sparse(
    positions: np.ndarray, fires: np.ndarray, num_words: int, num_bits: int
) -> np.ndarray:
    lanes = np.zeros((num_words, num_lanes(num_bits)), dtype=np.uint64)
    if positions.size == 0:
        return lanes
    rows = np.repeat(np.arange(num_words), positions.shape[1])[fires.ravel()]
    cols = positions.ravel()[fires.ravel()]
    np.bitwise_or.at(
        lanes,
        (rows, cols // LANE_BITS),
        np.uint64(1) << (cols % LANE_BITS).astype(np.uint64),
    )
    return lanes


def batches_compatible(first: PackedErrorBatch, second: PackedErrorBatch) -> bool:
    """Whether two batches can be concatenated into one classify call."""
    if first.num_bits != second.num_bits or first.kind != second.kind:
        return False
    if first.kind == "sparse":
        assert first.positions is not None and second.positions is not None
        return first.positions.shape[1] == second.positions.shape[1]
    if first.kind == "subset":
        assert first.candidates is not None and second.candidates is not None
        return np.array_equal(first.candidates, second.candidates)
    return True


def concat_batches(batches: Sequence[PackedErrorBatch]) -> PackedErrorBatch:
    """Concatenate compatible batches along the word axis."""
    if not batches:
        raise ValidationError("cannot concatenate an empty batch list")
    head = batches[0]
    if len(batches) == 1:
        return head
    for other in batches[1:]:
        if not batches_compatible(head, other):
            raise ValidationError(
                "cannot concatenate incompatible packed error batches"
            )
    total = sum(batch.num_words for batch in batches)
    if head.kind == "lanes":
        return PackedErrorBatch(
            num_words=total,
            num_bits=head.num_bits,
            lanes=np.vstack([batch.to_lanes() for batch in batches]),
        )
    if head.kind == "subset":
        return PackedErrorBatch(
            num_words=total,
            num_bits=head.num_bits,
            candidates=head.candidates,
            subsets=np.concatenate(
                [batch.subsets for batch in batches]  # type: ignore[misc]
            ),
        )
    return PackedErrorBatch(
        num_words=total,
        num_bits=head.num_bits,
        positions=np.vstack([batch.positions for batch in batches]),
        fires=np.vstack([batch.fires for batch in batches]),
    )


def packed_error_batch(
    injector, codeword: np.ndarray, num_words: int, rng: np.random.Generator
) -> PackedErrorBatch:
    """Draw one round's error masks from ``injector`` in packed form.

    Uses the injector's ``error_mask_packed`` protocol when available; any
    other injector falls back to tiling the codeword and packing its dense
    ``error_mask`` — the identical RNG draws, so both routes are bit-exact.
    """
    codeword = np.asarray(codeword, dtype=np.uint8)
    packed = getattr(injector, "error_mask_packed", None)
    if packed is not None:
        return packed(codeword, num_words, rng)
    stored = np.tile(codeword, (num_words, 1))
    mask = np.asarray(injector.error_mask(stored, rng), dtype=bool)
    return PackedErrorBatch.from_bool_mask(mask)


@dataclass
class FusedStats:
    """Classification aggregates for one segment of a packed round.

    Field-for-field the payload of a
    :class:`~repro.einsim.simulator.SimulationResult` (minus the dataword).
    """

    num_words: int
    pre_correction_error_counts: np.ndarray
    post_correction_error_counts: np.ndarray
    uncorrectable_words: int
    miscorrected_words: int
    detected_words: int
    miscorrection_positions: Tuple[int, ...] = field(default_factory=tuple)

    @classmethod
    def zero(cls, num_bits: int, num_data_bits: int) -> "FusedStats":
        """An empty accumulator for the given code dimensions."""
        return cls(
            num_words=0,
            pre_correction_error_counts=np.zeros(num_bits, dtype=np.int64),
            post_correction_error_counts=np.zeros(num_data_bits, dtype=np.int64),
            uncorrectable_words=0,
            miscorrected_words=0,
            detected_words=0,
        )

    def merge(self, other: "FusedStats") -> "FusedStats":
        """Combine two segments' aggregates."""
        return FusedStats(
            num_words=self.num_words + other.num_words,
            pre_correction_error_counts=(
                self.pre_correction_error_counts
                + other.pre_correction_error_counts
            ),
            post_correction_error_counts=(
                self.post_correction_error_counts
                + other.post_correction_error_counts
            ),
            uncorrectable_words=self.uncorrectable_words + other.uncorrectable_words,
            miscorrected_words=self.miscorrected_words + other.miscorrected_words,
            detected_words=self.detected_words + other.detected_words,
            miscorrection_positions=tuple(
                sorted(
                    set(self.miscorrection_positions)
                    | set(other.miscorrection_positions)
                )
            ),
        )


@dataclass
class _SubsetTables:
    """Per-subset-value lookup tables for one shared candidate list."""

    detect: np.ndarray
    too_many: np.ndarray
    miscorrect: np.ndarray
    bit_matrix: np.ndarray
    plus_targets: np.ndarray
    minus_targets: np.ndarray
    plus_values: np.ndarray
    minus_values: np.ndarray


class FusedKernel:
    """Per-code classifier turning packed error batches into statistics.

    Construction reads only the code's cached artefacts (decode-action
    table, fold tables, column integers); :func:`get_kernel` memoizes one
    kernel per code object.
    """

    def __init__(self, code: SystematicLinearCode):
        self._code = code
        self._n = code.codeword_length
        self._k = code.num_data_bits
        self._num_bytes = (self._n + 7) // 8
        self._action_table = code.decode_action_table()
        self._column_ints = np.asarray(code.column_ints, dtype=np.int64)
        self._correctable = 0 if code.detect_only else 1
        # Tiny-r codes take the AND/XOR-parity route; everything else folds.
        if code.num_parity_bits <= 2:
            self._tiny_h_lanes: Optional[np.ndarray] = code.packed_h_lanes()
            self._fold_table: Optional[np.ndarray] = None
        else:
            self._tiny_h_lanes = None
            self._fold_table = code.syndrome_fold_table()
        self._subset_tables: Dict[bytes, _SubsetTables] = {}

    @property
    def code(self) -> SystematicLinearCode:
        """The code this kernel classifies for."""
        return self._code

    # -- public API -------------------------------------------------------
    def classify(self, batch: PackedErrorBatch) -> FusedStats:
        """Classify one batch as a single segment."""
        return self.classify_segments(batch, (batch.num_words,))[0]

    def classify_segments(
        self, batch: PackedErrorBatch, segment_words: Sequence[int]
    ) -> List[FusedStats]:
        """Classify a batch whose words form consecutive segments.

        ``segment_words`` are per-segment word counts summing to
        ``batch.num_words`` (e.g. one segment per profile pattern or per
        campaign chunk); one kernel pass serves them all.
        """
        segment_words = [int(count) for count in segment_words]
        if any(count < 0 for count in segment_words) or sum(
            segment_words
        ) != batch.num_words:
            raise DimensionError(
                f"segment word counts {segment_words} do not partition "
                f"{batch.num_words} words"
            )
        if batch.num_bits != self._n:
            raise DimensionError(
                f"batch carries {batch.num_bits}-bit masks, code expects "
                f"{self._n}"
            )
        start = time.perf_counter() if TRACER.enabled else 0.0
        if batch.kind == "subset":
            results = self._classify_subset(batch, segment_words)
        else:
            results = self._classify_per_word(batch, segment_words)
        if TRACER.enabled:
            seconds = time.perf_counter() - start
            due_words = sum(stats.detected_words for stats in results)
            TRACER.add("einsim.fused.batches")
            TRACER.add("einsim.fused.words", batch.num_words)
            TRACER.add("einsim.fused.due_words", due_words)
            TRACER.add("einsim.fused.classify_s", seconds)
            TRACER.event(
                "einsim.fused.classify",
                {
                    "kind": batch.kind,
                    "words": batch.num_words,
                    "segments": len(segment_words),
                    "due_words": due_words,
                    "seconds": seconds,
                },
            )
        return results

    # -- dense / sparse ---------------------------------------------------
    def _classify_per_word(
        self, batch: PackedErrorBatch, segment_words: List[int]
    ) -> List[FusedStats]:
        if batch.kind == "lanes":
            lanes = batch.lanes
            assert lanes is not None
            mask_bytes = lanes_to_bytes(lanes, self._n)
            syndromes, err_counts = self._dense_syndromes(lanes, mask_bytes)
            actions = self._action_table[syndromes]
            flip_rows = np.flatnonzero(actions >= 0)
            acts = actions[flip_rows]
            mask_at_action = (
                (
                    lanes[flip_rows, acts // LANE_BITS]
                    >> (acts % LANE_BITS).astype(np.uint64)
                )
                & np.uint64(1)
            ) != 0

            def pre_counts(lo: int, hi: int) -> np.ndarray:
                return packed_column_counts(mask_bytes[lo:hi], self._n)

        else:
            positions, fires = batch.positions, batch.fires
            assert positions is not None and fires is not None
            syndromes = np.zeros(batch.num_words, dtype=np.int64)
            for j in range(positions.shape[1]):
                syndromes ^= np.where(
                    fires[:, j], self._column_ints[positions[:, j]], 0
                )
            err_counts = fires.sum(axis=1, dtype=np.int64)
            actions = self._action_table[syndromes]
            flip_rows = np.flatnonzero(actions >= 0)
            acts = actions[flip_rows]
            if flip_rows.size:
                mask_at_action = (
                    (positions[flip_rows] == acts[:, np.newaxis])
                    & fires[flip_rows]
                ).any(axis=1)
            else:
                mask_at_action = np.zeros(0, dtype=bool)

            def pre_counts(lo: int, hi: int) -> np.ndarray:
                fired = fires[lo:hi]
                return np.bincount(
                    positions[lo:hi][fired], minlength=self._n
                ).astype(np.int64)

        return self._aggregate_segments(
            segment_words, actions, err_counts, flip_rows, acts,
            mask_at_action, pre_counts,
        )

    def _dense_syndromes(
        self, lanes: np.ndarray, mask_bytes: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        err_counts = popcount_u64(lanes).sum(axis=1, dtype=np.int64)
        if self._tiny_h_lanes is not None:
            # Check bit = parity of the masked word: XOR the masked lanes
            # together, popcount the accumulator, take it mod 2.
            syndromes = np.zeros(lanes.shape[0], dtype=np.int64)
            for row in range(self._tiny_h_lanes.shape[0]):
                masked = lanes & self._tiny_h_lanes[row]
                folded = masked[:, 0]
                for lane in range(1, masked.shape[1]):
                    folded = folded ^ masked[:, lane]
                syndromes |= (
                    popcount_u64(folded).astype(np.int64) & 1
                ) << row
            return syndromes, err_counts
        assert self._fold_table is not None
        if native_available() and lanes.shape[0] >= _NATIVE_MIN_WORDS:
            return fold_classify_native(mask_bytes, self._fold_table), err_counts
        return fold_bytes(self._fold_table, mask_bytes), err_counts

    def _aggregate_segments(
        self,
        segment_words: List[int],
        actions: np.ndarray,
        err_counts: np.ndarray,
        flip_rows: np.ndarray,
        acts: np.ndarray,
        mask_at_action: np.ndarray,
        pre_counts,
    ) -> List[FusedStats]:
        results: List[FusedStats] = []
        offset = 0
        for count in segment_words:
            lo, hi = offset, offset + count
            offset = hi
            seg_actions = actions[lo:hi]
            lo_i, hi_i = np.searchsorted(flip_rows, (lo, hi))
            seg_acts = acts[lo_i:hi_i]
            seg_hit = mask_at_action[lo_i:hi_i]
            pre = pre_counts(lo, hi)
            post = pre[: self._k].copy()
            data_sel = seg_acts < self._k
            plus = seg_acts[data_sel & ~seg_hit]
            minus = seg_acts[data_sel & seg_hit]
            if plus.size:
                post += np.bincount(plus, minlength=self._k)
            if minus.size:
                post -= np.bincount(minus, minlength=self._k)
            results.append(
                FusedStats(
                    num_words=count,
                    pre_correction_error_counts=pre,
                    post_correction_error_counts=post,
                    uncorrectable_words=int(
                        (err_counts[lo:hi] > self._correctable).sum()
                    ),
                    miscorrected_words=int((~seg_hit).sum()),
                    detected_words=int(
                        (seg_actions == SystematicLinearCode.ACTION_DETECT).sum()
                    ),
                    miscorrection_positions=tuple(
                        int(p) for p in np.unique(plus)
                    ),
                )
            )
        return results

    # -- subset histogram -------------------------------------------------
    def _classify_subset(
        self, batch: PackedErrorBatch, segment_words: List[int]
    ) -> List[FusedStats]:
        candidates, subsets = batch.candidates, batch.subsets
        assert candidates is not None and subsets is not None
        tables = self._tables_for(candidates)
        size = 1 << candidates.size
        results: List[FusedStats] = []
        offset = 0
        for count in segment_words:
            histogram = np.bincount(subsets[offset : offset + count], minlength=size)
            offset += count
            pre = np.zeros(self._n, dtype=np.int64)
            pre[candidates] = histogram @ tables.bit_matrix
            post = pre[: self._k].copy()
            plus_hist = histogram[tables.plus_values]
            np.add.at(post, tables.plus_targets, plus_hist)
            np.subtract.at(
                post, tables.minus_targets, histogram[tables.minus_values]
            )
            results.append(
                FusedStats(
                    num_words=count,
                    pre_correction_error_counts=pre,
                    post_correction_error_counts=post,
                    uncorrectable_words=int(histogram @ tables.too_many),
                    miscorrected_words=int(histogram @ tables.miscorrect),
                    detected_words=int(histogram @ tables.detect),
                    miscorrection_positions=tuple(
                        int(p)
                        for p in np.unique(tables.plus_targets[plus_hist > 0])
                    ),
                )
            )
        return results

    def _tables_for(self, candidates: np.ndarray) -> _SubsetTables:
        key = candidates.tobytes()
        cached = self._subset_tables.get(key)
        if cached is not None:
            return cached
        width = candidates.size
        size = 1 << width
        syndrome = np.zeros(size, dtype=np.int64)
        candidate_cols = self._column_ints[candidates]
        for j in range(width):
            block = 1 << j
            syndrome[block : 2 * block] = syndrome[:block] ^ candidate_cols[j]
        counts = popcount_u64(np.arange(size, dtype=np.uint64)).astype(np.int64)
        act = self._action_table[syndrome]
        vbits = ((np.arange(size)[:, np.newaxis] >> np.arange(width)) & 1) != 0
        hit = np.zeros(size, dtype=bool)
        for j in range(width):
            hit |= (act == candidates[j]) & vbits[:, j]
        miscorrect = (act >= 0) & ~hit
        plus = miscorrect & (act < self._k)
        minus = (act >= 0) & hit & (act < self._k)
        tables = _SubsetTables(
            detect=(act == SystematicLinearCode.ACTION_DETECT).astype(np.int64),
            too_many=(counts > self._correctable).astype(np.int64),
            miscorrect=miscorrect.astype(np.int64),
            bit_matrix=vbits.astype(np.int64),
            plus_targets=act[plus],
            minus_targets=act[minus],
            plus_values=np.flatnonzero(plus),
            minus_values=np.flatnonzero(minus),
        )
        self._subset_tables[key] = tables
        return tables


def get_kernel(code: SystematicLinearCode) -> FusedKernel:
    """Return the memoized :class:`FusedKernel` for a code object."""
    kernel = getattr(code, "_fused_kernel", None)
    if kernel is None or kernel.code is not code:
        kernel = FusedKernel(code)
        code._fused_kernel = kernel  # type: ignore[attr-defined]
    return kernel
