"""Batched encode / syndrome / decode kernels with selectable backends.

Every bulk operation in the library funnels through this module.  Two
backends implement each kernel:

* ``"reference"`` — the original one-bit-per-``uint8`` arithmetic (integer
  matmuls mod 2).  Simple, slow, and the oracle the differential test suite
  measures everything against.
* ``"packed"`` — words bit-packed with :mod:`repro.gf2.bitpack` machinery:
  each batch is packed eight columns per byte and folded through cached
  per-byte XOR tables (:func:`repro.gf2.bitpack.byte_fold_table`), turning
  the per-word syndrome into a handful of table lookups; an order of
  magnitude faster than the reference on realistic code sizes.  Codes with
  one or two parity bits skip the fold tables for a direct AND/XOR-parity
  reduction, which is faster at that scale.
* ``"fused"`` — identical to ``"packed"`` for the staged kernels in this
  module; at the simulation level it additionally routes whole Monte-Carlo
  rounds through :mod:`repro.einsim.fused`, which classifies packed error
  masks without ever materializing codeword batches.

All backends are bit-exact: for any code, any batch and any input, they
return identical arrays (``tests/test_differential_backends.py``,
``tests/test_differential_families.py`` and
``tests/test_differential_fused.py`` enforce this).  Per-code artefacts
(syndrome lookup table, decode-action table, transposed ``H``, packed rows)
are built once and cached on the code object itself.

Decoding is family-aware: each code's cached *decode-action table*
(:meth:`~repro.ecc.code.SystematicLinearCode.decode_action_table`) encodes,
per syndrome, whether to flip a bit, do nothing, or **detect without
flipping** — the detected-uncorrectable (DUE) path of SEC-DED double errors
and detect-only families.  :func:`bulk_decode_outcomes` additionally returns
the per-word DUE mask.
"""

from __future__ import annotations

import time
from typing import Tuple

import numpy as np

from repro.exceptions import DimensionError, ValidationError
from repro.gf2.bitpack import bytes_to_lanes, fold_bytes, popcount_u64
from repro.obs import TRACER
from repro.ecc.code import SystematicLinearCode

#: The valid values of every ``backend=`` selector in the library.
#: ``"fused"`` shares the packed staged kernels below; its distinguishing
#: behaviour — classifying whole Monte-Carlo rounds without materializing
#: codeword batches — lives in :mod:`repro.einsim.fused` and engages at the
#: simulation level (:class:`repro.einsim.simulator.EinsimSimulator`,
#: :func:`repro.core.profile.monte_carlo_observation_counts`,
#: :class:`repro.core.experiment.MonteCarloCampaign`).
BACKENDS: Tuple[str, ...] = ("reference", "packed", "fused")

#: Backend used when callers pass ``"auto"``.  Stays ``"packed"``: the fused
#: path is opt-in so store keys, committed baselines and obs counters keep
#: their historical meaning; every backend is bit-identical regardless.
DEFAULT_BACKEND = "packed"

#: Parity-bit count at or below which the packed syndrome kernel skips the
#: byte-fold tables: with one or two check rows an AND + XOR-reduce per row
#: beats per-byte table gathers (the parity-detect regression fix).
_TINY_SYNDROME_PARITY_BITS = 2


def resolve_backend(backend: str) -> str:
    """Validate a backend name, resolving ``"auto"`` to the fast path."""
    if backend == "auto":
        return DEFAULT_BACKEND
    if backend not in BACKENDS:
        raise ValidationError(
            f"unknown backend {backend!r}; expected one of {BACKENDS + ('auto',)}"
        )
    return backend


def _validate_batch(
    array: np.ndarray, expected_cols: int, what: str
) -> np.ndarray:
    array = np.asarray(array, dtype=np.uint8)
    if array.ndim != 2 or array.shape[1] != expected_cols:
        raise DimensionError(
            f"expected {what} of shape (*, {expected_cols}), got {array.shape}"
        )
    return array


def bulk_encode(
    code: SystematicLinearCode, datawords: np.ndarray, backend: str = "reference"
) -> np.ndarray:
    """Encode a batch of datawords (rows) into codewords ``[d | p]``."""
    backend = resolve_backend(backend)
    data = _validate_batch(datawords, code.num_data_bits, "dataword array")
    if backend != "reference":
        parity_values = fold_bytes(
            code.parity_fold_table(), np.packbits(data, axis=1, bitorder="little")
        )
        shifts = np.arange(code.num_parity_bits, dtype=np.int64)
        parity = ((parity_values[:, np.newaxis] >> shifts) & 1).astype(np.uint8)
    else:
        # P.T is the first k rows of the cached H.T (H = [P | I]).
        p_transpose = code.h_transpose_int64()[: code.num_data_bits]
        parity = ((data.astype(np.int64) @ p_transpose) % 2).astype(np.uint8)
    return np.hstack([data, parity])


def bulk_syndrome_values(
    code: SystematicLinearCode, received: np.ndarray, backend: str = "reference"
) -> np.ndarray:
    """Return the integer syndrome of every received codeword (row)."""
    backend = resolve_backend(backend)
    words = _validate_batch(received, code.codeword_length, "codeword array")
    if backend != "reference":
        packed = np.packbits(words, axis=1, bitorder="little")
        if code.num_parity_bits <= _TINY_SYNDROME_PARITY_BITS:
            # Tiny-r fast path: each check bit is the parity of the masked
            # word — XOR the masked uint64 lanes together and take the
            # accumulator's popcount mod 2.  Cheaper than building and
            # gathering a (bytes, 256) fold table for one or two rows.
            lanes = bytes_to_lanes(packed, code.codeword_length)
            h_lanes = code.packed_h_lanes()
            values = np.zeros(packed.shape[0], dtype=np.int64)
            for row in range(code.num_parity_bits):
                masked = lanes & h_lanes[row]
                folded = masked[:, 0]
                for lane in range(1, masked.shape[1]):
                    folded = folded ^ masked[:, lane]
                values |= (popcount_u64(folded).astype(np.int64) & 1) << row
            return values
        return fold_bytes(code.syndrome_fold_table(), packed)
    syndromes = (words.astype(np.int64) @ code.h_transpose_int64()) % 2
    return syndromes @ code.syndrome_weights()


def bulk_decode(
    code: SystematicLinearCode, received: np.ndarray, backend: str = "reference"
) -> np.ndarray:
    """Syndrome-decode a batch of codewords (rows of ``received``) at once.

    Mirrors :class:`repro.ecc.decoder.SyndromeDecoder` exactly, including the
    code's family decode policy: for correcting families the bit the syndrome
    points at (lowest matching column of ``H``, zero syndrome → no
    correction) is flipped in every word; detect-only families never flip.
    """
    return bulk_decode_outcomes(code, received, backend)[0]


def bulk_decode_outcomes(
    code: SystematicLinearCode, received: np.ndarray, backend: str = "reference"
) -> Tuple[np.ndarray, np.ndarray]:
    """Decode a batch and also report the per-word DUE mask.

    Returns ``(corrected, due)`` where ``due[i]`` is True when word ``i``'s
    syndrome was non-zero but nothing was flipped — the decoder *detected* an
    uncorrectable error (shortened-code syndrome miss, SEC-DED double error,
    or any non-zero syndrome under a detect-only policy).  Both backends
    produce bit-identical arrays: they share the cached decode-action table
    and differ only in how the syndrome integers are computed.
    """
    backend = resolve_backend(backend)
    words = _validate_batch(received, code.codeword_length, "codeword array")
    # One branch while disabled: the decode hot path stays unmeasurably
    # close to the uninstrumented code.
    batch_start = time.perf_counter() if TRACER.enabled else 0.0
    values = bulk_syndrome_values(code, words, backend)
    actions = code.decode_action_table()[values]
    rows = np.flatnonzero(actions >= 0)
    if rows.size:
        corrected = words.copy()
        corrected[rows, actions[rows]] ^= 1
    else:
        # No action flips a bit (detect-only family, or every syndrome is
        # zero/DUE): the input already is the decode result.  Returning it
        # uncopied skips the dominant allocation of detect-only batches;
        # callers treat the result as read-only either way.
        corrected = words
    due = actions == SystematicLinearCode.ACTION_DETECT
    if TRACER.enabled:
        seconds = time.perf_counter() - batch_start
        num_words = int(words.shape[0])
        due_words = int(np.count_nonzero(due))
        TRACER.add("einsim.decode_batches")
        TRACER.add("einsim.words_decoded", num_words)
        TRACER.add("einsim.due_words", due_words)
        TRACER.add("einsim.decode_s", seconds)
        TRACER.event(
            "einsim.decode_batch",
            {
                "backend": backend,
                "words": num_words,
                "due_words": due_words,
                "seconds": seconds,
                "words_per_s": num_words / seconds if seconds > 0 else 0.0,
                "codeword_length": code.codeword_length,
            },
        )
    return corrected, due
