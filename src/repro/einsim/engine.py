"""Batched encode / syndrome / decode kernels with selectable backends.

Every bulk operation in the library funnels through this module.  Two
backends implement each kernel:

* ``"reference"`` — the original one-bit-per-``uint8`` arithmetic (integer
  matmuls mod 2).  Simple, slow, and the oracle the differential test suite
  measures everything against.
* ``"packed"`` — words bit-packed with :mod:`repro.gf2.bitpack` machinery:
  each batch is packed eight columns per byte and folded through cached
  per-byte XOR tables (:func:`repro.gf2.bitpack.byte_fold_table`), turning
  the per-word syndrome into a handful of table lookups; an order of
  magnitude faster than the reference on realistic code sizes.

Both backends are bit-exact: for any code, any batch and any input, they
return identical arrays (``tests/test_differential_backends.py`` and
``tests/test_differential_families.py`` enforce this).  Per-code artefacts
(syndrome lookup table, decode-action table, transposed ``H``, packed rows)
are built once and cached on the code object itself.

Decoding is family-aware: each code's cached *decode-action table*
(:meth:`~repro.ecc.code.SystematicLinearCode.decode_action_table`) encodes,
per syndrome, whether to flip a bit, do nothing, or **detect without
flipping** — the detected-uncorrectable (DUE) path of SEC-DED double errors
and detect-only families.  :func:`bulk_decode_outcomes` additionally returns
the per-word DUE mask.
"""

from __future__ import annotations

import time
from typing import Tuple

import numpy as np

from repro.exceptions import DimensionError, ValidationError
from repro.gf2.bitpack import fold_bytes
from repro.obs import TRACER
from repro.ecc.code import SystematicLinearCode

#: The valid values of every ``backend=`` selector in the library.
BACKENDS: Tuple[str, ...] = ("reference", "packed")

#: Backend used when callers pass ``"auto"``.
DEFAULT_BACKEND = "packed"


def resolve_backend(backend: str) -> str:
    """Validate a backend name, resolving ``"auto"`` to the fast path."""
    if backend == "auto":
        return DEFAULT_BACKEND
    if backend not in BACKENDS:
        raise ValidationError(
            f"unknown backend {backend!r}; expected one of {BACKENDS + ('auto',)}"
        )
    return backend


def _validate_batch(
    array: np.ndarray, expected_cols: int, what: str
) -> np.ndarray:
    array = np.asarray(array, dtype=np.uint8)
    if array.ndim != 2 or array.shape[1] != expected_cols:
        raise DimensionError(
            f"expected {what} of shape (*, {expected_cols}), got {array.shape}"
        )
    return array


def bulk_encode(
    code: SystematicLinearCode, datawords: np.ndarray, backend: str = "reference"
) -> np.ndarray:
    """Encode a batch of datawords (rows) into codewords ``[d | p]``."""
    backend = resolve_backend(backend)
    data = _validate_batch(datawords, code.num_data_bits, "dataword array")
    if backend == "packed":
        parity_values = fold_bytes(
            code.parity_fold_table(), np.packbits(data, axis=1, bitorder="little")
        )
        shifts = np.arange(code.num_parity_bits, dtype=np.int64)
        parity = ((parity_values[:, np.newaxis] >> shifts) & 1).astype(np.uint8)
    else:
        # P.T is the first k rows of the cached H.T (H = [P | I]).
        p_transpose = code.h_transpose_int64()[: code.num_data_bits]
        parity = ((data.astype(np.int64) @ p_transpose) % 2).astype(np.uint8)
    return np.hstack([data, parity])


def bulk_syndrome_values(
    code: SystematicLinearCode, received: np.ndarray, backend: str = "reference"
) -> np.ndarray:
    """Return the integer syndrome of every received codeword (row)."""
    backend = resolve_backend(backend)
    words = _validate_batch(received, code.codeword_length, "codeword array")
    if backend == "packed":
        return fold_bytes(
            code.syndrome_fold_table(), np.packbits(words, axis=1, bitorder="little")
        )
    syndromes = (words.astype(np.int64) @ code.h_transpose_int64()) % 2
    return syndromes @ code.syndrome_weights()


def bulk_decode(
    code: SystematicLinearCode, received: np.ndarray, backend: str = "reference"
) -> np.ndarray:
    """Syndrome-decode a batch of codewords (rows of ``received``) at once.

    Mirrors :class:`repro.ecc.decoder.SyndromeDecoder` exactly, including the
    code's family decode policy: for correcting families the bit the syndrome
    points at (lowest matching column of ``H``, zero syndrome → no
    correction) is flipped in every word; detect-only families never flip.
    """
    return bulk_decode_outcomes(code, received, backend)[0]


def bulk_decode_outcomes(
    code: SystematicLinearCode, received: np.ndarray, backend: str = "reference"
) -> Tuple[np.ndarray, np.ndarray]:
    """Decode a batch and also report the per-word DUE mask.

    Returns ``(corrected, due)`` where ``due[i]`` is True when word ``i``'s
    syndrome was non-zero but nothing was flipped — the decoder *detected* an
    uncorrectable error (shortened-code syndrome miss, SEC-DED double error,
    or any non-zero syndrome under a detect-only policy).  Both backends
    produce bit-identical arrays: they share the cached decode-action table
    and differ only in how the syndrome integers are computed.
    """
    backend = resolve_backend(backend)
    words = _validate_batch(received, code.codeword_length, "codeword array")
    # One branch while disabled: the decode hot path stays unmeasurably
    # close to the uninstrumented code.
    batch_start = time.perf_counter() if TRACER.enabled else 0.0
    values = bulk_syndrome_values(code, words, backend)
    actions = code.decode_action_table()[values]
    corrected = words.copy()
    rows = np.flatnonzero(actions >= 0)
    corrected[rows, actions[rows]] ^= 1
    due = actions == SystematicLinearCode.ACTION_DETECT
    if TRACER.enabled:
        seconds = time.perf_counter() - batch_start
        num_words = int(words.shape[0])
        due_words = int(np.count_nonzero(due))
        TRACER.add("einsim.decode_batches")
        TRACER.add("einsim.words_decoded", num_words)
        TRACER.add("einsim.due_words", due_words)
        TRACER.add("einsim.decode_s", seconds)
        TRACER.event(
            "einsim.decode_batch",
            {
                "backend": backend,
                "words": num_words,
                "due_words": due_words,
                "seconds": seconds,
                "words_per_s": num_words / seconds if seconds > 0 else 0.0,
                "codeword_length": code.codeword_length,
            },
        )
    return corrected, due
