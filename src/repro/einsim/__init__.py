"""EINSim-equivalent ECC-word error-injection simulator.

The paper evaluates BEER and BEEP with EINSim, the authors' open-source DRAM
error-correction simulator.  This package provides the equivalent Monte-Carlo
machinery in Python:

* :mod:`repro.einsim.injectors` — pre-correction error models (uniform-random
  bit errors, data-retention errors restricted to CHARGED cells, fixed error
  counts, arbitrary per-bit probabilities);
* :mod:`repro.einsim.engine` — batched encode/syndrome/decode kernels with
  selectable GF(2) backends (``reference`` uint8 oracle, ``packed`` uint64
  bit-packed fast path, ``fused`` whole-round pipeline);
* :mod:`repro.einsim.fused` — the fused Monte-Carlo pipeline: packed error
  batches, per-code classification kernels, segmented cross-pattern calls;
* :mod:`repro.einsim.simulator` — vectorised simulation of large numbers of
  ECC words through encode → inject → decode, with per-bit post-correction
  statistics and miscorrection bookkeeping;
* :mod:`repro.einsim.statistics` — bootstrap confidence intervals and summary
  helpers used when reproducing the paper's figures.
"""

from repro.einsim.injectors import (
    BurstErrorInjector,
    CompositeInjector,
    DataRetentionInjector,
    FaultModelInjector,
    FixedErrorCountInjector,
    MixedCellRetentionInjector,
    PerBitBernoulliInjector,
    RowStripeInjector,
    UniformRandomInjector,
)
from repro.einsim.engine import (
    BACKENDS,
    bulk_decode,
    bulk_encode,
    bulk_syndrome_values,
    resolve_backend,
)
from repro.einsim.fused import (
    FusedKernel,
    FusedStats,
    PackedErrorBatch,
    get_kernel,
    packed_error_batch,
)
from repro.einsim.simulator import EinsimSimulator, SimulationResult
from repro.einsim.statistics import (
    bootstrap_confidence_interval,
    BootstrapInterval,
    relative_probabilities,
)

__all__ = [
    "BurstErrorInjector",
    "CompositeInjector",
    "DataRetentionInjector",
    "FaultModelInjector",
    "FixedErrorCountInjector",
    "MixedCellRetentionInjector",
    "PerBitBernoulliInjector",
    "RowStripeInjector",
    "UniformRandomInjector",
    "EinsimSimulator",
    "SimulationResult",
    "BACKENDS",
    "bulk_decode",
    "bulk_encode",
    "bulk_syndrome_values",
    "resolve_backend",
    "FusedKernel",
    "FusedStats",
    "PackedErrorBatch",
    "get_kernel",
    "packed_error_batch",
    "bootstrap_confidence_interval",
    "BootstrapInterval",
    "relative_probabilities",
]
