"""Vectorised Monte-Carlo simulation of ECC words (the EINSim role).

The simulator takes a code, a dataword (test pattern), an error injector and a
word count; it encodes, injects pre-correction errors, decodes, and reports
per-bit post-correction error statistics plus the miscorrection bookkeeping
that BEER and BEEP need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set, Tuple

import numpy as np

from repro.exceptions import DimensionError
from repro.gf2 import GF2Vector
from repro.ecc.code import SystematicLinearCode
from repro.einsim.engine import bulk_decode_outcomes, bulk_encode, resolve_backend
from repro.einsim.fused import FusedStats, get_kernel, packed_error_batch


@dataclass
class SimulationResult:
    """Aggregate outcome of simulating many ECC words with one test pattern."""

    #: The dataword that was written to every simulated word.
    dataword: GF2Vector
    #: Number of ECC words simulated.
    num_words: int
    #: Per-data-bit count of post-correction errors (length ``k``).
    post_correction_error_counts: np.ndarray
    #: Per-codeword-bit count of injected pre-correction errors (length ``n``).
    pre_correction_error_counts: np.ndarray
    #: Number of words whose injected error pattern was uncorrectable.
    uncorrectable_words: int
    #: Number of words in which the decoder flipped a non-erroneous bit.
    miscorrected_words: int
    #: Data-bit positions where a miscorrection was observed at least once.
    miscorrection_positions: Tuple[int, ...]
    #: Number of words the decoder flagged as detected-uncorrectable (DUE):
    #: non-zero syndrome, nothing flipped.  Always 0 for full-length SEC
    #: codes; the load-bearing signal for SEC-DED and detect-only families.
    detected_words: int = 0

    @property
    def post_correction_error_probabilities(self) -> np.ndarray:
        """Per-data-bit post-correction error probability."""
        return self.post_correction_error_counts / max(self.num_words, 1)

    @property
    def pre_correction_error_probabilities(self) -> np.ndarray:
        """Per-codeword-bit pre-correction error probability."""
        return self.pre_correction_error_counts / max(self.num_words, 1)

    def merge(self, other: "SimulationResult") -> "SimulationResult":
        """Combine two results for the same dataword (used by chunked runs)."""
        if self.dataword != other.dataword:
            raise DimensionError("cannot merge results for different datawords")
        return SimulationResult(
            dataword=self.dataword,
            num_words=self.num_words + other.num_words,
            post_correction_error_counts=(
                self.post_correction_error_counts + other.post_correction_error_counts
            ),
            pre_correction_error_counts=(
                self.pre_correction_error_counts + other.pre_correction_error_counts
            ),
            uncorrectable_words=self.uncorrectable_words + other.uncorrectable_words,
            miscorrected_words=self.miscorrected_words + other.miscorrected_words,
            miscorrection_positions=tuple(
                sorted(
                    set(self.miscorrection_positions)
                    | set(other.miscorrection_positions)
                )
            ),
            detected_words=self.detected_words + other.detected_words,
        )


class EinsimSimulator:
    """Monte-Carlo ECC-word simulator for a fixed code.

    ``backend`` selects the GF(2) kernels used for the batched decode:
    ``"reference"`` (uint8 oracle), ``"packed"`` (uint64 bit-packed fast
    path) or ``"auto"``.  Both produce bit-identical results for the same
    seed.
    """

    def __init__(
        self,
        code: SystematicLinearCode,
        seed: Optional[int] = None,
        backend: str = "reference",
    ):
        self._code = code
        self._rng = np.random.default_rng(seed)
        self._backend = resolve_backend(backend)

    @property
    def code(self) -> SystematicLinearCode:
        """The code under simulation."""
        return self._code

    @property
    def backend(self) -> str:
        """The GF(2) kernel backend in use."""
        return self._backend

    def simulate(
        self,
        dataword,
        num_words: int,
        injector,
        batch_size: int = 65536,
    ) -> SimulationResult:
        """Simulate ``num_words`` ECC words storing ``dataword`` with ``injector`` errors."""
        data_bits = _as_dataword(dataword, self._code.num_data_bits)
        codeword = bulk_encode(self._code, data_bits.reshape(1, -1), self._backend)[0]
        if self._backend == "fused":
            return self._simulate_fused(
                data_bits, codeword, num_words, injector, batch_size
            )
        codeword_length = self._code.codeword_length
        num_data_bits = self._code.num_data_bits

        post_counts = np.zeros(num_data_bits, dtype=np.int64)
        pre_counts = np.zeros(codeword_length, dtype=np.int64)
        uncorrectable = 0
        miscorrected = 0
        detected = 0
        miscorrection_positions: Set[int] = set()

        remaining = num_words
        while remaining > 0:
            batch = min(batch_size, remaining)
            remaining -= batch
            stored = np.tile(codeword, (batch, 1))
            mask = injector.error_mask(stored, self._rng)
            received = np.bitwise_xor(stored, mask.astype(np.uint8))
            corrected, due = bulk_decode_outcomes(self._code, received, self._backend)
            detected += int(due.sum())

            pre_counts += mask.sum(axis=0)
            data_errors = corrected[:, :num_data_bits] != stored[:, :num_data_bits]
            post_counts += data_errors.sum(axis=0)

            error_counts = mask.sum(axis=1)
            # A correcting family handles exactly one raw error; a detect-only
            # family corrects none, so any injected error is uncorrectable.
            correctable_errors = 0 if self._code.detect_only else 1
            uncorrectable += int((error_counts > correctable_errors).sum())

            flipped = corrected != received
            miscorrection_mask = flipped & ~mask
            miscorrected += int(miscorrection_mask.any(axis=1).sum())
            observed = np.flatnonzero(miscorrection_mask[:, :num_data_bits].any(axis=0))
            miscorrection_positions.update(int(i) for i in observed)

        return SimulationResult(
            dataword=GF2Vector(data_bits),
            num_words=num_words,
            post_correction_error_counts=post_counts,
            pre_correction_error_counts=pre_counts,
            uncorrectable_words=uncorrectable,
            miscorrected_words=miscorrected,
            miscorrection_positions=tuple(sorted(miscorrection_positions)),
            detected_words=detected,
        )

    def _simulate_fused(
        self,
        data_bits: np.ndarray,
        codeword: np.ndarray,
        num_words: int,
        injector,
        batch_size: int,
    ) -> SimulationResult:
        """The fused round: inject packed, classify, never tile codewords.

        Bit-identical to the staged loop for any injector and seed — the
        packed injector protocol consumes the RNG stream in the same order,
        and the fused kernel computes the same statistics from the masks
        alone (``tests/test_differential_fused.py``).
        """
        kernel = get_kernel(self._code)
        stats = FusedStats.zero(self._code.codeword_length, self._code.num_data_bits)
        remaining = num_words
        while remaining > 0:
            batch = min(batch_size, remaining)
            remaining -= batch
            masks = packed_error_batch(injector, codeword, batch, self._rng)
            stats = stats.merge(kernel.classify(masks))
        return SimulationResult(
            dataword=GF2Vector(data_bits),
            num_words=num_words,
            post_correction_error_counts=stats.post_correction_error_counts,
            pre_correction_error_counts=stats.pre_correction_error_counts,
            uncorrectable_words=stats.uncorrectable_words,
            miscorrected_words=stats.miscorrected_words,
            miscorrection_positions=stats.miscorrection_positions,
            detected_words=stats.detected_words,
        )

    def per_bit_error_probability(
        self, dataword, num_words: int, injector
    ) -> np.ndarray:
        """Convenience wrapper returning only per-data-bit error probabilities."""
        return self.simulate(dataword, num_words, injector).post_correction_error_probabilities


def _as_dataword(dataword, expected_length: int) -> np.ndarray:
    if isinstance(dataword, GF2Vector):
        bits = dataword.to_numpy()
    else:
        bits = np.asarray(dataword, dtype=np.uint8) % 2
    if bits.ndim != 1 or bits.shape[0] != expected_length:
        raise DimensionError(
            f"dataword must have exactly {expected_length} bits, got shape {bits.shape}"
        )
    return bits.astype(np.uint8)
