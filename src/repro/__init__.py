"""repro — a reproduction of BEER (Bit-Exact ECC Recovery), MICRO 2020.

BEER determines a DRAM chip's on-die ECC function (its parity-check matrix)
purely from externally visible post-correction error patterns, by inducing
data-retention errors with carefully crafted test patterns and solving for the
unique code consistent with the observed miscorrections.  BEEP then uses the
recovered function to locate pre-correction errors bit-exactly.

Quick start::

    from repro import (
        random_hamming_code, one_charged_patterns,
        expected_miscorrection_profile, BeerSolver,
    )

    code = random_hamming_code(16)                       # unknown on-die ECC
    patterns = one_charged_patterns(code.num_data_bits)  # BEER test patterns
    profile = expected_miscorrection_profile(code, patterns)
    solution = BeerSolver(code.num_data_bits).solve(profile)
    assert solution.unique and solution.code == code

See the ``examples/`` directory for end-to-end campaigns against simulated
DRAM chips and for BEEP-based error profiling.
"""

from repro.gf2 import GF2Matrix, GF2Vector
from repro.ecc import (
    FAMILY_NAMES,
    CodeFamily,
    DecodeOutcome,
    SyndromeDecoder,
    SystematicLinearCode,
    classify_decode,
    codes_equivalent,
    example_7_4_code,
    family_names,
    get_family,
    hamming_code,
    min_parity_bits,
    random_hamming_code,
)
from repro.dram import (
    CellType,
    ChipGeometry,
    DataRetentionModel,
    SimulatedDramChip,
    VENDOR_A,
    VENDOR_B,
    VENDOR_C,
    all_vendors,
)
from repro.einsim import EinsimSimulator, UniformRandomInjector, DataRetentionInjector
from repro.sat import CNF, CDCLSolver, solve as sat_solve
from repro.scenarios import (
    ExperimentCell,
    SweepReport,
    SweepRunner,
    SweepSpec,
    build_injector,
    scenario_names,
)
from repro.store import CampaignStore, ResultRecord, content_key
from repro.core import (
    BeepProfiler,
    BeepResult,
    BeerExperiment,
    BeerSolution,
    BeerSolver,
    ChargedPattern,
    ExperimentConfig,
    MiscorrectionCounts,
    MiscorrectionProfile,
    SatBeerSolver,
    charged_patterns,
    discover_cell_types,
    discover_dataword_layout,
    expected_miscorrection_profile,
    miscorrections_possible,
    one_charged_patterns,
)

__version__ = "1.0.0"

__all__ = [
    "GF2Matrix",
    "GF2Vector",
    "FAMILY_NAMES",
    "CodeFamily",
    "DecodeOutcome",
    "SyndromeDecoder",
    "SystematicLinearCode",
    "classify_decode",
    "codes_equivalent",
    "example_7_4_code",
    "family_names",
    "get_family",
    "hamming_code",
    "min_parity_bits",
    "random_hamming_code",
    "CellType",
    "ChipGeometry",
    "DataRetentionModel",
    "SimulatedDramChip",
    "VENDOR_A",
    "VENDOR_B",
    "VENDOR_C",
    "all_vendors",
    "EinsimSimulator",
    "UniformRandomInjector",
    "DataRetentionInjector",
    "CNF",
    "CDCLSolver",
    "sat_solve",
    "BeepProfiler",
    "BeepResult",
    "BeerExperiment",
    "BeerSolution",
    "BeerSolver",
    "ChargedPattern",
    "ExperimentConfig",
    "MiscorrectionCounts",
    "MiscorrectionProfile",
    "SatBeerSolver",
    "charged_patterns",
    "discover_cell_types",
    "discover_dataword_layout",
    "expected_miscorrection_profile",
    "miscorrections_possible",
    "one_charged_patterns",
    "ExperimentCell",
    "SweepReport",
    "SweepRunner",
    "SweepSpec",
    "build_injector",
    "scenario_names",
    "CampaignStore",
    "ResultRecord",
    "content_key",
    "__version__",
]
