"""Sweep execution: cache-aware, resumable campaign running.

The runner walks a :class:`~repro.scenarios.sweep.SweepSpec`'s cell matrix in
deterministic order.  For each cell it consults the campaign store first —
a hit is served without simulating anything; a miss is executed through the
chunked :class:`~repro.core.experiment.MonteCarloCampaign` (``einsim`` cells)
or a full :class:`~repro.core.experiment.BeerExperiment` against a simulated
vendor chip (``beer`` cells) and checkpointed to the store immediately.
Interrupting a sweep therefore loses at most the in-flight cell; re-running
the same spec completes exactly the missing cells and produces a store
byte-identical to an uninterrupted run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.dram import ChipGeometry, DataRetentionModel, all_vendors
from repro.dram.retention import RetentionCalibration
from repro.core.experiment import BeerExperiment, ExperimentConfig, MonteCarloCampaign
from repro.scenarios.registry import build_injector
from repro.scenarios.sweep import (
    ExperimentCell,
    SweepSpec,
    resolve_code,
    resolve_dataword,
)
from repro.store.store import CampaignStore, ResultRecord

#: Accelerated retention calibration so simulated refresh-window sweeps finish
#: in seconds instead of the paper's hours of real refresh pauses (the CLI's
#: ``simulate-profile`` uses the same trick).
FAST_RETENTION_CALIBRATION = RetentionCalibration(1.0, 0.02, 60.0, 0.5)


@dataclass
class CellOutcome:
    """What happened to one cell during a sweep run."""

    cell: ExperimentCell
    record: ResultRecord
    cached: bool


@dataclass
class SweepReport:
    """Summary of one sweep invocation."""

    spec_name: str
    total_cells: int
    simulated: int
    cached: int
    completed: bool
    outcomes: List[CellOutcome] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly summary (used by ``scenario sweep --json``)."""
        return {
            "name": self.spec_name,
            "total_cells": self.total_cells,
            "simulated": self.simulated,
            "cached": self.cached,
            "completed": self.completed,
        }


class SweepRunner:
    """Executes sweep specs against an (optional) persistent campaign store.

    Parameters
    ----------
    store:
        Campaign store consulted before and written after every cell;
        ``None`` runs everything fresh with no persistence.
    processes:
        Worker processes handed to :class:`MonteCarloCampaign` for ``einsim``
        cells.  Results are bit-identical for any value.
    """

    def __init__(self, store: Optional[CampaignStore] = None, processes: int = 1):
        self._store = store
        self._processes = int(processes)

    @property
    def store(self) -> Optional[CampaignStore]:
        """The campaign store, if any."""
        return self._store

    def run(
        self,
        spec: SweepSpec,
        max_new_simulations: Optional[int] = None,
        progress: Optional[Callable[[CellOutcome], None]] = None,
    ) -> SweepReport:
        """Run every cell of ``spec``, serving cached cells from the store.

        ``max_new_simulations`` stops the sweep after that many fresh
        simulations (cached cells do not count) — the hook used to exercise
        interruption/resume behaviour deterministically.
        """
        report = SweepReport(
            spec_name=spec.name,
            total_cells=spec.num_cells,
            simulated=0,
            cached=0,
            completed=True,
        )
        for cell in spec.cells:
            is_cached = self._store is not None and cell.key() in self._store
            if (
                not is_cached
                and max_new_simulations is not None
                and report.simulated >= max_new_simulations
            ):
                report.completed = False
                break
            outcome = self.run_one(cell)
            if outcome.cached:
                report.cached += 1
            else:
                report.simulated += 1
            report.outcomes.append(outcome)
            if progress is not None:
                progress(outcome)
        return report

    def run_one(self, cell: ExperimentCell) -> CellOutcome:
        """Run a single cell, serving it from the store when possible."""
        key = cell.key()
        if self._store is not None:
            cached_record = self._store.get(key)
            if cached_record is not None:
                return CellOutcome(cell=cell, record=cached_record, cached=True)
        result = self.run_cell(cell)
        config = cell.config()
        if self._store is not None:
            record = self._store.put(config, result)
        else:
            record = ResultRecord(key=key, config=config, result=result)
        return CellOutcome(cell=cell, record=record, cached=False)

    # -- cell execution -----------------------------------------------------
    def run_cell(self, cell: ExperimentCell) -> Dict[str, Any]:
        """Execute one cell from scratch and return its canonical result dict."""
        config = cell.config()
        if cell.kind == "einsim":
            return self._run_einsim_cell(config)
        return self._run_beer_cell(config)

    def _run_einsim_cell(self, config: Dict[str, Any]) -> Dict[str, Any]:
        code = resolve_code(config["code"])
        dataword = resolve_dataword(config["dataword"], code.num_data_bits)
        injector = build_injector(config["scenario"], config["params"])
        campaign = MonteCarloCampaign(
            code,
            chunk_size=config["chunk_size"],
            processes=self._processes,
            backend=config["backend"],
            base_seed=config["seed"],
        )
        result = campaign.simulate(dataword, injector, config["num_words"])
        return {
            "codeword_length": code.codeword_length,
            "num_data_bits": code.num_data_bits,
            "parity_columns": [int(c) for c in code.parity_column_ints],
            "num_words": int(result.num_words),
            "post_correction_error_counts": [
                int(c) for c in result.post_correction_error_counts
            ],
            "pre_correction_error_counts": [
                int(c) for c in result.pre_correction_error_counts
            ],
            "uncorrectable_words": int(result.uncorrectable_words),
            "miscorrected_words": int(result.miscorrected_words),
            "miscorrection_positions": [
                int(p) for p in result.miscorrection_positions
            ],
        }

    def _run_beer_cell(self, config: Dict[str, Any]) -> Dict[str, Any]:
        vendor = next(v for v in all_vendors() if v.name == config["vendor"])
        chip = vendor.make_chip(
            num_data_bits=config["data_bits"],
            geometry=ChipGeometry(
                num_rows=config["num_rows"], words_per_row=config["words_per_row"]
            ),
            seed=config["seed"],
            retention_model=DataRetentionModel(FAST_RETENTION_CALIBRATION),
            backend=config["backend"],
        )
        experiment_config = ExperimentConfig(
            pattern_weights=tuple(config["pattern_weights"]),
            refresh_windows_s=tuple(config["refresh_windows_s"]),
            rounds_per_window=config["rounds_per_window"],
            threshold=config["threshold"],
            discover_cell_encoding=True,
            discovery_pause_s=max(config["refresh_windows_s"]),
        )
        result = BeerExperiment(chip, experiment_config).run(solve=False)
        profile = result.profile
        return {
            "num_data_bits": profile.num_data_bits,
            "num_patterns": len(profile.patterns),
            "total_miscorrections": int(profile.total_miscorrections),
            "profile": profile.to_dict(),
        }
