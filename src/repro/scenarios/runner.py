"""Sweep execution: cache-aware, resumable, optionally process-parallel.

The runner walks a :class:`~repro.scenarios.sweep.SweepSpec`'s cell matrix in
deterministic order.  For each cell it consults the campaign store first —
a hit is served without simulating anything; a miss is executed through the
chunked :class:`~repro.core.experiment.MonteCarloCampaign` (``einsim`` cells)
or a full :class:`~repro.core.experiment.BeerExperiment` against a simulated
vendor chip (``beer`` cells) and checkpointed to the store.

With ``jobs > 1`` the cache-miss cells are fanned out over a process pool.
Every cell's configuration carries its own deterministic seed, so workers
are fully independent; results are *committed in spec order* regardless of
completion order, which keeps the store byte-identical to a serial run of
the same spec.  Interrupting a sweep loses at most the not-yet-committed
cells; re-running the same spec completes exactly the missing cells and
produces a store byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs import TRACER
from repro.dram import ChipGeometry, DataRetentionModel, all_vendors
from repro.dram.retention import RetentionCalibration
from repro.exceptions import ScenarioError
from repro.core.experiment import BeerExperiment, ExperimentConfig, MonteCarloCampaign
from repro.scenarios.registry import build_injector
from repro.scenarios.sweep import (
    ExperimentCell,
    SweepSpec,
    resolve_code,
    resolve_dataword,
)
from repro.store import CampaignStore, ResultRecord

#: Accelerated retention calibration so simulated refresh-window sweeps finish
#: in seconds instead of the paper's hours of real refresh pauses (the CLI's
#: ``simulate-profile`` uses the same trick).
FAST_RETENTION_CALIBRATION = RetentionCalibration(1.0, 0.02, 60.0, 0.5)


@dataclass
class CellOutcome:
    """What happened to one cell during a sweep run."""

    cell: ExperimentCell
    record: ResultRecord
    cached: bool


@dataclass
class SweepReport:
    """Summary of one sweep invocation."""

    spec_name: str
    total_cells: int
    simulated: int
    cached: int
    completed: bool
    outcomes: List[CellOutcome] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly summary (used by ``scenario sweep --json``)."""
        return {
            "name": self.spec_name,
            "total_cells": self.total_cells,
            "simulated": self.simulated,
            "cached": self.cached,
            "completed": self.completed,
        }


# ---------------------------------------------------------------------------
# Stateless cell execution (module level so process-pool workers pickle it)
# ---------------------------------------------------------------------------

def execute_cell(cell: ExperimentCell, processes: int = 1) -> Dict[str, Any]:
    """Execute one cell from scratch and return its canonical result dict.

    Pure function of the cell's configuration (every source of variation,
    including the seed, lives in the config), which is what makes both the
    content-addressed cache and the process-parallel fan-out sound.
    """
    config = cell.config()
    if cell.kind == "einsim":
        return _execute_einsim_cell(config, processes)
    return _execute_beer_cell(config)


def _execute_cell_job(job: Tuple) -> Dict[str, Any]:
    """Worker entry point: rebuild the cell and run it single-process.

    Workers always run their inner campaign with ``processes=1`` — the
    parallelism budget is spent at the cell level, and campaign results are
    bit-identical for any process count anyway.

    ``job`` is ``(kind, config_json)`` untraced, or
    ``(kind, config_json, segment_path, id_prefix)`` when the parent is
    tracing: the worker then records its own trace into ``segment_path``
    (span ids namespaced by ``id_prefix`` so the parent's deterministic
    merge can never collide ids across segments).  Tracing never touches
    the result value, so ``records.jsonl`` stays byte-identical either way.
    """
    kind, config_json = job[0], job[1]
    segment_path = job[2] if len(job) > 2 else None
    cell = ExperimentCell(kind=kind, config_json=config_json)
    if segment_path is None:
        return execute_cell(cell)
    TRACER.enable(
        sink_path=segment_path,
        id_prefix=job[3],
        meta={"role": "sweep-worker", "kind": kind},
    )
    try:
        with TRACER.span("sweep.cell.execute", kind=kind, key=cell.key()[:16]):
            result = execute_cell(cell)
        TRACER.flush()
    finally:
        TRACER.disable()
    return result


def _execute_einsim_cell(config: Dict[str, Any], processes: int) -> Dict[str, Any]:
    code = resolve_code(config["code"])
    dataword = resolve_dataword(config["dataword"], code.num_data_bits)
    injector = build_injector(config["scenario"], config["params"])
    campaign = MonteCarloCampaign(
        code,
        chunk_size=config["chunk_size"],
        processes=processes,
        backend=config["backend"],
        base_seed=config["seed"],
    )
    result = campaign.simulate(dataword, injector, config["num_words"])
    return {
        "codeword_length": code.codeword_length,
        "num_data_bits": code.num_data_bits,
        "code_family": code.family_name,
        "parity_columns": [int(c) for c in code.parity_column_ints],
        "num_words": int(result.num_words),
        "post_correction_error_counts": [
            int(c) for c in result.post_correction_error_counts
        ],
        "pre_correction_error_counts": [
            int(c) for c in result.pre_correction_error_counts
        ],
        "uncorrectable_words": int(result.uncorrectable_words),
        "miscorrected_words": int(result.miscorrected_words),
        "detected_words": int(result.detected_words),
        "miscorrection_positions": [
            int(p) for p in result.miscorrection_positions
        ],
    }


def _execute_beer_cell(config: Dict[str, Any]) -> Dict[str, Any]:
    vendors = {vendor.name: vendor for vendor in all_vendors()}
    try:
        vendor = vendors[config["vendor"]]
    except KeyError:
        raise ScenarioError(
            f"unknown vendor {config['vendor']!r}; known vendors: "
            f"{sorted(vendors)}"
        ) from None
    chip = vendor.make_chip(
        num_data_bits=config["data_bits"],
        geometry=ChipGeometry(
            num_rows=config["num_rows"], words_per_row=config["words_per_row"]
        ),
        seed=config["seed"],
        retention_model=DataRetentionModel(FAST_RETENTION_CALIBRATION),
        backend=config["backend"],
    )
    experiment_config = ExperimentConfig(
        pattern_weights=tuple(config["pattern_weights"]),
        refresh_windows_s=tuple(config["refresh_windows_s"]),
        rounds_per_window=config["rounds_per_window"],
        threshold=config["threshold"],
        discover_cell_encoding=True,
        discovery_pause_s=max(config["refresh_windows_s"]),
    )
    result = BeerExperiment(chip, experiment_config).run(solve=False)
    profile = result.profile
    payload = {
        "num_data_bits": profile.num_data_bits,
        "num_patterns": len(profile.patterns),
        "total_miscorrections": int(profile.total_miscorrections),
        "profile": profile.to_dict(),
    }
    if config.get("solve"):
        # Recover the ECC function through the incremental SAT backend and
        # keep its statistics with the cell, so `scenario report` can
        # aggregate conflicts/decisions/propagations per campaign.
        from repro.core import SatBeerSolver

        with TRACER.span("beer.sat_solve", vendor=config["vendor"]):
            solution = SatBeerSolver(profile.num_data_bits).solve(profile)
        payload["num_solutions"] = int(solution.num_solutions)
        payload["solver_stats"] = solution.solver_stats
    return payload


class SweepRunner:
    """Executes sweep specs against an (optional) persistent campaign store.

    Parameters
    ----------
    store:
        Campaign store consulted before and written after every cell;
        ``None`` runs everything fresh with no persistence.
    processes:
        Worker processes handed to :class:`MonteCarloCampaign` *within* a
        single ``einsim`` cell.  Results are bit-identical for any value.
        Ignored while ``jobs > 1`` (workers run their campaigns inline so
        pools never nest).
    jobs:
        Number of cells executed concurrently, each in its own worker
        process.  ``1`` (the default) keeps the historical strictly-serial
        behaviour.  Any value produces a byte-identical store: results are
        committed in spec order no matter when workers finish.
    """

    def __init__(
        self,
        store: Optional[CampaignStore] = None,
        processes: int = 1,
        jobs: int = 1,
    ):
        if int(jobs) < 1:
            raise ScenarioError("jobs must be at least 1")
        self._store = store
        self._processes = int(processes)
        self._jobs = int(jobs)

    @property
    def store(self) -> Optional[CampaignStore]:
        """The campaign store, if any."""
        return self._store

    @property
    def jobs(self) -> int:
        """Number of cells executed concurrently."""
        return self._jobs

    def run(
        self,
        spec: SweepSpec,
        max_new_simulations: Optional[int] = None,
        progress: Optional[Callable[[CellOutcome], None]] = None,
    ) -> SweepReport:
        """Run every cell of ``spec``, serving cached cells from the store.

        ``max_new_simulations`` stops the sweep after that many fresh
        simulations (cached cells do not count) — the hook used to exercise
        interruption/resume behaviour deterministically.
        """
        report = SweepReport(
            spec_name=spec.name,
            total_cells=spec.num_cells,
            simulated=0,
            cached=0,
            completed=True,
        )
        # Partition pass: decide, in spec order, which cells are served from
        # cache and which must be simulated — stopping (exactly like the
        # serial walk always has) at the first miss beyond the budget.  Hit
        # checks are pure membership tests against the store's index (on a
        # sharded store an O(1) dict lookup that never parses payloads);
        # record bodies load lazily at serve time in the commit loop.  A
        # later duplicate of a cell this run will already have committed is
        # neither a miss nor submitted to a worker: by the time the commit
        # loop reaches it, the store serves it as a cache hit.
        plan: List[Tuple[ExperimentCell, bool]] = []
        miss_indices: List[int] = []
        planned_keys = set()
        for cell in spec.cells:
            key = cell.key()
            hit = self._store is not None and key in self._store
            if not hit and not (
                self._store is not None and key in planned_keys
            ):
                if max_new_simulations is not None and len(miss_indices) >= (
                    max_new_simulations
                ):
                    report.completed = False
                    break
                miss_indices.append(len(plan))
                planned_keys.add(key)
            plan.append((cell, hit))
        misses = len(miss_indices)

        pool: Optional[ProcessPoolExecutor] = None
        futures: Dict[int, "Future[Dict[str, Any]]"] = {}
        segments: Dict[int, str] = {}
        submit_cursor = 0
        # Workers write per-cell trace segments only when the parent tracer
        # has a real sink; the parent adopts them in spec order at commit
        # time, which keeps the merged trace deterministic.
        segment_dir = TRACER.segment_dir() if TRACER.enabled else None

        def submit_up_to(limit: int) -> None:
            # Keep a bounded window of cells in flight ahead of the commit
            # cursor, so a slow early cell cannot make every later result
            # buffer in memory at once.
            nonlocal submit_cursor
            while submit_cursor < len(miss_indices) and len(futures) < limit:
                index = miss_indices[submit_cursor]
                cell = plan[index][0]
                job: Tuple = (cell.kind, cell.config_json)
                if segment_dir is not None:
                    segments[index] = os.path.join(
                        segment_dir, f"segment-{index:08d}.jsonl"
                    )
                    job = job + (segments[index], f"c{index}.")
                futures[index] = pool.submit(_execute_cell_job, job)
                submit_cursor += 1

        run_span = TRACER.span(
            "sweep.run", spec=spec.name, total_cells=spec.num_cells,
            jobs=self._jobs, misses=misses,
        )
        if self._jobs > 1 and misses > 1:
            pool = ProcessPoolExecutor(max_workers=min(self._jobs, misses))
            submit_up_to(2 * self._jobs)
        try:
            with run_span:
                for index, (cell, hit) in enumerate(plan):
                    cached: Optional[ResultRecord] = None
                    if self._store is not None and (
                        hit or index not in futures
                    ):
                        # Planned hits load their record lazily here; a miss
                        # not in flight is a duplicate planned behind its
                        # first occurrence (or a serial miss) whose earlier
                        # commit may have landed by now.
                        cached = self._store.get(cell.key())
                    with TRACER.span(
                        "sweep.cell", index=index, kind=cell.kind
                    ) as cell_span:
                        if TRACER.enabled:
                            cell_span.set_attr("key", cell.key()[:16])
                        if cached is not None:
                            outcome = CellOutcome(cell=cell, record=cached, cached=True)
                            report.cached += 1
                            cell_span.set_attr("cached", True)
                            TRACER.add("sweep.cells.cache_hit")
                        else:
                            if index in futures:
                                with TRACER.span("sweep.cell.wait", index=index):
                                    result = futures.pop(index).result()
                                segment = segments.pop(index, None)
                                if segment is not None and os.path.exists(segment):
                                    TRACER.adopt_segment(
                                        segment, parent_id=cell_span.span_id
                                    )
                                    os.remove(segment)
                                submit_up_to(2 * self._jobs)
                            else:
                                with TRACER.span(
                                    "sweep.cell.execute", kind=cell.kind
                                ):
                                    result = execute_cell(cell, self._processes)
                            with TRACER.span("sweep.cell.commit", index=index):
                                record = self._commit(cell, result)
                            outcome = CellOutcome(cell=cell, record=record, cached=False)
                            report.simulated += 1
                            cell_span.set_attr("cached", False)
                            TRACER.add("sweep.cells.simulated")
                    report.outcomes.append(outcome)
                    if progress is not None:
                        progress(outcome)
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
            if segment_dir is not None:
                # Unadopted segments (interrupted sweep, cancelled futures)
                # must not leak into a later run's merge.
                for leftover in segments.values():
                    if os.path.exists(leftover):
                        os.remove(leftover)
        return report

    def run_one(self, cell: ExperimentCell) -> CellOutcome:
        """Run a single cell, serving it from the store when possible."""
        with TRACER.span("sweep.cell", kind=cell.kind) as cell_span:
            if TRACER.enabled:
                cell_span.set_attr("key", cell.key()[:16])
            if self._store is not None:
                cached_record = self._store.get(cell.key())
                if cached_record is not None:
                    cell_span.set_attr("cached", True)
                    TRACER.add("sweep.cells.cache_hit")
                    return CellOutcome(cell=cell, record=cached_record, cached=True)
            with TRACER.span("sweep.cell.execute", kind=cell.kind):
                result = self.run_cell(cell)
            with TRACER.span("sweep.cell.commit"):
                record = self._commit(cell, result)
            cell_span.set_attr("cached", False)
            TRACER.add("sweep.cells.simulated")
            return CellOutcome(cell=cell, record=record, cached=False)

    def run_cell(self, cell: ExperimentCell) -> Dict[str, Any]:
        """Execute one cell from scratch and return its canonical result dict."""
        return execute_cell(cell, self._processes)

    def _commit(self, cell: ExperimentCell, result: Dict[str, Any]) -> ResultRecord:
        config = cell.config()
        if self._store is not None:
            return self._store.put(config, result)
        return ResultRecord(key=cell.key(), config=config, result=result)
