"""Declarative sweep specifications and their deterministic expansion.

A sweep spec is a plain JSON/dict description of an experiment matrix::

    {
      "name": "retention-vs-burst",
      "num_words": 20000,
      "chunk_size": 4096,
      "seeds": [0, 1],
      "backends": ["packed"],
      "codes": [{"data_bits": 16}, {"data_bits": 32, "code_seed": 7},
                {"data_bits": 16, "code_family": "secded-extended-hamming"}],
      "datawords": ["ones"],
      "scenarios": [
        {"name": "data-retention-true", "params": {"bit_error_rate": [1e-3, 1e-2]}},
        {"name": "burst", "params": {"burst_probability": 0.05, "burst_length": 4}}
      ],
      "experiments": [
        {"vendor": "A", "data_bits": 8, "refresh_windows_s": [[30.0, 45.0, 60.0]]}
      ]
    }

Expansion rules:

* Every list-valued field of a scenario's ``params`` (and of an experiment
  entry) is a grid *axis*; scalars are fixed.  A parameter whose value is
  itself a list (e.g. ``per-bit-bernoulli`` probabilities) must be wrapped in
  an extra list to denote a single grid point.
* Axes expand in sorted key order via a cartesian product; scenarios, codes,
  datawords, seeds and backends expand in the order given.

The result is a deterministic tuple of :class:`ExperimentCell` objects whose
canonical configuration dictionaries feed the content-addressed store.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Sequence, Tuple

import numpy as np

from repro.exceptions import CodeConstructionError, ScenarioError
from repro.ecc.code import SystematicLinearCode
from repro.ecc.family import get_family
from repro.scenarios.registry import get_scenario

#: Cell kinds the runner knows how to execute.
CELL_KINDS: Tuple[str, ...] = ("einsim", "beer")

#: Named dataword patterns accepted wherever a dataword spec is expected.
DATAWORD_NAMES: Tuple[str, ...] = ("ones", "zeros", "alternating")


@dataclass(frozen=True)
class ExperimentCell:
    """One fully-specified point of a sweep's experiment matrix.

    ``config()`` is the canonical dictionary hashed into the cell's content
    address; everything that can change the simulation output must appear in
    it.
    """

    kind: str
    config_json: str  # canonical JSON of the full configuration

    def config(self) -> Dict[str, Any]:
        """The cell's canonical configuration dictionary."""
        return json.loads(self.config_json)

    def key(self) -> str:
        """Content address of this cell (SHA-256 of the canonical config)."""
        # config_json is canonical by construction, so hashing it directly
        # equals content_key(self.config()) without a parse/re-serialise.
        return hashlib.sha256(self.config_json.encode("utf-8")).hexdigest()

    @classmethod
    def from_config(cls, config: Mapping[str, Any]) -> "ExperimentCell":
        """Build a cell from a configuration dictionary (canonicalising it)."""
        kind = config.get("kind")
        if kind not in CELL_KINDS:
            raise ScenarioError(
                f"cell kind must be one of {CELL_KINDS}, got {kind!r}"
            )
        canonical = json.dumps(dict(config), sort_keys=True, separators=(",", ":"))
        return cls(kind=kind, config_json=canonical)


def make_einsim_cell(
    scenario: str,
    params: Mapping[str, Any],
    code: Mapping[str, Any],
    num_words: int,
    seed: int = 0,
    backend: str = "packed",
    dataword: Any = "ones",
    chunk_size: int = 65536,
) -> ExperimentCell:
    """Build a single injector-driven Monte-Carlo cell."""
    resolved = get_scenario(scenario).resolve_params(params)
    if num_words < 1:
        raise ScenarioError("a cell must simulate at least one word")
    return ExperimentCell.from_config(
        {
            "kind": "einsim",
            "scenario": scenario,
            "params": _jsonify(resolved),
            "code": _normalise_code_spec(code),
            "dataword": _normalise_dataword_spec(dataword),
            "num_words": int(num_words),
            "seed": int(seed),
            "backend": str(backend),
            "chunk_size": int(chunk_size),
        }
    )


def make_beer_cell(
    vendor: str,
    data_bits: int,
    refresh_windows_s: Sequence[float] = (30.0, 45.0, 60.0),
    pattern_weights: Sequence[int] = (1, 2),
    rounds_per_window: int = 4,
    threshold: float = 0.0,
    seed: int = 0,
    backend: str = "packed",
    num_rows: int = 32,
    words_per_row: int = 8,
    solve: bool = False,
) -> ExperimentCell:
    """Build a full BEER-campaign cell against a simulated vendor chip.

    With ``solve=True`` the cell additionally runs the incremental SAT
    solver over the measured profile and records the candidate count plus
    the solver's ``SolverStats`` in the cell result (surfaced by
    ``scenario report``).  The flag participates in the canonical config
    only when set, so historical solve-free cells keep their
    content-addressed keys byte-for-byte.
    """
    if vendor not in ("A", "B", "C"):
        raise ScenarioError(f"unknown vendor {vendor!r}; expected A, B or C")
    config = {
        "kind": "beer",
        "vendor": vendor,
        "data_bits": int(data_bits),
        "refresh_windows_s": [float(w) for w in refresh_windows_s],
        "pattern_weights": [int(w) for w in pattern_weights],
        "rounds_per_window": int(rounds_per_window),
        "threshold": float(threshold),
        "seed": int(seed),
        "backend": str(backend),
        "num_rows": int(num_rows),
        "words_per_row": int(words_per_row),
    }
    if solve:
        config["solve"] = True
    return ExperimentCell.from_config(config)


@dataclass(frozen=True)
class SweepSpec:
    """A named, fully-expanded sweep: an ordered matrix of experiment cells."""

    name: str
    cells: Tuple[ExperimentCell, ...]

    @property
    def num_cells(self) -> int:
        """Number of cells in the expanded matrix."""
        return len(self.cells)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SweepSpec":
        """Expand a declarative sweep description into its cell matrix."""
        if "name" not in payload:
            raise ScenarioError("sweep spec needs a 'name'")
        known = {
            "name", "num_words", "chunk_size", "seeds", "backends",
            "codes", "datawords", "scenarios", "experiments",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ScenarioError(
                f"sweep spec has unknown field(s) {unknown}; valid fields are "
                f"{sorted(known)}"
            )
        scenarios = payload.get("scenarios", [])
        experiments = payload.get("experiments", [])
        if not scenarios and not experiments:
            raise ScenarioError("sweep spec declares no scenarios or experiments")

        num_words = int(payload.get("num_words", 10_000))
        chunk_size = int(payload.get("chunk_size", 65536))
        seeds = [int(s) for s in payload.get("seeds", [0])]
        backends = [str(b) for b in payload.get("backends", ["packed"])]
        codes = payload.get("codes", [{"data_bits": 16}])
        datawords = payload.get("datawords", ["ones"])

        cells: List[ExperimentCell] = []
        for entry in scenarios:
            if "name" not in entry:
                raise ScenarioError("each scenario entry needs a 'name'")
            for params in _expand_grid(entry.get("params", {})):
                for code, dataword, seed, backend in itertools.product(
                    codes, datawords, seeds, backends
                ):
                    cells.append(
                        make_einsim_cell(
                            scenario=entry["name"],
                            params=params,
                            code=code,
                            num_words=int(entry.get("num_words", num_words)),
                            seed=seed,
                            backend=backend,
                            dataword=dataword,
                            chunk_size=chunk_size,
                        )
                    )
        for entry in experiments:
            for point in _expand_grid(dict(entry)):
                for seed, backend in itertools.product(seeds, backends):
                    combo = dict(point)
                    combo.setdefault("seed", seed)
                    combo.setdefault("backend", backend)
                    cells.append(make_beer_cell(**combo))

        deduped: List[ExperimentCell] = []
        seen = set()
        for cell in cells:
            if cell.config_json not in seen:
                seen.add(cell.config_json)
                deduped.append(cell)
        return cls(name=str(payload["name"]), cells=tuple(deduped))

    @classmethod
    def from_json_file(cls, path: str) -> "SweepSpec":
        """Load and expand a sweep spec from a JSON file."""
        with open(path, encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


# ---------------------------------------------------------------------------
# Cell-config resolution helpers (shared with the runner)
# ---------------------------------------------------------------------------

def resolve_code(spec: Mapping[str, Any]) -> SystematicLinearCode:
    """Materialise the ECC code described by a cell's ``code`` spec.

    Supported forms: explicit ``parity_columns`` (+ ``parity_bits``),
    deterministic ``{"data_bits": k}`` (ascending legal columns), or sampled
    ``{"data_bits": k, "code_seed": s}`` — each optionally qualified with a
    ``code_family`` name from :mod:`repro.ecc.family` (default
    ``"sec-hamming"``).  The family participates in the cell's canonical
    configuration, so sweeps over several families produce distinct
    content-addressed store keys per family.
    """
    try:
        family = get_family(str(spec.get("code_family", "sec-hamming")))
    except CodeConstructionError as error:
        raise ScenarioError(str(error)) from error
    try:
        if "parity_columns" in spec:
            columns = [int(c) for c in spec["parity_columns"]]
            parity_bits = int(
                spec.get("parity_bits", family.min_parity_bits(len(columns)))
            )
            if "code_family" in spec:
                return family.construct(len(columns), parity_bits, columns=columns)
            return SystematicLinearCode.from_parity_columns(columns, parity_bits)
        if "data_bits" not in spec:
            raise ScenarioError(
                "code spec needs 'data_bits' or explicit 'parity_columns'"
            )
        data_bits = int(spec["data_bits"])
        parity_bits = spec.get("parity_bits")
        parity_bits = None if parity_bits is None else int(parity_bits)
        if "code_seed" in spec:
            rng = np.random.default_rng(int(spec["code_seed"]))
            return family.random(data_bits, parity_bits, rng=rng)
        return family.construct(data_bits, parity_bits)
    except CodeConstructionError as error:
        raise ScenarioError(f"invalid code spec: {error}") from error


def resolve_dataword(spec: Any, num_data_bits: int) -> np.ndarray:
    """Materialise a dataword spec into a ``uint8`` bit array."""
    if isinstance(spec, str):
        if spec == "ones":
            return np.ones(num_data_bits, dtype=np.uint8)
        if spec == "zeros":
            return np.zeros(num_data_bits, dtype=np.uint8)
        if spec == "alternating":
            return (np.arange(num_data_bits) % 2).astype(np.uint8)
        raise ScenarioError(
            f"unknown dataword name {spec!r}; expected one of {DATAWORD_NAMES} "
            "or an explicit bit list"
        )
    bits = np.asarray(list(spec), dtype=np.uint8) % 2
    if bits.shape != (num_data_bits,):
        raise ScenarioError(
            f"dataword has {bits.size} bits but the code has {num_data_bits}"
        )
    return bits


# ---------------------------------------------------------------------------
# Internals
# ---------------------------------------------------------------------------

def _expand_grid(params: Mapping[str, Any]) -> Iterator[Dict[str, Any]]:
    """Expand list-valued fields into a deterministic cartesian product."""
    axes: List[Tuple[str, List[Any]]] = []
    fixed: Dict[str, Any] = {}
    for key in sorted(params):
        value = params[key]
        if isinstance(value, list):
            if not value:
                raise ScenarioError(f"grid axis {key!r} is an empty list")
            axes.append((key, value))
        else:
            fixed[key] = value
    if not axes:
        yield dict(fixed)
        return
    names = [name for name, _ in axes]
    for combination in itertools.product(*(values for _, values in axes)):
        point = dict(fixed)
        point.update(zip(names, combination))
        yield point


def _normalise_code_spec(spec: Mapping[str, Any]) -> Dict[str, Any]:
    # Resolving validates the spec; the canonical config keeps the *spec*
    # (not the matrix) so cache keys stay readable and stable.
    resolve_code(spec)
    return {key: spec[key] for key in sorted(spec)}


def _normalise_dataword_spec(spec: Any) -> Any:
    if isinstance(spec, str):
        if spec not in DATAWORD_NAMES:
            raise ScenarioError(
                f"unknown dataword name {spec!r}; expected one of {DATAWORD_NAMES}"
            )
        return spec
    return [int(b) % 2 for b in spec]


def _jsonify(value: Any) -> Any:
    """Coerce resolved params into JSON-stable plain types."""
    if isinstance(value, Mapping):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    return value
