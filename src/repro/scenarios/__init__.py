"""Declarative fault-scenario registry, sweep specs, and campaign runner.

The paper's evaluation is a matrix of scenarios — code lengths × error
mechanisms × refresh windows × cell layouts (Sections 5–7).  This package
turns that matrix into data:

* :mod:`repro.scenarios.registry` — named fault scenarios mapping parameter
  dictionaries to :mod:`repro.einsim` injectors;
* :mod:`repro.scenarios.sweep` — declarative sweep specs (JSON/dict) that
  expand into a deterministic matrix of experiment cells;
* :mod:`repro.scenarios.runner` — cache-aware execution against the
  content-addressed :mod:`repro.store`, with per-cell checkpointing,
  resumable interrupted sweeps, and process-parallel cell execution
  (``SweepRunner(jobs=N)``) whose store stays byte-identical to a serial
  run.
"""

from repro.scenarios.registry import (
    REQUIRED,
    ScenarioDefinition,
    all_scenarios,
    build_injector,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.scenarios.sweep import (
    ExperimentCell,
    SweepSpec,
    make_beer_cell,
    make_einsim_cell,
    resolve_code,
    resolve_dataword,
)
from repro.scenarios.runner import (
    CellOutcome,
    SweepReport,
    SweepRunner,
    execute_cell,
)

__all__ = [
    "REQUIRED",
    "ScenarioDefinition",
    "all_scenarios",
    "build_injector",
    "get_scenario",
    "register_scenario",
    "scenario_names",
    "ExperimentCell",
    "SweepSpec",
    "make_beer_cell",
    "make_einsim_cell",
    "resolve_code",
    "resolve_dataword",
    "CellOutcome",
    "SweepReport",
    "SweepRunner",
    "execute_cell",
]
