"""Registry of named, composable fault scenarios.

A *scenario* is a named recipe that turns a flat parameter dictionary into a
pre-correction error injector (:mod:`repro.einsim.injectors`).  The registry
gives sweeps, the CLI and tests one shared vocabulary for the paper's error
mechanisms — uniform-random (Figure 1), data-retention in true/anti/mixed
cell layouts (Section 3.2), fixed-error-count (Figure 9), per-bit Bernoulli,
plus the Section 7.1.5-style extensions: multi-bit bursts, RowHammer-like
row stripes, and transient + stuck-at overlays built on
:mod:`repro.dram.faults`.

Scenarios are registered with :func:`register_scenario`; downstream code
builds injectors through :func:`build_injector` and never touches concrete
injector classes directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping

from repro.exceptions import ScenarioError
from repro.dram.cell import CellType
from repro.dram.faults import StuckAtFaultModel, TransientFaultModel
from repro.einsim.injectors import (
    BurstErrorInjector,
    CompositeInjector,
    DataRetentionInjector,
    FaultModelInjector,
    FixedErrorCountInjector,
    MixedCellRetentionInjector,
    PerBitBernoulliInjector,
    RowStripeInjector,
    UniformRandomInjector,
)

#: Sentinel default marking a parameter the caller must supply.
REQUIRED = object()


@dataclass(frozen=True)
class ScenarioDefinition:
    """A named fault scenario: description, parameter schema, and builder."""

    name: str
    description: str
    defaults: Mapping[str, Any]
    builder: Callable[..., Any]

    def resolve_params(self, params: Mapping[str, Any]) -> Dict[str, Any]:
        """Merge ``params`` over the defaults, rejecting unknown/missing keys."""
        unknown = sorted(set(params) - set(self.defaults))
        if unknown:
            raise ScenarioError(
                f"scenario {self.name!r} got unknown parameter(s) {unknown}; "
                f"valid parameters are {sorted(self.defaults)}"
            )
        merged = dict(self.defaults)
        merged.update(params)
        missing = sorted(key for key, value in merged.items() if value is REQUIRED)
        if missing:
            raise ScenarioError(
                f"scenario {self.name!r} requires parameter(s) {missing}"
            )
        return merged

    def build(self, params: Mapping[str, Any]):
        """Instantiate this scenario's injector for the given parameters."""
        return self.builder(**self.resolve_params(params))


_REGISTRY: Dict[str, ScenarioDefinition] = {}


def register_scenario(
    name: str, description: str, defaults: Mapping[str, Any]
) -> Callable[[Callable], Callable]:
    """Decorator registering ``fn`` as the builder of scenario ``name``."""

    def decorate(fn: Callable) -> Callable:
        if name in _REGISTRY:
            raise ScenarioError(f"scenario {name!r} is already registered")
        _REGISTRY[name] = ScenarioDefinition(
            name=name, description=description, defaults=dict(defaults), builder=fn
        )
        return fn

    return decorate


def get_scenario(name: str) -> ScenarioDefinition:
    """Look up a scenario definition by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ScenarioError(
            f"unknown scenario {name!r}; registered scenarios: {scenario_names()}"
        ) from None


def scenario_names() -> List[str]:
    """Names of every registered scenario, sorted."""
    return sorted(_REGISTRY)


def all_scenarios() -> List[ScenarioDefinition]:
    """Every registered scenario definition, sorted by name."""
    return [_REGISTRY[name] for name in scenario_names()]


def build_injector(name: str, params: Mapping[str, Any]):
    """Build the injector for scenario ``name`` with the given parameters."""
    return get_scenario(name).build(params)


# ---------------------------------------------------------------------------
# Built-in scenarios
# ---------------------------------------------------------------------------

@register_scenario(
    "uniform-random",
    "uniform-random pre-correction errors at a fixed raw BER (paper Fig. 1)",
    {"bit_error_rate": REQUIRED},
)
def _uniform_random(bit_error_rate):
    return UniformRandomInjector(bit_error_rate)


@register_scenario(
    "data-retention-true",
    "data-retention decay in an all-true-cell layout (CHARGED 1s flip to 0)",
    {"bit_error_rate": REQUIRED},
)
def _data_retention_true(bit_error_rate):
    return DataRetentionInjector(bit_error_rate, CellType.TRUE_CELL)


@register_scenario(
    "data-retention-anti",
    "data-retention decay in an all-anti-cell layout (CHARGED 0s flip to 1)",
    {"bit_error_rate": REQUIRED},
)
def _data_retention_anti(bit_error_rate):
    return DataRetentionInjector(bit_error_rate, CellType.ANTI_CELL)


@register_scenario(
    "data-retention-mixed",
    "data-retention decay with interleaved true/anti-cell columns",
    {"bit_error_rate": REQUIRED, "anti_cell_columns": None},
)
def _data_retention_mixed(bit_error_rate, anti_cell_columns):
    return MixedCellRetentionInjector(bit_error_rate, anti_cell_columns)


@register_scenario(
    "fixed-error-count",
    "exactly N error-prone cells per word, thinned per bit (paper Fig. 9)",
    {"num_errors": REQUIRED, "per_bit_probability": 1.0, "candidate_positions": None},
)
def _fixed_error_count(num_errors, per_bit_probability, candidate_positions):
    return FixedErrorCountInjector(num_errors, candidate_positions, per_bit_probability)


@register_scenario(
    "per-bit-bernoulli",
    "independent per-bit flip probabilities (arbitrary spatial profile)",
    {"probabilities": REQUIRED},
)
def _per_bit_bernoulli(probabilities):
    return PerBitBernoulliInjector(probabilities)


@register_scenario(
    "burst",
    "contiguous multi-bit bursts within a word (coupling-style faults)",
    {"burst_probability": REQUIRED, "burst_length": 4, "bit_flip_probability": 1.0},
)
def _burst(burst_probability, burst_length, bit_flip_probability):
    return BurstErrorInjector(burst_probability, burst_length, bit_flip_probability)


@register_scenario(
    "row-stripe",
    "RowHammer-like row-wide disturbance on a periodic column stripe",
    {
        "row_probability": REQUIRED,
        "stripe_period": 2,
        "stripe_phase": 0,
        "bit_flip_probability": 1.0,
    },
)
def _row_stripe(row_probability, stripe_period, stripe_phase, bit_flip_probability):
    return RowStripeInjector(
        row_probability, stripe_period, stripe_phase, bit_flip_probability
    )


@register_scenario(
    "transient-stuck-overlay",
    "transient soft errors overlaid on permanently stuck cells (Sec. 7.1.5)",
    {
        "transient_probability": REQUIRED,
        "stuck_fraction": REQUIRED,
        "stuck_value": 0,
        "stuck_seed": 0,
    },
)
def _transient_stuck_overlay(transient_probability, stuck_fraction, stuck_value, stuck_seed):
    # Seed-derived stuck masks are independent of batch order and process
    # boundaries, so campaigns stay bit-identical for any chunking/pool size.
    stuck = StuckAtFaultModel(stuck_fraction, stuck_value, seed=stuck_seed)
    return CompositeInjector(
        [
            FaultModelInjector(TransientFaultModel(transient_probability)),
            FaultModelInjector(stuck),
        ]
    )
