"""Bit-packed GF(2) linear algebra over ``uint64`` lanes.

The reference implementation in :mod:`repro.gf2.matrix` /
:mod:`repro.gf2.linalg` stores one bit per ``numpy.uint8`` — simple and
convenient, but an order of magnitude slower than the hardware allows on the
hot paths (syndrome computation, bulk decoding, RREF).  This module packs each
row into ``uint64`` lanes (column ``j`` lives in lane ``j // 64`` at bit
``j % 64``, LSB first, matching the library-wide LSB-first integer encoding)
so that row XOR touches 64 columns per machine word and inner products become
AND + popcount.

The packed routines mirror the reference API bit for bit:

* :func:`pack_rows` / :func:`unpack_rows` — lossless dense ↔ packed
  conversion;
* :class:`PackedGF2Matrix` — a packed matrix with ``rref``/``rank``/
  ``null_space``/``solve``/``matvec``;
* :func:`packed_gf2_rref`, :func:`packed_gf2_rank`,
  :func:`packed_gf2_null_space`, :func:`packed_gf2_solve`,
  :func:`packed_matmul` — drop-in equivalents of the :mod:`repro.gf2.linalg`
  functions returning identical reference types;
* :func:`batched_syndrome_values` — a batched AND/popcount syndrome kernel
  over ``uint64`` lanes (general form of :meth:`PackedGF2Matrix.matvec`);
* :func:`byte_fold_table` / :func:`fold_bytes` — cached per-byte XOR tables,
  the kernel the ``packed`` simulation backend
  (:mod:`repro.einsim.engine`) uses for batched syndromes and parity bits.

Equivalence with the reference path is enforced by the differential test
suite (``tests/test_gf2_bitpack.py`` and ``tests/test_differential_backends.py``).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.exceptions import DimensionError, SingularMatrixError
from repro.gf2.matrix import GF2Matrix, GF2Vector

#: Number of columns stored per packed lane.
LANE_BITS = 64

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

# Per-byte popcount table used when numpy lacks ``bitwise_count`` (< 2.0).
_POPCOUNT_TABLE = np.array(
    [bin(value).count("1") for value in range(256)], dtype=np.uint8
)


def popcount_u64(values: np.ndarray) -> np.ndarray:
    """Per-element popcount of a ``uint64`` array."""
    values = np.ascontiguousarray(values, dtype=np.uint64)
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(values)
    as_bytes = values.view(np.uint8).reshape(values.shape + (8,))
    return _POPCOUNT_TABLE[as_bytes].sum(axis=-1, dtype=np.uint8)


def popcount_bytes(values: np.ndarray) -> np.ndarray:
    """Per-element popcount of a ``uint8`` array."""
    values = np.asarray(values, dtype=np.uint8)
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(values)
    return _POPCOUNT_TABLE[values]


def num_lanes(num_cols: int) -> int:
    """Number of ``uint64`` lanes needed to hold ``num_cols`` bits."""
    return (num_cols + LANE_BITS - 1) // LANE_BITS


def pack_rows(bits: np.ndarray) -> np.ndarray:
    """Pack a 2-D ``{0,1}`` array into ``uint64`` lanes, one row per row.

    Column ``j`` of the input maps to bit ``j % 64`` of lane ``j // 64``
    (LSB first).
    """
    bits = np.ascontiguousarray(np.asarray(bits, dtype=np.uint8) & 1)
    if bits.ndim != 2:
        raise DimensionError(f"pack_rows expects a 2-D array, got shape {bits.shape}")
    rows, cols = bits.shape
    lanes = num_lanes(cols)
    packed_bytes = np.packbits(bits, axis=1, bitorder="little")
    padded = np.zeros((rows, lanes * 8), dtype=np.uint8)
    padded[:, : packed_bytes.shape[1]] = packed_bytes
    return padded.view("<u8").reshape(rows, lanes)


def pack_bool_rows(mask: np.ndarray) -> np.ndarray:
    """Pack a 2-D boolean mask into ``uint64`` lanes (see :func:`pack_rows`).

    Same layout as :func:`pack_rows` without the ``uint8``-coercion pass —
    the fused simulation path packs freshly drawn boolean error masks, which
    ``numpy.packbits`` consumes directly.
    """
    mask = np.ascontiguousarray(mask, dtype=bool)
    if mask.ndim != 2:
        raise DimensionError(
            f"pack_bool_rows expects a 2-D array, got shape {mask.shape}"
        )
    rows, cols = mask.shape
    lanes = num_lanes(cols)
    packed_bytes = np.packbits(mask, axis=1, bitorder="little")
    if packed_bytes.shape[1] == lanes * 8:
        return packed_bytes.view("<u8").reshape(rows, lanes)
    padded = np.zeros((rows, lanes * 8), dtype=np.uint8)
    padded[:, : packed_bytes.shape[1]] = packed_bytes
    return padded.view("<u8").reshape(rows, lanes)


def lanes_to_bytes(lanes: np.ndarray, num_cols: int) -> np.ndarray:
    """View packed lanes as the per-byte columns covering ``num_cols`` bits.

    The returned array has shape ``(rows, ceil(num_cols / 8))`` and shares
    memory with ``lanes`` where possible; byte ``b`` holds columns
    ``8*b .. 8*b+7`` LSB first, exactly the layout
    ``np.packbits(..., bitorder="little")`` produces.
    """
    lanes = np.ascontiguousarray(np.asarray(lanes, dtype="<u8"))
    if lanes.ndim != 2:
        raise DimensionError(
            f"lanes_to_bytes expects a 2-D array, got shape {lanes.shape}"
        )
    if lanes.shape[1] != num_lanes(num_cols):
        raise DimensionError(
            f"{lanes.shape[1]} lanes cannot hold exactly {num_cols} columns"
        )
    num_bytes = (num_cols + 7) // 8
    return lanes.view(np.uint8).reshape(lanes.shape[0], -1)[:, :num_bytes]


def bytes_to_lanes(packed_bytes: np.ndarray, num_cols: int) -> np.ndarray:
    """View byte-packed rows as ``uint64`` lanes covering ``num_cols`` bits.

    Inverse direction of :func:`lanes_to_bytes`: pads the byte columns of a
    ``np.packbits(..., bitorder="little")`` batch up to a lane multiple (no
    copy when the byte count already is one) and reinterprets them as
    little-endian ``uint64`` lanes.
    """
    packed_bytes = np.ascontiguousarray(packed_bytes, dtype=np.uint8)
    if packed_bytes.ndim != 2 or packed_bytes.shape[1] != (num_cols + 7) // 8:
        raise DimensionError(
            f"byte array of shape {packed_bytes.shape} does not pack exactly "
            f"{num_cols} columns"
        )
    rows = packed_bytes.shape[0]
    lanes = num_lanes(num_cols)
    if packed_bytes.shape[1] == lanes * 8:
        return packed_bytes.view("<u8").reshape(rows, lanes)
    padded = np.zeros((rows, lanes * 8), dtype=np.uint8)
    padded[:, : packed_bytes.shape[1]] = packed_bytes
    return padded.view("<u8").reshape(rows, lanes)


#: ``_BYTE_BIT_TABLE[v, b]`` is bit ``b`` of byte value ``v`` — turns a
#: per-byte-value histogram into per-column set-bit counts with one matmul.
_BYTE_BIT_TABLE = ((np.arange(256)[:, np.newaxis] >> np.arange(8)) & 1).astype(
    np.int64
)


def packed_column_counts(packed_bytes: np.ndarray, num_cols: int) -> np.ndarray:
    """Count set bits per column over a batch of byte-packed rows.

    Equivalent to ``unpack(...).sum(axis=0)`` but works directly on the
    packed representation: one 256-bin histogram per byte column, dotted with
    the byte→bit table.
    """
    packed_bytes = np.asarray(packed_bytes, dtype=np.uint8)
    if packed_bytes.ndim != 2 or packed_bytes.shape[1] < (num_cols + 7) // 8:
        raise DimensionError(
            f"byte array of shape {packed_bytes.shape} cannot hold "
            f"{num_cols} columns"
        )
    counts = np.zeros(((num_cols + 7) // 8) * 8, dtype=np.int64)
    for byte_index in range((num_cols + 7) // 8):
        histogram = np.bincount(packed_bytes[:, byte_index], minlength=256)
        counts[byte_index * 8 : byte_index * 8 + 8] = histogram @ _BYTE_BIT_TABLE
    return counts[:num_cols]


def unpack_rows(packed: np.ndarray, num_cols: int) -> np.ndarray:
    """Inverse of :func:`pack_rows`; returns a ``uint8`` array of given width."""
    packed = np.ascontiguousarray(np.asarray(packed, dtype=np.uint64))
    if packed.ndim != 2:
        raise DimensionError(
            f"unpack_rows expects a 2-D array, got shape {packed.shape}"
        )
    if packed.shape[1] != num_lanes(num_cols):
        raise DimensionError(
            f"{packed.shape[1]} lanes cannot hold exactly {num_cols} columns"
        )
    rows = packed.shape[0]
    as_bytes = packed.view(np.uint8).reshape(rows, -1)
    if num_cols == 0:
        return np.zeros((rows, 0), dtype=np.uint8)
    return np.unpackbits(as_bytes, axis=1, count=num_cols, bitorder="little")


def pack_vector(bits: np.ndarray) -> np.ndarray:
    """Pack a 1-D ``{0,1}`` array into a ``uint64`` lane vector."""
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.ndim != 1:
        raise DimensionError(f"pack_vector expects a 1-D array, got shape {bits.shape}")
    return pack_rows(bits.reshape(1, -1))[0]


def unpack_vector(packed: np.ndarray, num_cols: int) -> np.ndarray:
    """Inverse of :func:`pack_vector`."""
    packed = np.asarray(packed, dtype=np.uint64)
    return unpack_rows(packed.reshape(1, -1), num_cols)[0]


def _get_bit(packed_row: np.ndarray, col: int) -> int:
    lane, bit = divmod(col, LANE_BITS)
    return int((packed_row[lane] >> np.uint64(bit)) & np.uint64(1))


def _rref_packed(packed: np.ndarray, num_cols: int) -> Tuple[np.ndarray, List[int]]:
    """In-place-style RREF over packed rows; returns (rref, pivot columns)."""
    matrix = packed.copy()
    num_rows = matrix.shape[0]
    pivot_cols: List[int] = []
    pivot_row = 0
    for col in range(num_cols):
        if pivot_row >= num_rows:
            break
        lane, bit = divmod(col, LANE_BITS)
        mask = np.uint64(1) << np.uint64(bit)
        candidates = np.flatnonzero(matrix[pivot_row:, lane] & mask) + pivot_row
        if candidates.size == 0:
            continue
        swap = int(candidates[0])
        if swap != pivot_row:
            matrix[[pivot_row, swap], :] = matrix[[swap, pivot_row], :]
        rows_to_clear = np.flatnonzero(matrix[:, lane] & mask)
        rows_to_clear = rows_to_clear[rows_to_clear != pivot_row]
        if rows_to_clear.size:
            matrix[rows_to_clear, :] ^= matrix[pivot_row, :]
        pivot_cols.append(col)
        pivot_row += 1
    return matrix, pivot_cols


class PackedGF2Matrix:
    """A GF(2) matrix stored as bit-packed ``uint64`` rows.

    Supports exactly the operations the packed backend needs; conversion to
    and from the dense reference types is lossless.
    """

    __slots__ = ("_packed", "_num_cols")

    def __init__(self, packed: np.ndarray, num_cols: int):
        packed = np.ascontiguousarray(np.asarray(packed, dtype=np.uint64))
        if packed.ndim != 2:
            raise DimensionError(
                f"expected a 2-D lane array, got shape {packed.shape}"
            )
        if packed.shape[1] != num_lanes(num_cols):
            raise DimensionError(
                f"{packed.shape[1]} lanes cannot hold exactly {num_cols} columns"
            )
        self._packed = packed
        self._num_cols = int(num_cols)

    # -- constructors -----------------------------------------------------
    @classmethod
    def from_dense(cls, matrix) -> "PackedGF2Matrix":
        """Pack a :class:`GF2Matrix` (or any 2-D 0/1 array) into lanes."""
        dense = matrix.to_numpy() if isinstance(matrix, GF2Matrix) else np.asarray(matrix)
        dense = np.asarray(dense, dtype=np.uint8)
        if dense.ndim != 2:
            raise DimensionError(f"expected a 2-D array, got shape {dense.shape}")
        return cls(pack_rows(dense), dense.shape[1])

    # -- accessors --------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """Number of rows."""
        return int(self._packed.shape[0])

    @property
    def num_cols(self) -> int:
        """Number of (logical) columns."""
        return self._num_cols

    @property
    def shape(self) -> tuple:
        """(rows, columns)."""
        return (self.num_rows, self._num_cols)

    @property
    def lanes(self) -> np.ndarray:
        """The raw packed lane array (a copy)."""
        return self._packed.copy()

    def to_numpy(self) -> np.ndarray:
        """Unpack into a dense ``uint8`` array."""
        return unpack_rows(self._packed, self._num_cols)

    def to_dense(self) -> GF2Matrix:
        """Unpack into the reference :class:`GF2Matrix` type."""
        return GF2Matrix(self.to_numpy())

    def get_bit(self, row: int, col: int) -> int:
        """Return entry ``(row, col)``."""
        if not (0 <= row < self.num_rows and 0 <= col < self._num_cols):
            raise DimensionError(f"index ({row}, {col}) out of range for {self.shape}")
        return _get_bit(self._packed[row], col)

    # -- linear algebra ---------------------------------------------------
    def matvec(self, vector) -> np.ndarray:
        """Return ``A @ x`` over GF(2) as a dense ``uint8`` array.

        ``vector`` may be a :class:`GF2Vector`, a dense 0/1 array of length
        ``num_cols`` or an already-packed ``uint64`` lane vector.
        """
        packed_x = self._coerce_packed_vector(vector)
        products = popcount_u64(self._packed & packed_x[np.newaxis, :])
        return (products.sum(axis=1) & 1).astype(np.uint8)

    def rref(self) -> Tuple["PackedGF2Matrix", Tuple[int, ...]]:
        """Return ``(rref, pivot_columns)``; both stay packed."""
        reduced, pivots = _rref_packed(self._packed, self._num_cols)
        return PackedGF2Matrix(reduced, self._num_cols), tuple(pivots)

    def rank(self) -> int:
        """Return the rank."""
        _, pivots = _rref_packed(self._packed, self._num_cols)
        return len(pivots)

    def null_space(self) -> List[GF2Vector]:
        """Return a basis of the null space as reference vectors."""
        reduced, pivots = _rref_packed(self._packed, self._num_cols)
        pivot_set = set(pivots)
        basis: List[GF2Vector] = []
        for free in range(self._num_cols):
            if free in pivot_set:
                continue
            vector = np.zeros(self._num_cols, dtype=np.uint8)
            vector[free] = 1
            for row_index, pivot in enumerate(pivots):
                if _get_bit(reduced[row_index], free):
                    vector[pivot] = 1
            basis.append(GF2Vector(vector))
        return basis

    def solve(self, rhs) -> GF2Vector:
        """Solve ``A @ x = rhs``; raises :class:`SingularMatrixError` if inconsistent."""
        rhs_bits = (
            rhs.to_numpy() if isinstance(rhs, GF2Vector) else np.asarray(rhs, dtype=np.uint8) & 1
        )
        if rhs_bits.ndim != 1 or rhs_bits.shape[0] != self.num_rows:
            raise DimensionError(
                f"matrix with {self.num_rows} rows cannot equal a vector of "
                f"shape {rhs_bits.shape}"
            )
        augmented_dense = np.hstack([self.to_numpy(), rhs_bits.reshape(-1, 1)])
        augmented = pack_rows(augmented_dense)
        reduced, pivots = _rref_packed(augmented, self._num_cols + 1)
        if self._num_cols in pivots:
            raise SingularMatrixError("linear system is inconsistent over GF(2)")
        solution = np.zeros(self._num_cols, dtype=np.uint8)
        for row_index, col in enumerate(pivots):
            solution[col] = _get_bit(reduced[row_index], self._num_cols)
        return GF2Vector(solution)

    # -- protocol methods -------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, PackedGF2Matrix):
            return NotImplemented
        return self._num_cols == other._num_cols and bool(
            np.array_equal(self._packed, other._packed)
        )

    def __hash__(self) -> int:
        return hash((self.shape, self._packed.tobytes()))

    def __repr__(self) -> str:
        return f"PackedGF2Matrix(shape={self.shape}, lanes={self._packed.shape[1]})"

    def _coerce_packed_vector(self, vector) -> np.ndarray:
        if isinstance(vector, GF2Vector):
            bits = vector.to_numpy()
        else:
            bits = np.asarray(vector)
        if bits.dtype == np.uint64 and bits.ndim == 1:
            if bits.shape[0] != self._packed.shape[1]:
                raise DimensionError(
                    f"packed vector has {bits.shape[0]} lanes, expected "
                    f"{self._packed.shape[1]}"
                )
            return np.ascontiguousarray(bits)
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.ndim != 1 or bits.shape[0] != self._num_cols:
            raise DimensionError(
                f"matrix with {self._num_cols} columns cannot multiply vector "
                f"of shape {bits.shape}"
            )
        return pack_vector(bits)


# ---------------------------------------------------------------------------
# Drop-in equivalents of the repro.gf2.linalg reference functions.
# ---------------------------------------------------------------------------
def _coerce_matrix(matrix) -> PackedGF2Matrix:
    if isinstance(matrix, PackedGF2Matrix):
        return matrix
    return PackedGF2Matrix.from_dense(
        matrix if isinstance(matrix, GF2Matrix) else GF2Matrix(matrix)
    )


def packed_gf2_rref(matrix) -> Tuple[GF2Matrix, Tuple[int, ...]]:
    """Packed equivalent of :func:`repro.gf2.linalg.gf2_rref`."""
    packed = _coerce_matrix(matrix)
    reduced, pivots = packed.rref()
    return reduced.to_dense(), pivots


def packed_gf2_rank(matrix) -> int:
    """Packed equivalent of :func:`repro.gf2.linalg.gf2_rank`."""
    return _coerce_matrix(matrix).rank()


def packed_gf2_null_space(matrix) -> List[GF2Vector]:
    """Packed equivalent of :func:`repro.gf2.linalg.gf2_null_space`."""
    return _coerce_matrix(matrix).null_space()


def packed_gf2_solve(matrix, rhs) -> GF2Vector:
    """Packed equivalent of :func:`repro.gf2.linalg.gf2_solve`."""
    vec = rhs if isinstance(rhs, GF2Vector) else GF2Vector(rhs)
    return _coerce_matrix(matrix).solve(vec)


def packed_matmul(first, second) -> GF2Matrix:
    """Compute ``A @ B`` over GF(2) via packed AND/popcount inner products."""
    a = first if isinstance(first, GF2Matrix) else GF2Matrix(first)
    b = second if isinstance(second, GF2Matrix) else GF2Matrix(second)
    if a.num_cols != b.num_rows:
        raise DimensionError(f"cannot multiply shapes {a.shape} and {b.shape}")
    packed_a = pack_rows(a.to_numpy())
    packed_bt = pack_rows(b.to_numpy().T)
    products = popcount_u64(packed_a[:, np.newaxis, :] & packed_bt[np.newaxis, :, :])
    return GF2Matrix((products.sum(axis=2) & 1).astype(np.uint8))


# ---------------------------------------------------------------------------
# Batched syndrome kernels (the packed simulation backend's hot loop).
# ---------------------------------------------------------------------------
def byte_fold_table(column_ints) -> np.ndarray:
    """Precompute per-byte partial syndromes for a set of integer columns.

    Entry ``[b, v]`` is the XOR of ``column_ints[8*b + j]`` over the set bits
    ``j`` of the byte value ``v``.  Folding a bit-packed word's bytes through
    this table with XOR yields exactly ``sum_{i set} column_ints[i]`` over
    GF(2) — the word's integer syndrome — while touching eight columns per
    lookup instead of one.
    """
    column_ints = [int(value) for value in column_ints]
    num_cols = len(column_ints)
    num_bytes = (num_cols + 7) // 8
    table = np.zeros((num_bytes, 256), dtype=np.int64)
    byte_values = np.arange(256)
    for byte_index in range(num_bytes):
        for bit in range(8):
            col = byte_index * 8 + bit
            if col >= num_cols:
                break
            table[byte_index, ((byte_values >> bit) & 1) == 1] ^= column_ints[col]
    return table


def fold_bytes(table: np.ndarray, packed_bytes: np.ndarray) -> np.ndarray:
    """XOR-fold each row of ``packed_bytes`` through a :func:`byte_fold_table`."""
    packed_bytes = np.asarray(packed_bytes, dtype=np.uint8)
    if packed_bytes.ndim != 2 or packed_bytes.shape[1] != table.shape[0]:
        raise DimensionError(
            f"expected byte array of shape (*, {table.shape[0]}), "
            f"got {packed_bytes.shape}"
        )
    if table.shape[0] == 0:
        return np.zeros(packed_bytes.shape[0], dtype=np.int64)
    values = table[0][packed_bytes[:, 0]]
    for byte_index in range(1, table.shape[0]):
        values ^= table[byte_index][packed_bytes[:, byte_index]]
    return values


#: Cap on the intermediate (batch × rows × lanes) broadcast size, in elements.
_SYNDROME_CHUNK_ELEMENTS = 1 << 22


def batched_syndrome_values(
    packed_check_rows: np.ndarray, packed_words: np.ndarray
) -> np.ndarray:
    """Return per-word syndrome integers for a batch of packed codewords.

    ``packed_check_rows`` holds the ``r`` rows of a parity-check matrix in
    packed form (shape ``(r, lanes)``); ``packed_words`` holds the batch
    (shape ``(batch, lanes)``).  Row ``i`` of the result is the integer whose
    bit ``j`` (LSB first) is ``popcount(H_j & w_i) mod 2`` — identical to the
    reference ``(w @ H.T) % 2`` dotted with powers of two.  (The simulation
    engine's packed backend uses the even faster :func:`fold_bytes` tables;
    this kernel is the lane-level alternative for ad-hoc packed operands.)
    """
    check = np.ascontiguousarray(np.asarray(packed_check_rows, dtype=np.uint64))
    words = np.ascontiguousarray(np.asarray(packed_words, dtype=np.uint64))
    if check.ndim != 2 or words.ndim != 2 or check.shape[1] != words.shape[1]:
        raise DimensionError(
            f"incompatible packed shapes {check.shape} and {words.shape}"
        )
    num_rows = check.shape[0]
    lanes = max(check.shape[1], 1)
    batch = words.shape[0]
    weights = (1 << np.arange(num_rows)).astype(np.int64)
    values = np.empty(batch, dtype=np.int64)
    chunk = max(1, _SYNDROME_CHUNK_ELEMENTS // (num_rows * lanes))
    for start in range(0, batch, chunk):
        block = words[start : start + chunk]
        products = popcount_u64(block[:, np.newaxis, :] & check[np.newaxis, :, :])
        bits = products.sum(axis=2) & 1
        values[start : start + block.shape[0]] = bits.astype(np.int64) @ weights
    if batch == 0:
        return np.zeros(0, dtype=np.int64)
    return values
