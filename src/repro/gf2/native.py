"""Optional numba-jitted tier for the fused syndrome fold.

numba is *not* a dependency of this library.  When it happens to be
installed (the CI job ``fused-native`` provisions it), the fused kernel
(:mod:`repro.einsim.fused`) dispatches its dense byte-fold through
:func:`fold_classify_native` — a single nopython pass over the packed mask
bytes instead of one vectorised gather per byte column.  When numba is
absent, ``native_available()`` is False and the pure-numpy
:func:`repro.gf2.bitpack.fold_bytes` path runs; both compute identical
``int64`` XOR arithmetic, so the tiers are bit-identical by construction
(and the fused differential suite re-runs under numba in CI to prove it).

Set ``REPRO_DISABLE_NATIVE=1`` to force the numpy tier even with numba
installed (useful for differential debugging).
"""

from __future__ import annotations

import os

import numpy as np

from repro.exceptions import ValidationError

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit as _njit

    NATIVE_AVAILABLE = True
except ImportError:  # pragma: no cover - the default environment
    _njit = None
    NATIVE_AVAILABLE = False


def native_available() -> bool:
    """Whether the jitted tier can be used right now."""
    return NATIVE_AVAILABLE and os.environ.get("REPRO_DISABLE_NATIVE") != "1"


def _fold_kernel(mask_bytes, fold_table, syndromes):  # pragma: no cover
    num_words, num_bytes = mask_bytes.shape
    for word in range(num_words):
        value = np.int64(0)
        for byte_index in range(num_bytes):
            value ^= fold_table[byte_index, mask_bytes[word, byte_index]]
        syndromes[word] = value


_compiled_fold = None


def fold_classify_native(
    mask_bytes: np.ndarray, fold_table: np.ndarray
) -> np.ndarray:
    """Jitted equivalent of :func:`repro.gf2.bitpack.fold_bytes`.

    Callers must check :func:`native_available` first; the function compiles
    on first use and raises if numba is missing.
    """
    global _compiled_fold
    if _compiled_fold is None:
        if _njit is None:
            raise ValidationError(
                "fold_classify_native called without numba installed"
            )
        _compiled_fold = _njit(nogil=True)(_fold_kernel)
    mask_bytes = np.ascontiguousarray(mask_bytes, dtype=np.uint8)
    fold_table = np.ascontiguousarray(fold_table, dtype=np.int64)
    syndromes = np.empty(mask_bytes.shape[0], dtype=np.int64)
    _compiled_fold(mask_bytes, fold_table, syndromes)
    return syndromes
