"""Algorithms over GF(2): elimination, rank, solving, span arithmetic.

All routines operate on :class:`~repro.gf2.matrix.GF2Matrix` /
:class:`~repro.gf2.matrix.GF2Vector` instances (or anything convertible to
them) and return new objects; nothing is mutated in place.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import DimensionError, SingularMatrixError, ValidationError
from repro.gf2.matrix import GF2Matrix, GF2Vector


def popcount(value: int) -> int:
    """Return the number of set bits in a non-negative integer."""
    if value < 0:
        raise ValidationError("popcount is only defined for non-negative integers")
    return bin(value).count("1")


def support(value: int) -> Tuple[int, ...]:
    """Return the indices of the set bits of ``value`` (LSB = index 0)."""
    if value < 0:
        raise ValidationError("support is only defined for non-negative integers")
    indices = []
    index = 0
    while value:
        if value & 1:
            indices.append(index)
        value >>= 1
        index += 1
    return tuple(indices)


def vector_from_int(value: int, length: int) -> GF2Vector:
    """Return the length-``length`` vector whose bit ``i`` is bit ``i`` of ``value``."""
    return GF2Vector.from_int(value, length)


def int_from_vector(vector: GF2Vector) -> int:
    """Return the integer encoding of ``vector`` (element ``i`` → bit ``i``)."""
    vec = vector if isinstance(vector, GF2Vector) else GF2Vector(vector)
    return vec.to_int()


def _rref_array(array: np.ndarray) -> Tuple[np.ndarray, List[int]]:
    """Compute the reduced row echelon form of a uint8 array over GF(2).

    Returns the RREF array and the list of pivot column indices.
    """
    matrix = array.copy()
    num_rows, num_cols = matrix.shape
    pivot_cols: List[int] = []
    pivot_row = 0
    for col in range(num_cols):
        if pivot_row >= num_rows:
            break
        candidates = np.flatnonzero(matrix[pivot_row:, col]) + pivot_row
        if candidates.size == 0:
            continue
        swap = int(candidates[0])
        if swap != pivot_row:
            matrix[[pivot_row, swap], :] = matrix[[swap, pivot_row], :]
        rows_to_clear = np.flatnonzero(matrix[:, col])
        for row in rows_to_clear:
            if row != pivot_row:
                matrix[row, :] ^= matrix[pivot_row, :]
        pivot_cols.append(col)
        pivot_row += 1
    return matrix, pivot_cols


def gf2_rref(matrix: GF2Matrix) -> Tuple[GF2Matrix, Tuple[int, ...]]:
    """Return ``(rref, pivot_columns)`` for a GF(2) matrix."""
    mat = matrix if isinstance(matrix, GF2Matrix) else GF2Matrix(matrix)
    rref, pivots = _rref_array(mat.to_numpy())
    return GF2Matrix(rref), tuple(pivots)


def gf2_rank(matrix: GF2Matrix) -> int:
    """Return the rank of a GF(2) matrix."""
    _, pivots = gf2_rref(matrix)
    return len(pivots)


def gf2_solve(matrix: GF2Matrix, rhs: GF2Vector) -> GF2Vector:
    """Solve ``matrix @ x = rhs`` over GF(2).

    Returns one particular solution.  Raises
    :class:`~repro.exceptions.SingularMatrixError` if the system is
    inconsistent.
    """
    mat = matrix if isinstance(matrix, GF2Matrix) else GF2Matrix(matrix)
    vec = rhs if isinstance(rhs, GF2Vector) else GF2Vector(rhs)
    if mat.num_rows != len(vec):
        raise DimensionError(
            f"matrix with {mat.num_rows} rows cannot equal a vector of length {len(vec)}"
        )
    augmented = np.hstack([mat.to_numpy(), vec.to_numpy().reshape(-1, 1)])
    rref, pivots = _rref_array(augmented)
    num_cols = mat.num_cols
    if num_cols in pivots:
        raise SingularMatrixError("linear system is inconsistent over GF(2)")
    solution = np.zeros(num_cols, dtype=np.uint8)
    for row_index, col in enumerate(pivots):
        solution[col] = rref[row_index, num_cols]
    return GF2Vector(solution)


def gf2_solve_affine(
    matrix: GF2Matrix, rhs: GF2Vector
) -> Tuple[GF2Vector, List[GF2Vector]]:
    """Solve ``matrix @ x = rhs`` and also return a basis of the solution space.

    Returns ``(particular, homogeneous_basis)`` so callers can enumerate or
    sample from the full affine solution set.  Raises
    :class:`~repro.exceptions.SingularMatrixError` when inconsistent.
    """
    particular = gf2_solve(matrix, rhs)
    basis = gf2_null_space(matrix)
    return particular, basis


def gf2_null_space(matrix: GF2Matrix) -> List[GF2Vector]:
    """Return a basis (possibly empty) of the null space of a GF(2) matrix."""
    mat = matrix if isinstance(matrix, GF2Matrix) else GF2Matrix(matrix)
    rref, pivots = _rref_array(mat.to_numpy())
    num_cols = mat.num_cols
    pivot_set = set(pivots)
    free_cols = [c for c in range(num_cols) if c not in pivot_set]
    basis: List[GF2Vector] = []
    for free in free_cols:
        vector = np.zeros(num_cols, dtype=np.uint8)
        vector[free] = 1
        for row_index, pivot in enumerate(pivots):
            if rref[row_index, free]:
                vector[pivot] = 1
        basis.append(GF2Vector(vector))
    return basis


def gf2_inverse(matrix: GF2Matrix) -> GF2Matrix:
    """Return the inverse of a square, full-rank GF(2) matrix."""
    mat = matrix if isinstance(matrix, GF2Matrix) else GF2Matrix(matrix)
    if mat.num_rows != mat.num_cols:
        raise DimensionError("only square matrices can be inverted")
    size = mat.num_rows
    augmented = np.hstack([mat.to_numpy(), np.eye(size, dtype=np.uint8)])
    rref, pivots = _rref_array(augmented)
    if list(pivots[:size]) != list(range(size)):
        raise SingularMatrixError("matrix is singular over GF(2)")
    return GF2Matrix(rref[:, size:])


def span(vectors: Iterable[GF2Vector]) -> List[GF2Vector]:
    """Return every element of the span of the given vectors (including zero).

    The result has ``2**rank`` elements; intended for small vector sets such
    as the CHARGED-cell columns examined by BEER.
    """
    vector_list = [v if isinstance(v, GF2Vector) else GF2Vector(v) for v in vectors]
    if not vector_list:
        return []
    length = len(vector_list[0])
    for vec in vector_list:
        if len(vec) != length:
            raise DimensionError("span requires vectors of equal length")
    basis = _reduce_to_basis(vector_list)
    elements = {0}
    for vec in basis:
        value = vec.to_int()
        elements |= {existing ^ value for existing in elements}
    return [GF2Vector.from_int(value, length) for value in sorted(elements)]


def _reduce_to_basis(vectors: Sequence[GF2Vector]) -> List[GF2Vector]:
    """Return an independent subset spanning the same space (integer Gaussian)."""
    basis_ints: List[int] = []
    for vec in vectors:
        value = vec.to_int()
        for pivot in basis_ints:
            value = min(value, value ^ pivot)
        if value:
            basis_ints.append(value)
            basis_ints.sort(reverse=True)
    length = len(vectors[0]) if vectors else 0
    return [GF2Vector.from_int(v, length) for v in basis_ints]


def in_span(target: GF2Vector, vectors: Iterable[GF2Vector]) -> bool:
    """Return True if ``target`` lies in the GF(2) span of ``vectors``."""
    target_vec = target if isinstance(target, GF2Vector) else GF2Vector(target)
    vector_list = [v if isinstance(v, GF2Vector) else GF2Vector(v) for v in vectors]
    if not vector_list:
        return target_vec.is_zero()
    basis = _reduce_to_basis(vector_list)
    value = target_vec.to_int()
    for pivot in (b.to_int() for b in basis):
        value = min(value, value ^ pivot)
    return value == 0


def row_space_equal(first: GF2Matrix, second: GF2Matrix) -> bool:
    """Return True if two matrices have identical row spaces."""
    first_mat = first if isinstance(first, GF2Matrix) else GF2Matrix(first)
    second_mat = second if isinstance(second, GF2Matrix) else GF2Matrix(second)
    if first_mat.num_cols != second_mat.num_cols:
        return False
    rref_first, _ = gf2_rref(first_mat)
    rref_second, _ = gf2_rref(second_mat)
    nonzero_first = [r for r in rref_first.rows() if not r.is_zero()]
    nonzero_second = [r for r in rref_second.rows() if not r.is_zero()]
    return nonzero_first == nonzero_second


def random_full_rank_matrix(
    rows: int, cols: int, rng: Optional[np.random.Generator] = None
) -> GF2Matrix:
    """Return a uniformly random GF(2) matrix of full row rank.

    Useful for generating randomised test fixtures; raises
    :class:`~repro.exceptions.DimensionError` when ``rows > cols`` since full
    row rank is then impossible.
    """
    if rows > cols:
        raise DimensionError("cannot build a full-row-rank matrix with rows > cols")
    generator = rng if rng is not None else np.random.default_rng(0)
    while True:
        candidate = GF2Matrix(generator.integers(0, 2, size=(rows, cols)))
        if gf2_rank(candidate) == rows:
            return candidate
