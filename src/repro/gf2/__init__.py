"""Dense linear algebra over GF(2).

This package provides the finite-field substrate that every other part of the
library builds on: ECC generator/parity-check matrices, syndrome computation,
span-membership tests used by the BEER constraint solver, and the affine
solves used by BEEP's test-pattern crafting.

The central type is :class:`~repro.gf2.matrix.GF2Matrix`, a thin wrapper
around a ``numpy`` ``uint8`` array whose entries are always 0 or 1 and whose
arithmetic is performed modulo 2.  :mod:`repro.gf2.bitpack` provides an
equivalent bit-packed fast path (rows packed into ``uint64`` lanes with
AND/XOR/popcount kernels) selected through the ``packed`` simulation backend;
the uint8 implementation remains the reference oracle.
"""

from repro.gf2.matrix import GF2Matrix, GF2Vector
from repro.gf2.bitpack import (
    PackedGF2Matrix,
    batched_syndrome_values,
    pack_rows,
    pack_vector,
    packed_gf2_null_space,
    packed_gf2_rank,
    packed_gf2_rref,
    packed_gf2_solve,
    packed_matmul,
    popcount_u64,
    unpack_rows,
    unpack_vector,
)
from repro.gf2.linalg import (
    gf2_rank,
    gf2_rref,
    gf2_solve,
    gf2_null_space,
    gf2_inverse,
    in_span,
    span,
    row_space_equal,
    vector_from_int,
    int_from_vector,
    popcount,
    support,
)

__all__ = [
    "GF2Matrix",
    "GF2Vector",
    "gf2_rank",
    "gf2_rref",
    "gf2_solve",
    "gf2_null_space",
    "gf2_inverse",
    "in_span",
    "span",
    "row_space_equal",
    "vector_from_int",
    "int_from_vector",
    "popcount",
    "support",
    "PackedGF2Matrix",
    "batched_syndrome_values",
    "pack_rows",
    "pack_vector",
    "packed_gf2_null_space",
    "packed_gf2_rank",
    "packed_gf2_rref",
    "packed_gf2_solve",
    "packed_matmul",
    "popcount_u64",
    "unpack_rows",
    "unpack_vector",
]
