"""A dense matrix type over GF(2).

``GF2Matrix`` wraps a two-dimensional ``numpy.uint8`` array whose entries are
restricted to {0, 1}.  Addition is XOR and multiplication is AND, i.e. all
arithmetic is carried out modulo 2.  The class is deliberately small and
explicit: it supports exactly the operations the rest of the library needs
(construction, slicing, concatenation, matrix products, equality, hashing of
immutable snapshots) and delegates the heavier algorithms (RREF, rank, solve,
null space) to :mod:`repro.gf2.linalg`.

``GF2Vector`` is a one-dimensional counterpart used for datawords, codewords
and syndromes.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

import numpy as np

from repro.exceptions import DimensionError, ReproError, ValidationError

ArrayLike = Union["GF2Matrix", "GF2Vector", np.ndarray, Sequence]


def _coerce_array(data: ArrayLike, ndim: int) -> np.ndarray:
    """Convert ``data`` into a ``uint8`` array of the requested rank.

    Values are reduced modulo 2 so callers may pass ordinary integer arrays.
    """
    if isinstance(data, (GF2Matrix, GF2Vector)):
        array = data.to_numpy()
    else:
        array = np.asarray(data)
    if array.ndim != ndim:
        raise DimensionError(
            f"expected a {ndim}-dimensional array, got shape {array.shape}"
        )
    return np.mod(array.astype(np.int64), 2).astype(np.uint8)


class GF2Vector:
    """A vector over GF(2).

    Parameters
    ----------
    data:
        Any one-dimensional sequence of integers; values are reduced mod 2.
    """

    __slots__ = ("_data",)

    def __init__(self, data: ArrayLike):
        self._data = _coerce_array(data, ndim=1)

    # -- constructors -----------------------------------------------------
    @classmethod
    def zeros(cls, length: int) -> "GF2Vector":
        """Return the all-zero vector of the given length."""
        return cls(np.zeros(length, dtype=np.uint8))

    @classmethod
    def ones(cls, length: int) -> "GF2Vector":
        """Return the all-one vector of the given length."""
        return cls(np.ones(length, dtype=np.uint8))

    @classmethod
    def unit(cls, length: int, index: int) -> "GF2Vector":
        """Return the standard basis vector ``e_index`` of the given length."""
        if not 0 <= index < length:
            raise DimensionError(f"unit index {index} out of range for length {length}")
        vec = np.zeros(length, dtype=np.uint8)
        vec[index] = 1
        return cls(vec)

    @classmethod
    def from_support(cls, length: int, support: Iterable[int]) -> "GF2Vector":
        """Return the vector of the given length with ones at ``support``."""
        vec = np.zeros(length, dtype=np.uint8)
        for index in support:
            if not 0 <= index < length:
                raise DimensionError(
                    f"support index {index} out of range for length {length}"
                )
            vec[index] = 1
        return cls(vec)

    @classmethod
    def from_int(cls, value: int, length: int) -> "GF2Vector":
        """Return the vector whose bit ``i`` is bit ``i`` of ``value`` (LSB first)."""
        if value < 0:
            raise ValidationError("value must be non-negative")
        if value >> length:
            raise DimensionError(f"value {value} does not fit in {length} bits")
        bits = [(value >> i) & 1 for i in range(length)]
        return cls(bits)

    # -- accessors --------------------------------------------------------
    def to_numpy(self) -> np.ndarray:
        """Return a copy of the underlying ``uint8`` array."""
        return self._data.copy()

    def to_int(self) -> int:
        """Return the integer whose bit ``i`` (LSB first) is element ``i``."""
        value = 0
        for i, bit in enumerate(self._data):
            if bit:
                value |= 1 << i
        return value

    def to_list(self) -> list:
        """Return the elements as a list of Python ints."""
        return [int(b) for b in self._data]

    @property
    def support(self) -> tuple:
        """Indices of the non-zero entries, in increasing order."""
        return tuple(int(i) for i in np.flatnonzero(self._data))

    @property
    def weight(self) -> int:
        """Hamming weight (number of ones)."""
        return int(self._data.sum())

    def is_zero(self) -> bool:
        """Return True if every entry is zero."""
        return not self._data.any()

    # -- arithmetic -------------------------------------------------------
    def __add__(self, other: "GF2Vector") -> "GF2Vector":
        other_vec = GF2Vector(other) if not isinstance(other, GF2Vector) else other
        if len(self) != len(other_vec):
            raise DimensionError(
                f"cannot add vectors of lengths {len(self)} and {len(other_vec)}"
            )
        return GF2Vector(np.bitwise_xor(self._data, other_vec._data))

    __xor__ = __add__
    __sub__ = __add__

    def __mul__(self, other: "GF2Vector") -> int:
        """Inner product over GF(2)."""
        other_vec = GF2Vector(other) if not isinstance(other, GF2Vector) else other
        if len(self) != len(other_vec):
            raise DimensionError(
                f"cannot take inner product of lengths {len(self)} and {len(other_vec)}"
            )
        return int(np.bitwise_and(self._data, other_vec._data).sum() % 2)

    def flip(self, index: int) -> "GF2Vector":
        """Return a copy with the bit at ``index`` flipped."""
        data = self._data.copy()
        data[index] ^= 1
        return GF2Vector(data)

    # -- protocol methods -------------------------------------------------
    def __len__(self) -> int:
        return int(self._data.shape[0])

    def __getitem__(self, index):
        result = self._data[index]
        if isinstance(index, slice) or isinstance(index, (list, np.ndarray)):
            return GF2Vector(result)
        return int(result)

    def __iter__(self):
        return (int(b) for b in self._data)

    def __eq__(self, other) -> bool:
        if not isinstance(other, GF2Vector):
            try:
                other = GF2Vector(other)
            except (ReproError, TypeError, ValueError):
                return NotImplemented
        return len(self) == len(other) and bool(np.array_equal(self._data, other._data))

    def __hash__(self) -> int:
        return hash((len(self), self.to_int()))

    def __repr__(self) -> str:
        bits = "".join(str(int(b)) for b in self._data)
        return f"GF2Vector('{bits}')"


class GF2Matrix:
    """A dense matrix over GF(2).

    Parameters
    ----------
    data:
        Any two-dimensional sequence of integers; values are reduced mod 2.
    """

    __slots__ = ("_data",)

    def __init__(self, data: ArrayLike):
        self._data = _coerce_array(data, ndim=2)

    # -- constructors -----------------------------------------------------
    @classmethod
    def zeros(cls, rows: int, cols: int) -> "GF2Matrix":
        """Return the all-zero matrix with the given shape."""
        return cls(np.zeros((rows, cols), dtype=np.uint8))

    @classmethod
    def identity(cls, size: int) -> "GF2Matrix":
        """Return the ``size`` × ``size`` identity matrix."""
        return cls(np.eye(size, dtype=np.uint8))

    @classmethod
    def from_rows(cls, rows: Iterable[ArrayLike]) -> "GF2Matrix":
        """Build a matrix from an iterable of equal-length row vectors."""
        row_arrays = [GF2Vector(row).to_numpy() for row in rows]
        if not row_arrays:
            raise DimensionError("cannot build a matrix from zero rows")
        lengths = {len(row) for row in row_arrays}
        if len(lengths) != 1:
            raise DimensionError(f"rows have inconsistent lengths: {sorted(lengths)}")
        return cls(np.vstack(row_arrays))

    @classmethod
    def from_columns(cls, columns: Iterable[ArrayLike]) -> "GF2Matrix":
        """Build a matrix from an iterable of equal-length column vectors."""
        return cls.from_rows(columns).transpose()

    # -- accessors --------------------------------------------------------
    def to_numpy(self) -> np.ndarray:
        """Return a copy of the underlying ``uint8`` array."""
        return self._data.copy()

    @property
    def shape(self) -> tuple:
        """(rows, columns)."""
        return (int(self._data.shape[0]), int(self._data.shape[1]))

    @property
    def num_rows(self) -> int:
        """Number of rows."""
        return int(self._data.shape[0])

    @property
    def num_cols(self) -> int:
        """Number of columns."""
        return int(self._data.shape[1])

    def row(self, index: int) -> GF2Vector:
        """Return row ``index`` as a vector."""
        return GF2Vector(self._data[index, :])

    def column(self, index: int) -> GF2Vector:
        """Return column ``index`` as a vector."""
        return GF2Vector(self._data[:, index])

    def rows(self) -> list:
        """Return all rows as a list of vectors."""
        return [self.row(i) for i in range(self.num_rows)]

    def columns(self) -> list:
        """Return all columns as a list of vectors."""
        return [self.column(j) for j in range(self.num_cols)]

    def submatrix(self, rows=None, cols=None) -> "GF2Matrix":
        """Return the submatrix selected by the given row/column index lists."""
        data = self._data
        if rows is not None:
            data = data[np.asarray(list(rows), dtype=np.intp), :]
        if cols is not None:
            data = data[:, np.asarray(list(cols), dtype=np.intp)]
        return GF2Matrix(data)

    # -- structure --------------------------------------------------------
    def transpose(self) -> "GF2Matrix":
        """Return the transpose."""
        return GF2Matrix(self._data.T)

    @property
    def T(self) -> "GF2Matrix":
        """Alias for :meth:`transpose`."""
        return self.transpose()

    def hstack(self, other: "GF2Matrix") -> "GF2Matrix":
        """Concatenate ``other`` to the right of this matrix."""
        other_mat = other if isinstance(other, GF2Matrix) else GF2Matrix(other)
        if self.num_rows != other_mat.num_rows:
            raise DimensionError(
                f"cannot hstack matrices with {self.num_rows} and "
                f"{other_mat.num_rows} rows"
            )
        return GF2Matrix(np.hstack([self._data, other_mat._data]))

    def vstack(self, other: "GF2Matrix") -> "GF2Matrix":
        """Concatenate ``other`` below this matrix."""
        other_mat = other if isinstance(other, GF2Matrix) else GF2Matrix(other)
        if self.num_cols != other_mat.num_cols:
            raise DimensionError(
                f"cannot vstack matrices with {self.num_cols} and "
                f"{other_mat.num_cols} columns"
            )
        return GF2Matrix(np.vstack([self._data, other_mat._data]))

    def with_column_order(self, order: Sequence[int]) -> "GF2Matrix":
        """Return a copy whose columns are permuted into the given order."""
        if sorted(order) != list(range(self.num_cols)):
            raise DimensionError("column order must be a permutation of all columns")
        return GF2Matrix(self._data[:, np.asarray(order, dtype=np.intp)])

    def with_row_order(self, order: Sequence[int]) -> "GF2Matrix":
        """Return a copy whose rows are permuted into the given order."""
        if sorted(order) != list(range(self.num_rows)):
            raise DimensionError("row order must be a permutation of all rows")
        return GF2Matrix(self._data[np.asarray(order, dtype=np.intp), :])

    # -- arithmetic -------------------------------------------------------
    def __add__(self, other: "GF2Matrix") -> "GF2Matrix":
        other_mat = other if isinstance(other, GF2Matrix) else GF2Matrix(other)
        if self.shape != other_mat.shape:
            raise DimensionError(
                f"cannot add matrices of shapes {self.shape} and {other_mat.shape}"
            )
        return GF2Matrix(np.bitwise_xor(self._data, other_mat._data))

    __xor__ = __add__
    __sub__ = __add__

    def __matmul__(self, other):
        if isinstance(other, GF2Vector) or (
            not isinstance(other, GF2Matrix) and np.asarray(other).ndim == 1
        ):
            vector = other if isinstance(other, GF2Vector) else GF2Vector(other)
            if self.num_cols != len(vector):
                raise DimensionError(
                    f"matrix with {self.num_cols} columns cannot multiply "
                    f"vector of length {len(vector)}"
                )
            product = self._data.astype(np.int64) @ vector.to_numpy().astype(np.int64)
            return GF2Vector(product % 2)
        other_mat = other if isinstance(other, GF2Matrix) else GF2Matrix(other)
        if self.num_cols != other_mat.num_rows:
            raise DimensionError(
                f"cannot multiply shapes {self.shape} and {other_mat.shape}"
            )
        product = self._data.astype(np.int64) @ other_mat._data.astype(np.int64)
        return GF2Matrix(product % 2)

    def is_zero(self) -> bool:
        """Return True if every entry is zero."""
        return not self._data.any()

    # -- protocol methods -------------------------------------------------
    def __getitem__(self, index) -> int:
        row, col = index
        return int(self._data[row, col])

    def __eq__(self, other) -> bool:
        if not isinstance(other, GF2Matrix):
            try:
                other = GF2Matrix(other)
            except (ReproError, TypeError, ValueError):
                return NotImplemented
        return self.shape == other.shape and bool(
            np.array_equal(self._data, other._data)
        )

    def __hash__(self) -> int:
        return hash((self.shape, self._data.tobytes()))

    def __repr__(self) -> str:
        rows = [" ".join(str(int(b)) for b in row) for row in self._data]
        body = "\n ".join(rows)
        return f"GF2Matrix(\n {body}\n)"
