"""Exception hierarchy for the BEER reproduction library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch every failure mode of the library with a single ``except`` clause
while still being able to distinguish the individual categories.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class DimensionError(ReproError):
    """Raised when matrix/vector dimensions are inconsistent."""


class SingularMatrixError(ReproError):
    """Raised when a linear system has no solution."""


class CodeConstructionError(ReproError):
    """Raised when an ECC code cannot be constructed from the given spec."""


class DecodingError(ReproError):
    """Raised when a codeword cannot be decoded under the requested policy."""


class ChipConfigurationError(ReproError):
    """Raised when a DRAM chip model is configured inconsistently."""


class AddressError(ReproError):
    """Raised when a DRAM address is out of range or misaligned."""


class ProfileError(ReproError):
    """Raised when a miscorrection profile is malformed or inconsistent."""


class SolverError(ReproError):
    """Raised when a BEER/SAT solver is used incorrectly."""


class UnsatisfiableError(SolverError):
    """Raised when constraints admit no solution and one was required."""


class PatternCraftingError(ReproError):
    """Raised when BEEP cannot craft a test pattern for a target bit."""


class ScenarioError(ReproError):
    """Raised when a fault scenario or sweep specification is invalid."""
