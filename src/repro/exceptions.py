"""Exception hierarchy for the BEER reproduction library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch every failure mode of the library with a single ``except`` clause
while still being able to distinguish the individual categories.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ValidationError(ReproError, ValueError):
    """Raised when an argument value is out of range or malformed.

    Inherits from :class:`ValueError` so call sites that predate the
    unified hierarchy — and external callers using the modules directly —
    can keep catching ``ValueError``.
    """


class UnknownNameError(ReproError, KeyError):
    """Raised when a name (benchmark, metric, family, ...) is not registered.

    Inherits from :class:`KeyError` for the same compatibility reason as
    :class:`ValidationError`.  Note ``str(KeyError(msg))`` quotes the
    message; :meth:`__str__` undoes that so CLI output stays readable.
    """

    def __str__(self) -> str:
        return str(self.args[0]) if self.args else ""


class DimensionError(ReproError):
    """Raised when matrix/vector dimensions are inconsistent."""


class SingularMatrixError(ReproError):
    """Raised when a linear system has no solution."""


class CodeConstructionError(ReproError):
    """Raised when an ECC code cannot be constructed from the given spec."""


class DecodingError(ReproError):
    """Raised when a codeword cannot be decoded under the requested policy."""


class ChipConfigurationError(ReproError):
    """Raised when a DRAM chip model is configured inconsistently."""


class AddressError(ReproError):
    """Raised when a DRAM address is out of range or misaligned."""


class ProfileError(ReproError):
    """Raised when a miscorrection profile is malformed or inconsistent."""


class SolverError(ReproError):
    """Raised when a BEER/SAT solver is used incorrectly."""


class UnsatisfiableError(SolverError):
    """Raised when constraints admit no solution and one was required."""


class BudgetExhaustedError(SolverError):
    """Raised when a solver's conflict budget runs out before a verdict.

    This is the *indeterminate* outcome: the formula may be SAT or UNSAT, the
    solver simply was not allowed enough conflicts to decide.  It is a
    distinct type so callers can tell a resource limit apart from the
    encoding/usage errors that also raise :class:`SolverError`.
    """

    def __init__(self, budget: int, conflicts: int):
        super().__init__(
            f"conflict budget exhausted: no verdict after {conflicts} conflicts "
            f"(budget {budget})"
        )
        #: The conflict budget that was in effect.
        self.budget = budget
        #: Conflicts consumed by this solve call when the budget ran out.
        self.conflicts = conflicts


class PatternCraftingError(ReproError):
    """Raised when BEEP cannot craft a test pattern for a target bit."""


class ScenarioError(ReproError):
    """Raised when a fault scenario or sweep specification is invalid."""


class StoreError(ReproError):
    """Raised when the campaign store cannot complete an operation."""


class StoreLockTimeoutError(StoreError):
    """Raised when the store's advisory lock cannot be acquired in time.

    The store lock serialises appends from many writer processes; a healthy
    holder releases it in milliseconds.  Waiting out the (generous) timeout
    therefore means a peer is wedged or dead-with-lock — a fleet worker
    should fail loudly with the lock path instead of hanging forever.
    """

    def __init__(self, lock_path: str, waited_s: float):
        super().__init__(
            f"could not acquire store lock {lock_path} after waiting "
            f"{waited_s:.1f}s; a peer writer is wedged or died holding it "
            "(override the limit with REPRO_STORE_LOCK_TIMEOUT)"
        )
        #: Path of the lock file that could not be acquired.
        self.lock_path = lock_path
        #: Seconds this process waited before giving up.
        self.waited_s = waited_s
