"""Systematic linear block codes in standard form.

The paper (Section 4.2.1) argues that, because on-die ECC never exposes its
parity bits, the ECC function may be assumed without loss of generality to be
a *systematic* code in *standard form*: the parity-check matrix is

    H = [ P | I ]            (r rows, n = k + r columns)

where the first ``k`` columns correspond to the data bits and the trailing
``r`` columns form an identity over the parity bits.  A codeword is laid out
as ``c = [d | p]`` with ``p = P · d``.

:class:`SystematicLinearCode` captures exactly this representation and is the
single code type used throughout the library.  Construction logic lives in
the pluggable code-family registry (:mod:`repro.ecc.family`), with the
historical SEC-Hamming helpers in :mod:`repro.ecc.hamming`; each code carries
its family name and decode policy (correct-then-detect vs. detect-only) so
downstream layers dispatch without further lookups.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import CodeConstructionError, DimensionError
from repro.gf2 import GF2Matrix, GF2Vector
from repro.gf2.bitpack import byte_fold_table


class SystematicLinearCode:
    """A systematic linear block code ``H = [P | I]`` over GF(2).

    Parameters
    ----------
    parity_submatrix:
        The ``r × k`` submatrix ``P`` mapping datawords to parity bits.
    family:
        Name of the code family this code belongs to (metadata; see
        :mod:`repro.ecc.family`).  Defaults to ``"sec-hamming"``, the
        historical single family of the library.
    detect_only:
        Decode policy.  ``False`` (default): the decoder flips the bit the
        syndrome points at, if any.  ``True``: the decoder never corrects and
        flags every non-zero syndrome as a detected-uncorrectable error (DUE)
        — the semantics of parity-check and duplication codes.

    Notes
    -----
    * Data bits occupy codeword positions ``0 .. k-1``.
    * Parity bits occupy codeword positions ``k .. n-1``.
    * The code corrects a single bit error iff all columns of ``H`` are
      distinct and non-zero (:meth:`is_single_error_correcting`) *and* the
      decode policy is not detect-only.
    * Equality and hashing consider only the parity submatrix; the family
      tag and decode policy are descriptive metadata.
    """

    def __init__(
        self,
        parity_submatrix: GF2Matrix,
        family: str = "sec-hamming",
        detect_only: bool = False,
    ):
        matrix = (
            parity_submatrix
            if isinstance(parity_submatrix, GF2Matrix)
            else GF2Matrix(parity_submatrix)
        )
        if matrix.num_rows == 0 or matrix.num_cols == 0:
            raise CodeConstructionError("parity submatrix must be non-empty")
        self._parity_submatrix = matrix
        self._family = str(family)
        self._detect_only = bool(detect_only)
        self._num_parity_bits = matrix.num_rows
        self._num_data_bits = matrix.num_cols
        identity = GF2Matrix.identity(self._num_parity_bits)
        self._parity_check_matrix = matrix.hstack(identity)
        self._column_ints = tuple(
            self._parity_check_matrix.column(j).to_int()
            for j in range(self.codeword_length)
        )
        # Lazily-built decode/encode artefacts shared by every batched
        # operation on this code (see the cached-table accessors below).
        self._syndrome_position_table: Optional[np.ndarray] = None
        self._decode_action_table: Optional[np.ndarray] = None
        self._h_transpose_int64: Optional[np.ndarray] = None
        self._syndrome_weights: Optional[np.ndarray] = None
        self._syndrome_fold_table: Optional[np.ndarray] = None
        self._parity_fold_table: Optional[np.ndarray] = None
        self._packed_h_rows: Optional[np.ndarray] = None
        self._packed_h_lanes: Optional[np.ndarray] = None

    # -- constructors -----------------------------------------------------
    @classmethod
    def from_parity_columns(
        cls,
        columns: Sequence[int],
        num_parity_bits: int,
        family: str = "sec-hamming",
        detect_only: bool = False,
    ) -> "SystematicLinearCode":
        """Build a code from integer-encoded columns of ``P`` (LSB = row 0)."""
        vectors = [GF2Vector.from_int(col, num_parity_bits) for col in columns]
        return cls(GF2Matrix.from_columns(vectors), family=family, detect_only=detect_only)

    @classmethod
    def from_parity_check_matrix(cls, matrix: GF2Matrix) -> "SystematicLinearCode":
        """Build a code from a full standard-form parity-check matrix ``[P | I]``.

        Raises :class:`~repro.exceptions.CodeConstructionError` if the trailing
        square block is not the identity.
        """
        full = matrix if isinstance(matrix, GF2Matrix) else GF2Matrix(matrix)
        num_parity = full.num_rows
        num_total = full.num_cols
        if num_total <= num_parity:
            raise CodeConstructionError(
                "parity-check matrix must have more columns than rows"
            )
        identity_block = full.submatrix(cols=range(num_total - num_parity, num_total))
        if identity_block != GF2Matrix.identity(num_parity):
            raise CodeConstructionError(
                "parity-check matrix is not in standard form [P | I]"
            )
        parity_submatrix = full.submatrix(cols=range(num_total - num_parity))
        return cls(parity_submatrix)

    # -- family metadata ---------------------------------------------------
    @property
    def family_name(self) -> str:
        """Name of the code family this code was constructed by (metadata)."""
        return self._family

    @property
    def detect_only(self) -> bool:
        """True when the decoder must never correct, only flag DUEs."""
        return self._detect_only

    # -- dimensions -------------------------------------------------------
    @property
    def num_data_bits(self) -> int:
        """``k`` — the number of data bits per ECC word."""
        return self._num_data_bits

    @property
    def num_parity_bits(self) -> int:
        """``r = n - k`` — the number of parity-check bits."""
        return self._num_parity_bits

    @property
    def codeword_length(self) -> int:
        """``n = k + r`` — the total codeword length."""
        return self._num_data_bits + self._num_parity_bits

    @property
    def data_bit_positions(self) -> range:
        """Codeword positions holding data bits."""
        return range(self._num_data_bits)

    @property
    def parity_bit_positions(self) -> range:
        """Codeword positions holding parity bits."""
        return range(self._num_data_bits, self.codeword_length)

    # -- matrices ---------------------------------------------------------
    @property
    def parity_submatrix(self) -> GF2Matrix:
        """The ``r × k`` submatrix ``P``."""
        return self._parity_submatrix

    @property
    def parity_check_matrix(self) -> GF2Matrix:
        """The full ``r × n`` parity-check matrix ``H = [P | I]``."""
        return self._parity_check_matrix

    @property
    def generator_matrix(self) -> GF2Matrix:
        """The ``n × k`` generator ``G`` such that ``c = G · d`` (systematic)."""
        identity = GF2Matrix.identity(self._num_data_bits)
        return identity.vstack(self._parity_submatrix)

    def column(self, position: int) -> GF2Vector:
        """Return column ``position`` of ``H`` (the syndrome of a single error there)."""
        return self._parity_check_matrix.column(position)

    def column_int(self, position: int) -> int:
        """Return column ``position`` of ``H`` encoded as an integer (LSB = row 0)."""
        return self._column_ints[position]

    @property
    def column_ints(self) -> Tuple[int, ...]:
        """All ``n`` columns of ``H`` as integers, data columns first."""
        return self._column_ints

    @property
    def parity_column_ints(self) -> Tuple[int, ...]:
        """The ``k`` data-bit columns of ``H`` (i.e. the columns of ``P``) as integers."""
        return self._column_ints[: self._num_data_bits]

    # -- cached batched-decode artefacts ------------------------------------
    #: Largest parity-bit count for which the dense per-syndrome decode
    #: tables (``2**r`` entries) are built.  Beyond this the allocation is
    #: gigabytes; families that can exceed it (repetition) refuse construction
    #: with a clear error instead of letting numpy crash or the machine OOM.
    MAX_TABLE_PARITY_BITS = 24

    def syndrome_position_table(self) -> np.ndarray:
        """Map syndrome integer → corrected codeword position (``-1`` = none).

        Built once per code and cached; every batched decode (both backends)
        indexes into the same array.  Callers must not mutate the result.
        """
        if self._syndrome_position_table is None:
            self._check_table_size()
            self._syndrome_position_table = self._build_syndrome_position_table()
        return self._syndrome_position_table

    def _check_table_size(self) -> None:
        if self._num_parity_bits > self.MAX_TABLE_PARITY_BITS:
            raise CodeConstructionError(
                f"r={self._num_parity_bits} parity bits would need a "
                f"2**{self._num_parity_bits}-entry syndrome table; table-based "
                f"decoding supports r <= {self.MAX_TABLE_PARITY_BITS}"
            )

    def _build_syndrome_position_table(self) -> np.ndarray:
        table = np.full(1 << self._num_parity_bits, -1, dtype=np.int64)
        # Iterate in reverse so that, in the degenerate case of duplicate
        # columns, the *lowest* position wins — matching syndrome_to_position.
        for position in range(self.codeword_length - 1, -1, -1):
            table[self._column_ints[position]] = position
        table[0] = -1
        return table

    #: ``decode_action_table`` entry meaning "no action" (zero syndrome).
    ACTION_NONE = -1
    #: ``decode_action_table`` entry meaning "detect, don't flip" (DUE).
    ACTION_DETECT = -2

    def decode_action_table(self) -> np.ndarray:
        """Map syndrome integer → decode action, respecting the decode policy.

        Entries: a codeword position ``>= 0`` means "flip that bit"; the
        sentinel :data:`ACTION_DETECT` (``-2``) means "detect, don't flip" —
        the detected-uncorrectable (DUE) path; :data:`ACTION_NONE` (``-1``)
        marks the zero syndrome (no action, no detection).  For a
        ``detect_only`` code every non-zero syndrome is a DUE; otherwise the
        table is the syndrome-position table with its unmatched entries
        encoded as DUEs.  Built once per code and cached; callers must not
        mutate the result.
        """
        if self._decode_action_table is None:
            self._check_table_size()
            if self._detect_only:
                table = np.full(
                    1 << self._num_parity_bits, self.ACTION_DETECT, dtype=np.int64
                )
            else:
                table = self.syndrome_position_table().copy()
                table[table < 0] = self.ACTION_DETECT
            table[0] = self.ACTION_NONE
            self._decode_action_table = table
        return self._decode_action_table

    def h_transpose_int64(self) -> np.ndarray:
        """``H.T`` as a cached ``int64`` array (reference-backend syndromes)."""
        if self._h_transpose_int64 is None:
            self._h_transpose_int64 = (
                self._parity_check_matrix.to_numpy().T.astype(np.int64)
            )
        return self._h_transpose_int64

    def syndrome_weights(self) -> np.ndarray:
        """Cached powers of two converting syndrome bit rows to integers."""
        if self._syndrome_weights is None:
            self._syndrome_weights = (
                1 << np.arange(self._num_parity_bits, dtype=np.int64)
            )
        return self._syndrome_weights

    def syndrome_fold_table(self) -> np.ndarray:
        """Per-byte partial-syndrome table over all ``n`` columns of ``H`` (cached)."""
        if self._syndrome_fold_table is None:
            self._syndrome_fold_table = byte_fold_table(self._column_ints)
        return self._syndrome_fold_table

    def parity_fold_table(self) -> np.ndarray:
        """Per-byte partial-parity table over the ``k`` columns of ``P`` (cached)."""
        if self._parity_fold_table is None:
            self._parity_fold_table = byte_fold_table(
                self._column_ints[: self._num_data_bits]
            )
        return self._parity_fold_table

    def packed_h_rows(self) -> np.ndarray:
        """The ``r`` rows of ``H`` byte-packed LSB-first (cached).

        Shape ``(r, ceil(n / 8))`` ``uint8`` — the same layout
        ``np.packbits(words, axis=1, bitorder="little")`` gives a batch of
        codewords, so ``packed_word & packed_h_rows()[i]`` selects exactly the
        columns of row ``i``.  Used by the tiny-``r`` syndrome fast path,
        where a full byte-fold table costs more than it saves.
        """
        if self._packed_h_rows is None:
            self._packed_h_rows = np.packbits(
                self._parity_check_matrix.to_numpy(), axis=1, bitorder="little"
            )
        return self._packed_h_rows

    def packed_h_lanes(self) -> np.ndarray:
        """The ``r`` rows of ``H`` packed into ``uint64`` lanes (cached).

        Shape ``(r, ceil(n / 64))`` ``<u8``-endian ``uint64`` — the lane view
        of :meth:`packed_h_rows`, aligned with
        :func:`repro.gf2.bitpack.pack_rows` batches.  Used by the tiny-``r``
        syndrome fast path, which reduces masked lanes with XOR + popcount.
        """
        if self._packed_h_lanes is None:
            from repro.gf2.bitpack import bytes_to_lanes

            self._packed_h_lanes = bytes_to_lanes(
                self.packed_h_rows(), self.codeword_length
            )
        return self._packed_h_lanes

    # -- encoding / syndromes ----------------------------------------------
    def encode(self, dataword: GF2Vector) -> GF2Vector:
        """Encode a ``k``-bit dataword into an ``n``-bit codeword ``[d | p]``."""
        data = dataword if isinstance(dataword, GF2Vector) else GF2Vector(dataword)
        if len(data) != self._num_data_bits:
            raise DimensionError(
                f"dataword length {len(data)} does not match k={self._num_data_bits}"
            )
        parity = self._parity_submatrix @ data
        return GF2Vector(list(data) + list(parity))

    def extract_dataword(self, codeword: GF2Vector) -> GF2Vector:
        """Return the data portion (first ``k`` bits) of a codeword."""
        word = codeword if isinstance(codeword, GF2Vector) else GF2Vector(codeword)
        if len(word) != self.codeword_length:
            raise DimensionError(
                f"codeword length {len(word)} does not match n={self.codeword_length}"
            )
        return word[0 : self._num_data_bits]

    def syndrome(self, codeword: GF2Vector) -> GF2Vector:
        """Return ``H · c`` for a (possibly erroneous) codeword."""
        word = codeword if isinstance(codeword, GF2Vector) else GF2Vector(codeword)
        if len(word) != self.codeword_length:
            raise DimensionError(
                f"codeword length {len(word)} does not match n={self.codeword_length}"
            )
        return self._parity_check_matrix @ word

    def syndrome_of_error_positions(self, positions: Iterable[int]) -> GF2Vector:
        """Return the syndrome produced by errors at exactly the given positions."""
        value = 0
        for position in positions:
            if not 0 <= position < self.codeword_length:
                raise DimensionError(
                    f"error position {position} out of range for n={self.codeword_length}"
                )
            value ^= self._column_ints[position]
        return GF2Vector.from_int(value, self._num_parity_bits)

    def is_codeword(self, codeword: GF2Vector) -> bool:
        """Return True if ``codeword`` has a zero syndrome."""
        return self.syndrome(codeword).is_zero()

    def syndrome_to_position(self, syndrome: GF2Vector) -> Optional[int]:
        """Map a syndrome to the codeword position it points at, if any.

        Returns ``None`` for the zero syndrome and for syndromes that match no
        column of ``H`` (possible for shortened codes).  If several columns
        matched — which cannot happen for a valid SEC code — the lowest
        position is returned.
        """
        value = (
            syndrome.to_int()
            if isinstance(syndrome, GF2Vector)
            else GF2Vector(syndrome).to_int()
        )
        if value == 0:
            return None
        try:
            return self._column_ints.index(value)
        except ValueError:
            return None

    # -- code properties ---------------------------------------------------
    def is_single_error_correcting(self) -> bool:
        """True iff every column of ``H`` is non-zero and all columns are distinct."""
        if 0 in self._column_ints:
            return False
        return len(set(self._column_ints)) == len(self._column_ints)

    def minimum_distance(self) -> int:
        """Return the minimum distance of the code.

        Computed from the parity-check columns: the minimum distance is the
        smallest number of columns of ``H`` that XOR to zero.  This is
        exponential in general, so the search is capped at distance 4 which is
        sufficient to distinguish the cases relevant to SEC on-die ECC
        (d = 1, 2, 3 or ``>= 4``).
        """
        columns = self._column_ints
        if 0 in columns:
            return 1
        if len(set(columns)) != len(columns):
            return 2
        column_set = set(columns)
        for i in range(len(columns)):
            for j in range(i + 1, len(columns)):
                combined = columns[i] ^ columns[j]
                if combined in column_set and columns.index(combined) not in (i, j):
                    return 3
        return 4

    def codewords(self) -> List[GF2Vector]:
        """Enumerate every codeword (only sensible for small ``k``)."""
        if self._num_data_bits > 20:
            raise CodeConstructionError(
                "refusing to enumerate more than 2**20 codewords"
            )
        words = []
        for value in range(1 << self._num_data_bits):
            dataword = GF2Vector.from_int(value, self._num_data_bits)
            words.append(self.encode(dataword))
        return words

    # -- protocol methods ---------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, SystematicLinearCode):
            return NotImplemented
        return self._parity_submatrix == other._parity_submatrix

    def __hash__(self) -> int:
        return hash(self._parity_submatrix)

    def __repr__(self) -> str:
        suffix = "" if self._family == "sec-hamming" else f", family={self._family!r}"
        return (
            f"SystematicLinearCode(n={self.codeword_length}, "
            f"k={self.num_data_bits}, r={self.num_parity_bits}{suffix})"
        )
