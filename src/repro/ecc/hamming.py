"""Construction of single-error-correcting (SEC) Hamming codes.

On-die ECC is reported to use 64- or 128-bit-dataword SEC Hamming codes
(paper Section 1).  A standard-form SEC Hamming code with ``r`` parity bits
assigns every data bit a distinct non-zero syndrome column that is also
distinct from the ``r`` unit columns of the identity block — i.e. a column of
Hamming weight at least two.  There are ``2**r - r - 1`` such columns, so

* a *full-length* code uses all of them (``k = 2**r - r - 1``), and
* a *shortened* code uses any ordered subset of ``k`` of them.

Every valid on-die ECC function therefore corresponds to an ordered selection
of ``k`` distinct weight-≥2 columns, which is exactly the design space BEER
searches (paper Section 3.3, "Design Space").
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import CodeConstructionError
from repro.gf2 import GF2Matrix, GF2Vector, popcount
from repro.ecc.code import SystematicLinearCode


def min_parity_bits(num_data_bits: int) -> int:
    """Return the minimum number of parity bits for a ``k``-data-bit SEC code.

    This is the smallest ``r`` with ``2**r - r - 1 >= k``.
    """
    if num_data_bits < 1:
        raise CodeConstructionError("a code needs at least one data bit")
    num_parity_bits = 2
    while (1 << num_parity_bits) - num_parity_bits - 1 < num_data_bits:
        num_parity_bits += 1
    return num_parity_bits


def full_length_data_bits(num_parity_bits: int) -> int:
    """Return ``k`` for the full-length SEC Hamming code with ``r`` parity bits."""
    if num_parity_bits < 2:
        raise CodeConstructionError("a SEC Hamming code needs at least two parity bits")
    return (1 << num_parity_bits) - num_parity_bits - 1


def candidate_parity_columns(num_parity_bits: int) -> List[int]:
    """Return every legal data-column syndrome for ``r`` parity bits.

    Legal columns are the non-zero ``r``-bit values of weight at least two
    (weight-one values are reserved for the identity block over the parity
    bits), listed in increasing integer order.
    """
    return [
        value
        for value in range(1, 1 << num_parity_bits)
        if popcount(value) >= 2
    ]


def is_shortened(code: SystematicLinearCode) -> bool:
    """Return True if the code uses fewer data bits than the full-length code."""
    return code.num_data_bits < full_length_data_bits(code.num_parity_bits)


def hamming_code(
    num_data_bits: int,
    num_parity_bits: Optional[int] = None,
    columns: Optional[Sequence[int]] = None,
) -> SystematicLinearCode:
    """Construct a deterministic SEC Hamming code.

    Parameters
    ----------
    num_data_bits:
        Dataword length ``k``.
    num_parity_bits:
        Number of parity bits ``r``; defaults to the minimum for ``k``.
    columns:
        Optional explicit choice of the ``k`` data-column syndromes (integers,
        LSB = parity row 0).  When omitted the first ``k`` legal columns in
        increasing integer order are used, which gives a repeatable
        "textbook" construction.
    """
    if num_parity_bits is None:
        num_parity_bits = min_parity_bits(num_data_bits)
    available = candidate_parity_columns(num_parity_bits)
    if num_data_bits > len(available):
        raise CodeConstructionError(
            f"k={num_data_bits} does not fit in r={num_parity_bits} parity bits "
            f"(maximum is {len(available)})"
        )
    if columns is None:
        chosen = available[:num_data_bits]
    else:
        chosen = list(columns)
        if len(chosen) != num_data_bits:
            raise CodeConstructionError(
                f"expected {num_data_bits} columns, got {len(chosen)}"
            )
        _validate_columns(chosen, num_parity_bits)
    return SystematicLinearCode.from_parity_columns(chosen, num_parity_bits)


def random_hamming_code(
    num_data_bits: int,
    num_parity_bits: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> SystematicLinearCode:
    """Sample a uniformly random SEC Hamming code for the given dimensions.

    This mirrors the paper's evaluation methodology (Section 6.1), which
    samples representative on-die ECC functions by drawing random ordered
    subsets of legal parity-check columns.
    """
    if num_parity_bits is None:
        num_parity_bits = min_parity_bits(num_data_bits)
    available = candidate_parity_columns(num_parity_bits)
    if num_data_bits > len(available):
        raise CodeConstructionError(
            f"k={num_data_bits} does not fit in r={num_parity_bits} parity bits "
            f"(maximum is {len(available)})"
        )
    generator = rng if rng is not None else np.random.default_rng(0)
    indices = generator.permutation(len(available))[:num_data_bits]
    chosen = [available[int(i)] for i in indices]
    return SystematicLinearCode.from_parity_columns(chosen, num_parity_bits)


def _validate_columns(columns: Sequence[int], num_parity_bits: int) -> None:
    """Raise if the chosen columns cannot form a SEC Hamming code."""
    seen = set()
    for column in columns:
        if not 0 < column < (1 << num_parity_bits):
            raise CodeConstructionError(
                f"column {column} does not fit in {num_parity_bits} parity bits"
            )
        if popcount(column) < 2:
            raise CodeConstructionError(
                f"column {column} has weight < 2 and would collide with a parity column"
            )
        if column in seen:
            raise CodeConstructionError(f"column {column} is duplicated")
        seen.add(column)


def example_7_4_code() -> SystematicLinearCode:
    """Return the exact (7, 4, 3) Hamming code of the paper's Equation 1.

    The parity-check matrix is::

        H = [ 1 1 1 0 | 1 0 0 ]
            [ 1 1 0 1 | 0 1 0 ]
            [ 1 0 1 1 | 0 0 1 ]
    """
    parity_submatrix = GF2Matrix(
        [
            [1, 1, 1, 0],
            [1, 1, 0, 1],
            [1, 0, 1, 1],
        ]
    )
    return SystematicLinearCode(parity_submatrix)


def count_sec_functions(num_data_bits: int, num_parity_bits: Optional[int] = None) -> int:
    """Count the ordered arrangements of legal columns, i.e. the design space size.

    This is the number of distinct standard-form SEC parity-check matrices for
    the given dimensions: ``P(2**r - r - 1, k)`` ordered selections.
    """
    if num_parity_bits is None:
        num_parity_bits = min_parity_bits(num_data_bits)
    available = (1 << num_parity_bits) - num_parity_bits - 1
    if num_data_bits > available:
        return 0
    return math.perm(available, num_data_bits)


def parity_columns_of(code: SystematicLinearCode) -> List[GF2Vector]:
    """Return the data-bit columns of ``H`` for ``code`` as vectors."""
    return [code.column(j) for j in code.data_bit_positions]
