"""Pluggable ECC code families.

The paper develops BEER for the SEC Hamming codes reported in real on-die
ECC, but explicitly frames the formulation as applying to *any* systematic
linear block code (Sections 4.2.1 and 7), and the EINSim simulator it builds
on also models repetition and SEC-DED variants.  This module makes the code
family a first-class, pluggable concept:

* :class:`CodeFamily` — what a family must provide: construction (default and
  random member selection), the column design space BEER searches (consumed by
  both the backtracking solver in :mod:`repro.core.beer` and the CNF encoding
  in :mod:`repro.core.beer_sat`), and decode semantics (correct-then-detect
  vs. detect-only, which drives the ``DETECTED_UNCORRECTABLE`` / DUE path in
  :mod:`repro.ecc.decoder` and :mod:`repro.einsim.engine`).
* a process-wide registry (:func:`register_family`, :func:`get_family`) with
  four built-in families:

  ==========================  =====================================================
  name                        description
  ==========================  =====================================================
  ``sec-hamming``             single-error-correcting Hamming (weight-≥2 columns)
  ``secded-extended-hamming`` Hsiao-style extended Hamming SEC-DED (odd-weight
                              columns of weight ≥ 3; double errors are detected,
                              never miscorrected)
  ``parity-detect``           single overall parity bit; detect-only (every
                              non-zero syndrome is a DUE, nothing is corrected)
  ``repetition``              each data bit stored ``repetitions`` times;
                              ``repetitions >= 3`` corrects single errors by
                              syndrome decoding (per-bit majority for 3×),
                              ``repetitions == 2`` is duplication-and-detect
  ==========================  =====================================================

Every family constructs :class:`~repro.ecc.code.SystematicLinearCode`
instances in standard form ``H = [P | I]`` and tags them with the family name
and decode policy, so downstream layers (decoder, packed engine, simulator,
scenario sweeps, CLI) dispatch without importing this module.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import CodeConstructionError
from repro.gf2 import popcount
from repro.ecc.code import SystematicLinearCode


@dataclass(frozen=True)
class ColumnConstraints:
    """Declarative design-space predicates on the data columns of ``P``.

    Consumed by the SAT encoders (:mod:`repro.core.beer_sat` via
    :mod:`repro.sat.encoders`) and by the backtracking solver's candidate
    prefilter, so both BEER backends search exactly the same space.

    Attributes
    ----------
    min_weight:
        Minimum Hamming weight of every data column.
    odd_weight:
        Require odd column weight (the Hsiao SEC-DED condition: together with
        the weight-1 identity columns this forces minimum distance 4).
    """

    min_weight: int = 2
    odd_weight: bool = False

    def weight_is_legal(self, weight: int) -> bool:
        """Return True if a column of the given Hamming weight is in the space."""
        if weight < self.min_weight:
            return False
        if self.odd_weight and weight % 2 == 0:
            return False
        return True

    def value_is_legal(self, value: int, num_parity_bits: int) -> bool:
        """Return True if the integer-encoded column lies in the design space."""
        if not 0 <= value < (1 << num_parity_bits):
            return False
        return self.weight_is_legal(popcount(value))


class CodeFamily(abc.ABC):
    """One pluggable family of systematic linear block codes.

    Subclasses own three things: *construction* of member codes,
    *design-space constraints* for BEER, and *decode semantics* (whether the
    decoder corrects or only detects).
    """

    #: Registry key, e.g. ``"sec-hamming"``.
    name: str = ""
    #: One-line human description.
    description: str = ""
    #: Decode semantics: True = syndrome-correct then detect; False = the
    #: decoder never flips a bit and flags every non-zero syndrome as a DUE.
    corrects: bool = True
    #: True when the family has a searchable per-column design space BEER can
    #: enumerate (a fixed structure like repetition has exactly one member per
    #: dimension, so there is nothing to solve for).
    supports_beer: bool = True

    # -- design space -------------------------------------------------------
    @abc.abstractmethod
    def column_constraints(self) -> ColumnConstraints:
        """The predicates every data column of a member's ``P`` satisfies."""

    def min_parity_bits(self, num_data_bits: int) -> int:
        """Smallest ``r`` for which ``k`` legal, distinct columns exist."""
        if num_data_bits < 1:
            raise CodeConstructionError("a code needs at least one data bit")
        num_parity_bits = 1
        while self.num_candidate_columns(num_parity_bits) < num_data_bits:
            num_parity_bits += 1
        return num_parity_bits

    def candidate_columns(self, num_parity_bits: int) -> List[int]:
        """Every legal data-column value for ``r`` parity bits, ascending.

        This is the per-column design space both BEER backends search.
        Raises :class:`CodeConstructionError` for families without one.
        """
        if not self.supports_beer:
            raise CodeConstructionError(
                f"code family {self.name!r} has a fixed structure and no "
                "searchable column design space"
            )
        constraints = self.column_constraints()
        return [
            value
            for value in range(1, 1 << num_parity_bits)
            if constraints.weight_is_legal(popcount(value))
        ]

    def num_candidate_columns(self, num_parity_bits: int) -> int:
        """Size of the per-column design space for ``r`` parity bits."""
        constraints = self.column_constraints()
        return sum(
            math.comb(num_parity_bits, weight)
            for weight in range(num_parity_bits + 1)
            if constraints.weight_is_legal(weight)
        )

    def legal_subset_count(self, support_weight: int) -> int:
        """Number of legal column values whose support fits in a weight-``w`` set.

        Used by the backtracking solver's counting prefilter: if the
        1-CHARGED pattern charging data bit ``c`` can miscorrect ``m`` other
        data bits, those ``m`` columns are distinct legal subsets of
        ``supp(P_c)`` (other than ``P_c`` itself), so
        ``legal_subset_count(weight(P_c)) - 1 >= m``.
        """
        constraints = self.column_constraints()
        return sum(
            math.comb(support_weight, weight)
            for weight in range(support_weight + 1)
            if constraints.weight_is_legal(weight)
        )

    def design_space_size(self, num_data_bits: int, num_parity_bits: int) -> int:
        """Number of ordered legal column selections (standard-form matrices)."""
        available = self.num_candidate_columns(num_parity_bits)
        if num_data_bits > available:
            return 0
        return math.perm(available, num_data_bits)

    # -- construction -------------------------------------------------------
    def construct(
        self,
        num_data_bits: int,
        num_parity_bits: Optional[int] = None,
        columns: Optional[Sequence[int]] = None,
    ) -> SystematicLinearCode:
        """Build the family's deterministic member for the given dimensions.

        ``columns`` optionally fixes the data-column values explicitly (only
        meaningful for families with a searchable design space; the values
        are validated against the family's constraints).
        """
        if num_parity_bits is None:
            num_parity_bits = self.min_parity_bits(num_data_bits)
        available = self.candidate_columns(num_parity_bits)
        if num_data_bits > len(available):
            raise CodeConstructionError(
                f"k={num_data_bits} does not fit in r={num_parity_bits} parity "
                f"bits for family {self.name!r} (maximum is {len(available)})"
            )
        if columns is None:
            chosen = available[:num_data_bits]
        else:
            chosen = [int(c) for c in columns]
            if len(chosen) != num_data_bits:
                raise CodeConstructionError(
                    f"expected {num_data_bits} columns, got {len(chosen)}"
                )
            self._validate_columns(chosen, num_parity_bits)
        return SystematicLinearCode.from_parity_columns(
            chosen, num_parity_bits, family=self.name,
            detect_only=not self.corrects,
        )

    def random(
        self,
        num_data_bits: int,
        num_parity_bits: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> SystematicLinearCode:
        """Sample a uniformly random member (ordered legal column subset)."""
        if num_parity_bits is None:
            num_parity_bits = self.min_parity_bits(num_data_bits)
        available = self.candidate_columns(num_parity_bits)
        if num_data_bits > len(available):
            raise CodeConstructionError(
                f"k={num_data_bits} does not fit in r={num_parity_bits} parity "
                f"bits for family {self.name!r} (maximum is {len(available)})"
            )
        generator = rng if rng is not None else np.random.default_rng(0)
        indices = generator.permutation(len(available))[:num_data_bits]
        chosen = [available[int(i)] for i in indices]
        return SystematicLinearCode.from_parity_columns(
            chosen, num_parity_bits, family=self.name,
            detect_only=not self.corrects,
        )

    def is_member(self, code: SystematicLinearCode) -> bool:
        """Structural membership test: every data column satisfies the predicates
        and all columns are distinct."""
        constraints = self.column_constraints()
        columns = code.parity_column_ints
        if len(set(columns)) != len(columns):
            return False
        return all(
            constraints.value_is_legal(value, code.num_parity_bits)
            for value in columns
        )

    # -- internals ----------------------------------------------------------
    def _validate_columns(self, columns: Sequence[int], num_parity_bits: int) -> None:
        constraints = self.column_constraints()
        seen = set()
        for column in columns:
            if not constraints.value_is_legal(column, num_parity_bits):
                raise CodeConstructionError(
                    f"column {column} violates the {self.name!r} design space "
                    f"(min weight {constraints.min_weight}"
                    + (", odd weight" if constraints.odd_weight else "")
                    + f") for r={num_parity_bits}"
                )
            if column in seen:
                raise CodeConstructionError(f"column {column} is duplicated")
            seen.add(column)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class SecHammingFamily(CodeFamily):
    """SEC Hamming codes: distinct non-zero columns of weight ≥ 2.

    This is the family assumed throughout the paper; full-length codes use
    all ``2**r - r - 1`` legal columns, shortened codes any ordered subset.
    """

    name = "sec-hamming"
    description = (
        "Single-error-correcting Hamming code (distinct weight->=2 columns); "
        "the paper's assumed on-die ECC."
    )
    corrects = True
    supports_beer = True

    def column_constraints(self) -> ColumnConstraints:
        return ColumnConstraints(min_weight=2, odd_weight=False)


class SecDedExtendedHammingFamily(CodeFamily):
    """Hsiao-style extended-Hamming SEC-DED codes.

    Every column of ``H`` has odd weight: the identity block contributes the
    weight-1 columns, so data columns are distinct odd-weight values of
    weight ≥ 3.  Any XOR of up to three odd-weight columns is non-zero
    (1 or 3 odd vectors sum to an odd-weight vector; 2 distinct columns are
    non-equal), so the minimum distance is 4: single errors are corrected and
    every double error produces an even-weight non-zero syndrome that matches
    no column — a detected-uncorrectable error (DUE) instead of a possible
    miscorrection.  This is the standard-form equivalent of appending the
    overall-parity row/column to a Hamming code.
    """

    name = "secded-extended-hamming"
    description = (
        "Hsiao/extended-Hamming SEC-DED (distinct odd-weight->=3 columns); "
        "corrects single errors, detects all double errors as DUEs."
    )
    corrects = True
    supports_beer = True

    def column_constraints(self) -> ColumnConstraints:
        return ColumnConstraints(min_weight=3, odd_weight=True)


class ParityDetectFamily(CodeFamily):
    """A single overall parity bit: error detection with no correction.

    ``P`` is the ``1 × k`` all-ones row, so the codeword is ``[d | parity]``.
    Every odd-weight error flips the parity check; the decoder never corrects
    (with one parity bit every non-zero syndrome is ambiguous) and reports a
    DUE instead.
    """

    name = "parity-detect"
    description = (
        "Single overall parity bit; detect-only (every non-zero syndrome "
        "is a DUE, nothing is ever corrected)."
    )
    corrects = False
    supports_beer = False

    def column_constraints(self) -> ColumnConstraints:
        return ColumnConstraints(min_weight=1, odd_weight=True)

    def min_parity_bits(self, num_data_bits: int) -> int:
        if num_data_bits < 1:
            raise CodeConstructionError("a code needs at least one data bit")
        return 1

    def construct(
        self,
        num_data_bits: int,
        num_parity_bits: Optional[int] = None,
        columns: Optional[Sequence[int]] = None,
    ) -> SystematicLinearCode:
        if columns is not None:
            raise CodeConstructionError(
                "parity-detect has a fixed structure; explicit columns are "
                "not supported"
            )
        if num_parity_bits not in (None, 1):
            raise CodeConstructionError(
                "parity-detect uses exactly one parity bit, got "
                f"{num_parity_bits}"
            )
        return SystematicLinearCode.from_parity_columns(
            [1] * num_data_bits, 1, family=self.name, detect_only=True
        )

    def random(
        self,
        num_data_bits: int,
        num_parity_bits: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> SystematicLinearCode:
        # One member per dimension — "random" selection is deterministic.
        del rng
        return self.construct(num_data_bits, num_parity_bits)

    def is_member(self, code: SystematicLinearCode) -> bool:
        return code.num_parity_bits == 1 and all(
            value == 1 for value in code.parity_column_ints
        )


class RepetitionFamily(CodeFamily):
    """Per-bit repetition: each data bit is stored ``repetitions`` times.

    In standard form ``P`` stacks ``repetitions - 1`` identity blocks, so the
    codeword is the dataword repeated (``c = [d | d | ... | d]``) and
    ``r = k * (repetitions - 1)``.  With ``repetitions >= 3`` every single
    error has a unique non-zero syndrome and syndrome decoding corrects it
    (for 3× this is exactly per-bit majority voting under a single error);
    with ``repetitions == 2`` (duplication) data and parity columns collide,
    so the decoder is detect-only.
    """

    name = "repetition"
    description = (
        "Each data bit stored N times (default 3); N>=3 corrects single "
        "errors, N=2 is duplication-and-detect."
    )
    corrects = True  # resolved per-code: repetitions == 2 members detect only
    supports_beer = False

    def __init__(self, repetitions: int = 3):
        if repetitions < 2:
            raise CodeConstructionError("repetition needs at least 2 copies")
        self.repetitions = int(repetitions)

    def column_constraints(self) -> ColumnConstraints:
        return ColumnConstraints(min_weight=self.repetitions - 1, odd_weight=False)

    def min_parity_bits(self, num_data_bits: int) -> int:
        if num_data_bits < 1:
            raise CodeConstructionError("a code needs at least one data bit")
        return num_data_bits * (self.repetitions - 1)

    def construct(
        self,
        num_data_bits: int,
        num_parity_bits: Optional[int] = None,
        columns: Optional[Sequence[int]] = None,
    ) -> SystematicLinearCode:
        if columns is not None:
            raise CodeConstructionError(
                "repetition has a fixed structure; explicit columns are not "
                "supported"
            )
        repetitions = self.repetitions
        if num_parity_bits is not None:
            if num_parity_bits % num_data_bits != 0 or num_parity_bits < num_data_bits:
                raise CodeConstructionError(
                    f"repetition needs r to be a positive multiple of k; got "
                    f"r={num_parity_bits}, k={num_data_bits}"
                )
            repetitions = num_parity_bits // num_data_bits + 1
        copies = repetitions - 1
        if num_data_bits * copies > SystematicLinearCode.MAX_TABLE_PARITY_BITS:
            raise CodeConstructionError(
                f"a {repetitions}x repetition code over k={num_data_bits} data "
                f"bits needs r={num_data_bits * copies} parity bits, beyond the "
                f"table-decode limit of r <= "
                f"{SystematicLinearCode.MAX_TABLE_PARITY_BITS}; use a smaller "
                "dataword"
            )
        column_values = [
            sum(1 << (block * num_data_bits + j) for block in range(copies))
            for j in range(num_data_bits)
        ]
        return SystematicLinearCode.from_parity_columns(
            column_values,
            num_data_bits * copies,
            family=self.name,
            detect_only=repetitions == 2,
        )

    def random(
        self,
        num_data_bits: int,
        num_parity_bits: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> SystematicLinearCode:
        # One member per dimension — "random" selection is deterministic.
        del rng
        return self.construct(num_data_bits, num_parity_bits)

    def is_member(self, code: SystematicLinearCode) -> bool:
        if code.num_parity_bits % code.num_data_bits != 0:
            return False
        copies = code.num_parity_bits // code.num_data_bits
        expected = [
            sum(1 << (block * code.num_data_bits + j) for block in range(copies))
            for j in range(code.num_data_bits)
        ]
        return list(code.parity_column_ints) == expected


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, CodeFamily] = {}


def register_family(family: CodeFamily) -> CodeFamily:
    """Register a family instance under its ``name`` (must be unique)."""
    if not family.name:
        raise CodeConstructionError("a code family needs a non-empty name")
    if family.name in _REGISTRY:
        raise CodeConstructionError(
            f"code family {family.name!r} is already registered"
        )
    _REGISTRY[family.name] = family
    return family


def get_family(name: str) -> CodeFamily:
    """Look up a registered family by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise CodeConstructionError(
            f"unknown code family {name!r}; registered families: "
            f"{family_names()}"
        ) from None


def family_names() -> List[str]:
    """Names of every registered family, in registration order."""
    return list(_REGISTRY)


def all_families() -> List[CodeFamily]:
    """Every registered family, in registration order."""
    return list(_REGISTRY.values())


register_family(SecHammingFamily())
register_family(SecDedExtendedHammingFamily())
register_family(ParityDetectFamily())
register_family(RepetitionFamily())

#: The built-in family names, in registration order (CLI choices use this).
FAMILY_NAMES: Tuple[str, ...] = tuple(family_names())
