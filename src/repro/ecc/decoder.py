"""Syndrome decoding and classification of decode outcomes.

Section 3.3 of the paper describes the behaviour of an on-die SEC decoder
facing an arbitrary (possibly uncorrectable) error pattern:

* syndrome ``0``       → no correction performed,
* syndrome = column j  → bit ``j`` is flipped,
* syndrome matches no column (possible for shortened codes, and guaranteed
  for SEC-DED double errors) → no correction, but the error is *detected* —
  the detected-uncorrectable error (DUE) path.

Decoding dispatches on the code's family decode policy
(:attr:`~repro.ecc.code.SystematicLinearCode.detect_only`): detect-only
families (single parity bit, duplication) never flip a bit and flag every
non-zero syndrome as a DUE.

When the injected error pattern is uncorrectable, the externally visible
outcome falls into one of the classes of :class:`DecodeOutcome` — *silent
data corruption*, *partial correction*, *miscorrection*, or *detected
uncorrectable* — which :func:`classify_decode` reports.  Miscorrections are
the signal BEER is built on; DUEs are the signal detection-aware profiling
adds on top.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.exceptions import DimensionError
from repro.gf2 import GF2Vector
from repro.ecc.code import SystematicLinearCode


class DecodeOutcome(enum.Enum):
    """Classification of a decode relative to the true transmitted codeword."""

    #: No pre-correction errors and no correction performed.
    NO_ERROR = "no_error"
    #: A single pre-correction error was corrected exactly.
    CORRECTED = "corrected"
    #: Uncorrectable error with a zero syndrome: errors pass through silently.
    SILENT_CORRUPTION = "silent_corruption"
    #: Uncorrectable error whose syndrome pointed at one of the erroneous bits.
    PARTIAL_CORRECTION = "partial_correction"
    #: Uncorrectable error whose syndrome pointed at a non-erroneous bit.
    MISCORRECTION = "miscorrection"
    #: Non-zero syndrome with no correction performed: matched no column of H
    #: (shortened SEC codes, SEC-DED double errors) or the code is
    #: detect-only.  This is the DUE path.
    DETECTED_UNCORRECTABLE = "detected_uncorrectable"


@dataclass(frozen=True)
class DecodeResult:
    """Result of decoding one (possibly erroneous) codeword.

    Attributes
    ----------
    dataword:
        The post-correction dataword handed back over the DRAM interface.
    corrected_codeword:
        The full post-correction codeword (internal to the chip).
    corrected_position:
        The codeword position flipped by the decoder, or ``None``.
    syndrome:
        The raw error syndrome ``H · c'`` (never visible to real hosts; kept
        here for simulation and validation).
    detected_uncorrectable:
        The DUE sentinel: True when the decoder saw a non-zero syndrome it
        could not (detect-only policy) or would not (no matching column)
        correct.
    """

    dataword: GF2Vector
    corrected_codeword: GF2Vector
    corrected_position: Optional[int]
    syndrome: GF2Vector
    detected_uncorrectable: bool = False

    @property
    def correction_performed(self) -> bool:
        """True if the decoder flipped any bit."""
        return self.corrected_position is not None


class SyndromeDecoder:
    """Family-dispatched syndrome decoder for a :class:`SystematicLinearCode`.

    The decoder mirrors the hardware behaviour described in the paper: it
    blindly computes the syndrome and acts on the code's decode policy.  For
    correcting families it flips the bit the syndrome points at (if any);
    for detect-only families (parity check, duplication) it never flips and
    flags every non-zero syndrome as a DUE.  It has no notion of how many
    errors actually occurred.
    """

    def __init__(self, code: SystematicLinearCode):
        self._code = code

    @property
    def code(self) -> SystematicLinearCode:
        """The code this decoder operates on."""
        return self._code

    def decode(self, received_codeword: GF2Vector) -> DecodeResult:
        """Decode a received codeword and return the full decode result."""
        word = (
            received_codeword
            if isinstance(received_codeword, GF2Vector)
            else GF2Vector(received_codeword)
        )
        if len(word) != self._code.codeword_length:
            raise DimensionError(
                f"received word has length {len(word)}, expected "
                f"{self._code.codeword_length}"
            )
        syndrome = self._code.syndrome(word)
        if self._code.detect_only:
            position = None
        else:
            position = self._code.syndrome_to_position(syndrome)
        corrected = word if position is None else word.flip(position)
        return DecodeResult(
            dataword=self._code.extract_dataword(corrected),
            corrected_codeword=corrected,
            corrected_position=position,
            syndrome=syndrome,
            detected_uncorrectable=position is None and not syndrome.is_zero(),
        )

    def decode_dataword(self, received_codeword: GF2Vector) -> GF2Vector:
        """Decode and return only the post-correction dataword."""
        return self.decode(received_codeword).dataword


def classify_decode(
    code: SystematicLinearCode,
    transmitted_codeword: GF2Vector,
    received_codeword: GF2Vector,
) -> DecodeOutcome:
    """Classify the outcome of decoding ``received`` given the true codeword.

    This requires ground-truth knowledge of the transmitted codeword and is
    therefore only available in simulation — exactly the visibility gap that
    motivates BEER.
    """
    transmitted = (
        transmitted_codeword
        if isinstance(transmitted_codeword, GF2Vector)
        else GF2Vector(transmitted_codeword)
    )
    received = (
        received_codeword
        if isinstance(received_codeword, GF2Vector)
        else GF2Vector(received_codeword)
    )
    if len(transmitted) != code.codeword_length or len(received) != code.codeword_length:
        raise DimensionError("codeword lengths do not match the code")

    error_positions = set((transmitted + received).support)
    decoder = SyndromeDecoder(code)
    result = decoder.decode(received)

    if not error_positions:
        return DecodeOutcome.NO_ERROR
    if len(error_positions) == 1:
        # A valid correcting code fixes a single error exactly.
        if result.corrected_position in error_positions:
            return DecodeOutcome.CORRECTED
        # Detect-only codes never correct; a shortened/degenerate code may
        # fail to match the syndrome.  Either way the error was detected.
        return DecodeOutcome.DETECTED_UNCORRECTABLE

    if result.syndrome.is_zero():
        return DecodeOutcome.SILENT_CORRUPTION
    if result.corrected_position is None:
        return DecodeOutcome.DETECTED_UNCORRECTABLE
    if result.corrected_position in error_positions:
        return DecodeOutcome.PARTIAL_CORRECTION
    return DecodeOutcome.MISCORRECTION


def post_correction_error_positions(
    code: SystematicLinearCode,
    transmitted_dataword: GF2Vector,
    received_codeword: GF2Vector,
) -> tuple:
    """Return the data-bit positions that differ after decoding.

    These are the only errors a third party can observe through the DRAM
    interface (the parity bits never leave the chip).
    """
    decoder = SyndromeDecoder(code)
    decoded = decoder.decode_dataword(received_codeword)
    transmitted = (
        transmitted_dataword
        if isinstance(transmitted_dataword, GF2Vector)
        else GF2Vector(transmitted_dataword)
    )
    return (decoded + transmitted).support
