"""Code equivalence, canonical forms, and design-space enumeration.

Because on-die ECC never exposes its parity bits, two codes that differ only
by a relabelling of the parity bits (equivalently: a permutation of the rows
of the standard-form parity submatrix ``P``) are indistinguishable from
outside the chip — they produce identical miscorrection profiles (paper
Sections 4.2.1 and 5.4).  BEER therefore recovers the ECC function *up to
this equivalence*, and solution counting (Figure 5) must be performed on
equivalence classes.

This module provides:

* :func:`canonical_parity_columns` — a canonical representative of a code's
  equivalence class, used to de-duplicate solver output;
* :func:`codes_equivalent` — the equivalence test itself;
* :func:`enumerate_sec_codes` — exhaustive enumeration of all SEC codes for
  small dimensions (used by tests and small-scale uniqueness studies);
* :func:`design_space_size` — the size of the full design space.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.ecc.code import SystematicLinearCode
from repro.ecc.hamming import candidate_parity_columns, count_sec_functions


def _permute_column_bits(column: int, permutation: Sequence[int]) -> int:
    """Apply a row permutation to an integer-encoded column.

    ``permutation[i]`` gives the new row index of original row ``i``.
    """
    result = 0
    for source_row, target_row in enumerate(permutation):
        if (column >> source_row) & 1:
            result |= 1 << target_row
    return result


def canonical_parity_columns(
    columns: Sequence[int], num_parity_bits: int
) -> Tuple[int, ...]:
    """Return the canonical representative of a column tuple under row permutations.

    The canonical form is the lexicographically smallest tuple obtained by
    applying any permutation of the parity rows to every column
    simultaneously.  Codes are equivalent iff their canonical forms match.

    The search is exhaustive over ``r!`` permutations, which is fine for the
    parity-bit counts relevant to on-die ECC (``r <= 9``) and only used on
    solver output, never in inner loops.
    """
    best: Optional[Tuple[int, ...]] = None
    for permutation in itertools.permutations(range(num_parity_bits)):
        candidate = tuple(_permute_column_bits(col, permutation) for col in columns)
        if best is None or candidate < best:
            best = candidate
    assert best is not None
    return best


def canonical_form(code: SystematicLinearCode) -> Tuple[int, ...]:
    """Return the canonical column tuple for a code."""
    return canonical_parity_columns(code.parity_column_ints, code.num_parity_bits)


def codes_equivalent(first: SystematicLinearCode, second: SystematicLinearCode) -> bool:
    """Return True if two codes differ only by a relabelling of parity bits."""
    if first.num_data_bits != second.num_data_bits:
        return False
    if first.num_parity_bits != second.num_parity_bits:
        return False
    return canonical_form(first) == canonical_form(second)


def deduplicate_equivalent(
    codes: Sequence[SystematicLinearCode],
) -> List[SystematicLinearCode]:
    """Return one representative per equivalence class, preserving order."""
    seen = set()
    unique: List[SystematicLinearCode] = []
    for code in codes:
        key = canonical_form(code)
        if key not in seen:
            seen.add(key)
            unique.append(code)
    return unique


def enumerate_sec_codes(
    num_data_bits: int,
    num_parity_bits: int,
    up_to_equivalence: bool = False,
) -> Iterator[SystematicLinearCode]:
    """Yield every standard-form SEC code with the given dimensions.

    With ``up_to_equivalence=True`` only one representative per
    row-permutation equivalence class is yielded.  The enumeration is
    exponential in ``k`` and intended for the small dimensions used in tests
    and exhaustive validation (e.g. ``k <= 6``).
    """
    available = candidate_parity_columns(num_parity_bits)
    seen_canonical = set()
    for arrangement in itertools.permutations(available, num_data_bits):
        if up_to_equivalence:
            key = canonical_parity_columns(arrangement, num_parity_bits)
            if key in seen_canonical:
                continue
            seen_canonical.add(key)
        yield SystematicLinearCode.from_parity_columns(arrangement, num_parity_bits)


def design_space_size(num_data_bits: int, num_parity_bits: Optional[int] = None) -> int:
    """Return the number of distinct standard-form SEC functions (ordered columns)."""
    return count_sec_functions(num_data_bits, num_parity_bits)
