"""Error-correction-code substrate.

This package models the systematic single-error-correcting (SEC) linear block
codes that DRAM manufacturers use for on-die ECC (Section 3.3 of the paper):

* :mod:`repro.ecc.code` — the :class:`SystematicLinearCode` type holding the
  generator and parity-check matrices in standard form ``H = [P | I]``.
* :mod:`repro.ecc.hamming` — construction of SEC Hamming codes (full-length
  and shortened), random sampling of representative on-die ECC functions, and
  the worked (7,4,3) example of the paper's Equation 1.
* :mod:`repro.ecc.decoder` — syndrome decoding and classification of decode
  outcomes (no error / corrected / silent corruption / partial correction /
  miscorrection), mirroring Section 3.3.
* :mod:`repro.ecc.codespace` — code-equivalence (row permutations of the
  parity submatrix), canonical forms, enumeration and counting of the on-die
  ECC design space.
"""

from repro.ecc.code import SystematicLinearCode
from repro.ecc.decoder import (
    DecodeOutcome,
    DecodeResult,
    SyndromeDecoder,
    classify_decode,
)
from repro.ecc.hamming import (
    example_7_4_code,
    full_length_data_bits,
    hamming_code,
    min_parity_bits,
    random_hamming_code,
)
from repro.ecc.codespace import (
    canonical_parity_columns,
    codes_equivalent,
    design_space_size,
    enumerate_sec_codes,
)

__all__ = [
    "SystematicLinearCode",
    "DecodeOutcome",
    "DecodeResult",
    "SyndromeDecoder",
    "classify_decode",
    "example_7_4_code",
    "full_length_data_bits",
    "hamming_code",
    "min_parity_bits",
    "random_hamming_code",
    "canonical_parity_columns",
    "codes_equivalent",
    "design_space_size",
    "enumerate_sec_codes",
]
