"""Error-correction-code substrate.

This package models the systematic linear block codes that DRAM
manufacturers use for on-die ECC (Section 3.3 of the paper), organised
around a pluggable code-family registry:

* :mod:`repro.ecc.code` — the :class:`SystematicLinearCode` type holding the
  generator and parity-check matrices in standard form ``H = [P | I]``, plus
  each code's family tag and decode policy.
* :mod:`repro.ecc.family` — the :class:`CodeFamily` registry: SEC Hamming,
  Hsiao/extended-Hamming SEC-DED, single-parity detect-only, and per-bit
  repetition codes, each owning its construction, BEER design-space
  constraints, and decode semantics.
* :mod:`repro.ecc.hamming` — construction of SEC Hamming codes (full-length
  and shortened), random sampling of representative on-die ECC functions, and
  the worked (7,4,3) example of the paper's Equation 1.
* :mod:`repro.ecc.decoder` — family-dispatched syndrome decoding and
  classification of decode outcomes (no error / corrected / silent
  corruption / partial correction / miscorrection / detected-uncorrectable),
  mirroring Section 3.3.
* :mod:`repro.ecc.codespace` — code-equivalence (row permutations of the
  parity submatrix), canonical forms, enumeration and counting of the on-die
  ECC design space.
"""

from repro.ecc.code import SystematicLinearCode
from repro.ecc.decoder import (
    DecodeOutcome,
    DecodeResult,
    SyndromeDecoder,
    classify_decode,
)
from repro.ecc.family import (
    FAMILY_NAMES,
    CodeFamily,
    ColumnConstraints,
    all_families,
    family_names,
    get_family,
    register_family,
)
from repro.ecc.hamming import (
    example_7_4_code,
    full_length_data_bits,
    hamming_code,
    min_parity_bits,
    random_hamming_code,
)
from repro.ecc.codespace import (
    canonical_parity_columns,
    codes_equivalent,
    design_space_size,
    enumerate_sec_codes,
)

__all__ = [
    "SystematicLinearCode",
    "DecodeOutcome",
    "DecodeResult",
    "SyndromeDecoder",
    "classify_decode",
    "FAMILY_NAMES",
    "CodeFamily",
    "ColumnConstraints",
    "all_families",
    "family_names",
    "get_family",
    "register_family",
    "example_7_4_code",
    "full_length_data_bits",
    "hamming_code",
    "min_parity_bits",
    "random_hamming_code",
    "canonical_parity_columns",
    "codes_equivalent",
    "design_space_size",
    "enumerate_sec_codes",
]
