"""``repro bench`` subcommand: list / run / compare / trend / update-baseline.

The subcommand is the single entry point CI uses: ``run`` produces the
merged-schema JSON (and optionally the legacy ``BENCH_*.json`` files),
``compare`` gates a result file against the committed baseline for its tier,
``trend`` renders a text report over a directory of historical result files,
and ``update-baseline`` regenerates that baseline intentionally (the policy
in README.md requires a justification line in CHANGES.md alongside).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.bench.compare import compare_runs
from repro.bench.driver import (
    baseline_path,
    emit_legacy_files,
    run_bench,
    workload_listing,
)
from repro.bench.report import (
    print_comparator_report,
    print_header,
    print_run,
    print_table,
)
from repro.bench.schema import BenchRun, canonical_json
from repro.bench.timing import TIERS


def add_bench_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "bench",
        help="run the unified benchmark suite and gate against baselines",
        description=(
            "Parametric benchmark harness: named workloads x named conditions "
            "with bit-identity oracles, merged-schema results, and a "
            "tolerance-based comparator against committed baselines."
        ),
    )
    commands = parser.add_subparsers(dest="bench_command", required=True)

    list_parser = commands.add_parser(
        "list", help="list registered workloads, tiers, and gated metrics"
    )
    list_parser.add_argument(
        "--json", action="store_true", help="emit the listing as JSON"
    )

    run_parser = commands.add_parser(
        "run", help="run workloads at a tier and write the merged result file"
    )
    run_parser.add_argument(
        "--tier", choices=list(TIERS), default="quick", help="scale tier"
    )
    run_parser.add_argument(
        "--workload",
        action="append",
        dest="workloads",
        metavar="NAME",
        help="run only this workload (repeatable; default: all)",
    )
    run_parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="merged result file (default: BENCH_merged_<tier>.json)",
    )
    run_parser.add_argument(
        "--emit-legacy",
        action="store_true",
        help="also regenerate the historical BENCH_*.json files",
    )
    run_parser.add_argument(
        "--check-oracles",
        action="store_true",
        help="exit nonzero if any bit-identity oracle fails",
    )

    compare_parser = commands.add_parser(
        "compare", help="diff a merged result file against a baseline"
    )
    compare_parser.add_argument(
        "result", type=Path, help="merged result file produced by `bench run`"
    )
    compare_parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline file (default: benchmarks/baselines/<tier>.json)",
    )
    compare_parser.add_argument(
        "--report",
        type=Path,
        default=None,
        help="also write the comparator findings as JSON",
    )
    compare_parser.add_argument(
        "--allow-subset",
        action="store_true",
        help="accept a run covering only some baseline workloads "
             "(partial `bench run --workload ...` results)",
    )

    trend_parser = commands.add_parser(
        "trend",
        help="text trend report over a directory of merged bench-run files",
    )
    trend_parser.add_argument(
        "directory", type=Path,
        help="directory of merged result JSON files (ordered by filename)",
    )
    trend_parser.add_argument(
        "--workload",
        action="append",
        dest="workloads",
        metavar="NAME",
        help="track only this workload (repeatable; default: all)",
    )
    trend_parser.add_argument(
        "--metric",
        action="append",
        dest="metrics",
        metavar="NAME",
        help="track this metric instead of the gated ones "
             "(repeatable; e.g. obs.einsim.words_decoded)",
    )
    trend_parser.add_argument(
        "--json", action="store_true", help="emit the trend document as JSON"
    )

    update_parser = commands.add_parser(
        "update-baseline",
        help="re-run workloads and overwrite the committed baseline for a tier",
    )
    update_parser.add_argument(
        "--tier", choices=list(TIERS), default="quick", help="scale tier"
    )
    update_parser.add_argument(
        "--from-result",
        type=Path,
        default=None,
        metavar="FILE",
        help="promote an existing merged result file instead of re-running",
    )


def handle_bench(args) -> int:
    handlers = {
        "list": _handle_list,
        "run": _handle_run,
        "compare": _handle_compare,
        "trend": _handle_trend,
        "update-baseline": _handle_update_baseline,
    }
    return handlers[args.bench_command](args)


def _handle_trend(args) -> int:
    from repro.bench.trend import format_trend_text, load_runs, trend_data

    runs = load_runs(args.directory)
    if not runs:
        print(f"no merged bench-run files in {args.directory}", file=sys.stderr)
        return 2
    data = trend_data(runs, workloads=args.workloads, metrics=args.metrics)
    if args.json:
        print(json.dumps(data, indent=2, sort_keys=True))
    else:
        print(format_trend_text(data))
    return 0


def _handle_list(args) -> int:
    listing = workload_listing()
    if args.json:
        print(json.dumps(listing, indent=2))
        return 0
    print_header(f"repro.bench — {len(listing)} registered workloads")
    print_table(
        ["workload", "tags", "gated metrics", "legacy file"],
        [
            [
                entry["name"],
                ",".join(entry["tags"]),
                len(entry["gated_metrics"]),
                entry["legacy_file"] or "-",
            ]
            for entry in listing
        ],
    )
    return 0


def _handle_run(args) -> int:
    run = run_bench(args.workloads, tier=args.tier)
    print_run(run)
    output = args.output or Path(f"BENCH_merged_{args.tier}.json")
    run.write(output)
    print(f"wrote {output}")
    if args.emit_legacy:
        for path in emit_legacy_files(run).values():
            print(f"wrote {path}")
    if args.check_oracles:
        failures = [
            f"{record.workload}/{condition.condition}: {oracle}"
            for record in run.workloads
            for condition in record.conditions
            for oracle, value in condition.oracles.items()
            if value is False
        ]
        if failures:
            print("ORACLE FAILURES: " + ", ".join(failures), file=sys.stderr)
            return 1
    return 0


def _handle_compare(args) -> int:
    run = BenchRun.read(args.result)
    baseline_file = args.baseline or baseline_path(run.tier)
    if not baseline_file.exists():
        print(f"no baseline at {baseline_file}", file=sys.stderr)
        return 2
    baseline = BenchRun.read(baseline_file)
    report = compare_runs(run, baseline, allow_subset=args.allow_subset)
    print_comparator_report(report)
    if args.report is not None:
        args.report.write_text(canonical_json(report.to_dict()))
        print(f"wrote {args.report}")
    return 0 if report.ok else 1


def _handle_update_baseline(args) -> int:
    if args.from_result is not None:
        run = BenchRun.read(args.from_result)
        if run.tier != args.tier:
            print(
                f"result file is tier {run.tier!r}, refusing to promote it "
                f"to the {args.tier!r} baseline",
                file=sys.stderr,
            )
            return 2
    else:
        run = run_bench(tier=args.tier)
        print_run(run)
    target = baseline_path(args.tier)
    target.parent.mkdir(parents=True, exist_ok=True)
    run.write(target)
    print(f"wrote {target}")
    print(
        "baseline updated — commit it together with a justification line in "
        "CHANGES.md (see README.md, 'Updating baselines')"
    )
    return 0
