"""Workload registry: named parametric workloads with tiers, gates, legacy specs.

A *workload* is one benchmark scenario (e.g. ``gf2-backends`` or
``fig5-uniqueness``) declared once and runnable at any tier.  The declaration
carries:

* ``tiers`` — the scale knobs per tier (word counts, code sizes, sweep
  shapes, seeds).  ``smoke`` must be minimal (it runs inside the tier-1 test
  suite), ``quick`` is the CI tier, ``full`` produces baseline numbers.
* ``run`` — a callable ``(params, BenchContext) -> WorkloadResult`` that
  performs the measurements and fills per-condition metrics and oracles.
* ``gates`` — which metrics the comparator checks against the committed
  baseline, each with its own tolerance (see :mod:`repro.bench.compare`).
* ``legacy`` — optionally, the historical ``BENCH_*.json`` file this
  workload replaces and the emitter reconstructing that exact schema from
  the merged record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import UnknownNameError, ValidationError
from repro.bench.schema import ConditionRecord, WorkloadRecord
from repro.bench.timing import RunControl
from repro.obs import TRACER


@dataclass(frozen=True)
class MetricGate:
    """A comparator rule for one metric of one (or every) condition.

    ``rel_tol`` is the allowed *relative regression* versus the baseline
    value: with ``higher_is_better`` a new value ``v`` passes against
    baseline ``b`` iff ``v >= b * (1 - rel_tol)``; with lower-is-better
    metrics iff ``v <= b * (1 + rel_tol)``.  A regression of exactly
    ``rel_tol`` therefore passes; one of ``rel_tol + ε`` fails.  A
    ``rel_tol`` of 0 demands the baseline be matched or beaten exactly —
    the right setting for deterministic counts.
    """

    metric: str
    rel_tol: float = 0.0
    higher_is_better: bool = True
    condition: Optional[str] = None  # None: every condition carrying the metric

    def applies_to(self, condition_name: str) -> bool:
        return self.condition is None or self.condition == condition_name


@dataclass(frozen=True)
class LegacySpec:
    """The historical ``BENCH_*.json`` artefact a workload keeps emitting."""

    filename: str
    emitter: Callable[[WorkloadRecord], Dict[str, Any]]


class BenchContext:
    """Everything a workload runner needs besides its parameters."""

    def __init__(self, tier: str, control: RunControl):
        self.tier = tier
        self.control = control

    @property
    def is_full(self) -> bool:
        return self.tier == "full"


@dataclass
class WorkloadResult:
    """What a workload runner returns; the driver wraps it into a record."""

    conditions: List[ConditionRecord] = field(default_factory=list)
    artifacts: Dict[str, Any] = field(default_factory=dict)
    _obs_counters: Dict[str, float] = field(default_factory=dict, repr=False)

    def add(
        self,
        condition: str,
        metrics: Optional[Mapping[str, Any]] = None,
        oracles: Optional[Mapping[str, Any]] = None,
    ) -> ConditionRecord:
        metric_values = dict(metrics or {})
        # With the tracer live (the driver enables metrics-only collection
        # around each workload) every condition also carries the library
        # counters it moved — ``obs.*`` deltas since the previous condition.
        # The comparator only gates metrics present in the baseline, so
        # these ride along without touching any committed numbers.
        if TRACER.enabled:
            totals = TRACER.counter_totals()
            for name in sorted(totals):
                delta = totals[name] - self._obs_counters.get(name, 0.0)
                if delta:
                    metric_values[f"obs.{name}"] = delta
            self._obs_counters = totals
        record = ConditionRecord(
            condition=condition,
            metrics=metric_values,
            oracles=dict(oracles or {}),
        )
        self.conditions.append(record)
        return record


@dataclass(frozen=True)
class Workload:
    """A registered parametric benchmark workload."""

    name: str
    description: str
    tiers: Mapping[str, Mapping[str, Any]]
    run: Callable[[Mapping[str, Any], BenchContext], WorkloadResult]
    gates: Tuple[MetricGate, ...] = ()
    legacy: Optional[LegacySpec] = None
    tags: Tuple[str, ...] = ()

    def params_for(self, tier: str) -> Dict[str, Any]:
        if tier not in self.tiers:
            raise UnknownNameError(f"workload {self.name!r} has no tier {tier!r}")
        return dict(self.tiers[tier])


_REGISTRY: Dict[str, Workload] = {}


def register_workload(
    name: str,
    description: str,
    tiers: Mapping[str, Mapping[str, Any]],
    run: Callable[[Mapping[str, Any], BenchContext], WorkloadResult],
    gates: Sequence[MetricGate] = (),
    legacy: Optional[LegacySpec] = None,
    tags: Sequence[str] = (),
) -> Workload:
    """Register a workload under a unique name (import-time declaration)."""
    if name in _REGISTRY:
        raise ValidationError(f"workload {name!r} is already registered")
    missing = {"smoke", "quick", "full"} - set(tiers)
    if missing:
        raise ValidationError(f"workload {name!r} is missing tiers: {sorted(missing)}")
    workload = Workload(
        name=name,
        description=description,
        tiers={tier: dict(params) for tier, params in tiers.items()},
        run=run,
        gates=tuple(gates),
        legacy=legacy,
        tags=tuple(tags),
    )
    _REGISTRY[name] = workload
    return workload


def get_workload(name: str) -> Workload:
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownNameError(
            f"unknown workload {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def workload_names() -> List[str]:
    _ensure_loaded()
    return list(_REGISTRY)


def all_workloads() -> List[Workload]:
    _ensure_loaded()
    return list(_REGISTRY.values())


def gates_by_workload() -> Dict[str, Tuple[MetricGate, ...]]:
    _ensure_loaded()
    return {name: workload.gates for name, workload in _REGISTRY.items()}


def _ensure_loaded() -> None:
    # Workload declarations live in repro.bench.workloads and register
    # themselves on import; pulling them in lazily keeps `import repro.bench`
    # cheap for consumers that only need the schema or comparator.
    import repro.bench.workloads  # noqa: F401
