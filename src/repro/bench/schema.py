"""Merged benchmark results schema: workload × condition × metrics.

Every benchmark in the repository — the four perf benchmarks that used to
write ad-hoc ``BENCH_*.json`` files and the paper-figure reproductions —
reports its measurements through one schema:

* a :class:`BenchRun` is one invocation of the driver: a tier (``smoke`` /
  ``quick`` / ``full``), an environment fingerprint, and a list of workload
  records;
* a :class:`WorkloadRecord` is one parametric workload at its tier's scale:
  the resolved parameters, the per-condition measurements, and a free-form
  ``artifacts`` payload carrying workload-level data (shape information the
  legacy emitters and figure tables need);
* a :class:`ConditionRecord` is one named condition of a workload (e.g.
  ``bulk-decode:packed`` or ``k16:incremental``): a flat ``metrics`` mapping
  of numbers/booleans plus an ``oracles`` mapping of correctness gates.

Oracle values are ``True`` (gate passed), ``False`` (gate violated — the
comparator hard-fails on these), or the string ``"skipped"`` (the gate could
not run, e.g. the parallel-sweep speedup floor on a machine with fewer than
4 CPUs; the comparator downgrades these to warnings).

Serialisation is canonical: :func:`canonical_json` sorts keys and uses a
fixed layout, so ``serialize → parse → serialize`` is byte-identical (the
round-trip property the schema tests pin down).
"""

from __future__ import annotations

from repro.exceptions import UnknownNameError
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Union

SCHEMA_VERSION = 1

#: The valid oracle states beyond plain pass/fail.
ORACLE_SKIPPED = "skipped"

OracleValue = Union[bool, str]


class SchemaError(ValueError):
    """A benchmark results document does not conform to the merged schema."""


@dataclass
class ConditionRecord:
    """One named condition of a workload: metrics plus correctness oracles."""

    condition: str
    metrics: Dict[str, Any] = field(default_factory=dict)
    oracles: Dict[str, OracleValue] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "condition": self.condition,
            "metrics": dict(self.metrics),
            "oracles": dict(self.oracles),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ConditionRecord":
        _require(payload, ("condition", "metrics", "oracles"), "condition record")
        for name, value in payload["oracles"].items():
            if not (isinstance(value, bool) or value == ORACLE_SKIPPED):
                raise SchemaError(
                    f"oracle {name!r} must be true/false/{ORACLE_SKIPPED!r}, "
                    f"got {value!r}"
                )
        return cls(
            condition=payload["condition"],
            metrics=dict(payload["metrics"]),
            oracles=dict(payload["oracles"]),
        )


@dataclass
class WorkloadRecord:
    """One workload run at one scale: params, conditions, workload artifacts."""

    workload: str
    params: Dict[str, Any] = field(default_factory=dict)
    conditions: List[ConditionRecord] = field(default_factory=list)
    artifacts: Dict[str, Any] = field(default_factory=dict)

    def condition(self, name: str) -> ConditionRecord:
        for record in self.conditions:
            if record.condition == name:
                return record
        raise UnknownNameError(f"workload {self.workload!r} has no condition {name!r}")

    def condition_names(self) -> List[str]:
        return [record.condition for record in self.conditions]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "params": dict(self.params),
            "conditions": [record.to_dict() for record in self.conditions],
            "artifacts": dict(self.artifacts),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "WorkloadRecord":
        _require(
            payload, ("workload", "params", "conditions", "artifacts"), "workload record"
        )
        return cls(
            workload=payload["workload"],
            params=dict(payload["params"]),
            conditions=[ConditionRecord.from_dict(c) for c in payload["conditions"]],
            artifacts=dict(payload["artifacts"]),
        )


@dataclass
class BenchRun:
    """One driver invocation: tier, environment fingerprint, workload records."""

    tier: str
    environment: Dict[str, Any] = field(default_factory=dict)
    workloads: List[WorkloadRecord] = field(default_factory=list)
    schema_version: int = SCHEMA_VERSION

    def workload(self, name: str) -> WorkloadRecord:
        for record in self.workloads:
            if record.workload == name:
                return record
        raise UnknownNameError(f"run has no workload {name!r}")

    def workload_names(self) -> List[str]:
        return [record.workload for record in self.workloads]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "suite": "repro.bench",
            "tier": self.tier,
            "environment": dict(self.environment),
            "workloads": [record.to_dict() for record in self.workloads],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "BenchRun":
        _require(
            payload,
            ("schema_version", "tier", "environment", "workloads"),
            "bench run",
        )
        version = payload["schema_version"]
        if version != SCHEMA_VERSION:
            raise SchemaError(
                f"unsupported schema_version {version!r} (expected {SCHEMA_VERSION})"
            )
        return cls(
            tier=payload["tier"],
            environment=dict(payload["environment"]),
            workloads=[WorkloadRecord.from_dict(w) for w in payload["workloads"]],
            schema_version=version,
        )

    # -- canonical serialisation ------------------------------------------------
    def to_json(self) -> str:
        return canonical_json(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "BenchRun":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise SchemaError(f"not a JSON document: {error}") from error
        if not isinstance(payload, dict):
            raise SchemaError("a bench run must be a JSON object")
        return cls.from_dict(payload)

    def write(self, path) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json())

    @classmethod
    def read(cls, path) -> "BenchRun":
        with open(path) as handle:
            return cls.from_json(handle.read())


def canonical_json(payload: Mapping[str, Any]) -> str:
    """Serialise ``payload`` deterministically (sorted keys, fixed layout).

    The canonical form is what makes baselines diffable and the round-trip
    ``serialize → parse → serialize`` byte-identical.
    """
    return json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n"


def _require(payload: Mapping[str, Any], keys, what: str) -> None:
    missing = [key for key in keys if key not in payload]
    if missing:
        raise SchemaError(f"{what} is missing required keys: {missing}")
