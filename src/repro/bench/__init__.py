"""Unified parametric benchmark harness (the ``repro.bench`` suite).

The harness replaces the four ad-hoc ``benchmarks/bench_*.py`` writers with
one registry of named workloads.  Every workload declares per-tier scale
parameters (``smoke`` / ``quick`` / ``full``), runs named conditions with
warmup/repeat/min-time control, reports metrics plus bit-identity oracles,
and serialises into a single merged schema.  A comparator diffs runs against
committed baselines with per-metric tolerances and hard-fails on regressions
or identity violations.
"""

from __future__ import annotations

from repro.bench.compare import (
    ComparatorReport,
    Finding,
    compare_runs,
    metric_within_tolerance,
)
from repro.bench.driver import (
    baseline_path,
    baselines_dir,
    emit_legacy_files,
    legacy_payloads,
    repo_root,
    run_bench,
    run_workload,
    workload_listing,
)
from repro.bench.environment import environment_fingerprint, usable_cpus
from repro.bench.registry import (
    BenchContext,
    LegacySpec,
    MetricGate,
    Workload,
    WorkloadResult,
    all_workloads,
    gates_by_workload,
    get_workload,
    register_workload,
    workload_names,
)
from repro.bench.schema import (
    ORACLE_SKIPPED,
    SCHEMA_VERSION,
    BenchRun,
    ConditionRecord,
    SchemaError,
    WorkloadRecord,
    canonical_json,
)
from repro.bench.timing import TIERS, Measurement, RunControl, control_for_tier

__all__ = [
    "ORACLE_SKIPPED",
    "SCHEMA_VERSION",
    "TIERS",
    "BenchContext",
    "BenchRun",
    "ComparatorReport",
    "ConditionRecord",
    "Finding",
    "LegacySpec",
    "Measurement",
    "MetricGate",
    "RunControl",
    "SchemaError",
    "Workload",
    "WorkloadRecord",
    "WorkloadResult",
    "all_workloads",
    "baseline_path",
    "baselines_dir",
    "canonical_json",
    "compare_runs",
    "control_for_tier",
    "emit_legacy_files",
    "environment_fingerprint",
    "gates_by_workload",
    "get_workload",
    "legacy_payloads",
    "metric_within_tolerance",
    "register_workload",
    "repo_root",
    "run_bench",
    "run_workload",
    "usable_cpus",
    "workload_listing",
    "workload_names",
]
