"""Workload: bulk decode across code families, reference vs packed backends.

Port of the PR 5 ``bench_decoder.py`` writer.  For every family the packed
fast path must return corrected words and DUE masks bit-identical to the
reference oracle; detection-capable families must actually exercise the DUE
path.  The legacy ``BENCH_decoder_families.json`` is re-emitted from the
record.
"""

from __future__ import annotations

from typing import Mapping

from repro.bench.legacy import emit_decoder_families
from repro.bench.registry import (
    BenchContext,
    LegacySpec,
    MetricGate,
    WorkloadResult,
    register_workload,
)
from repro.bench.schema import ORACLE_SKIPPED

#: Families whose decode produces detected-uncorrectable words that the
#: random workload must actually observe (the DUE-path coverage oracle).
DUE_FAMILIES = ("secded-extended-hamming", "parity-detect")


def _family_workloads(params: Mapping):
    from repro.ecc import get_family

    k = params["num_data_bits"]
    words = params["num_words"]
    return [
        ("sec-hamming", get_family("sec-hamming").construct(k), words),
        (
            "secded-extended-hamming",
            get_family("secded-extended-hamming").construct(k),
            words,
        ),
        ("parity-detect", get_family("parity-detect").construct(k), words),
        ("repetition-3x", get_family("repetition").construct(8), words),
        ("repetition-2x-detect", get_family("repetition").construct(8, 8), words),
    ]


def _run(params: Mapping, context: BenchContext) -> WorkloadResult:
    import numpy as np

    from repro.einsim.engine import bulk_decode_outcomes

    floor = params["speedup_floor"]
    rng = np.random.default_rng(params["seed"])
    result = WorkloadResult()
    result.artifacts["quick"] = not context.is_full
    result.artifacts["families"] = []
    for label, code, num_words in _family_workloads(params):
        received = rng.integers(
            0, 2, size=(num_words, code.codeword_length), dtype=np.uint8
        )
        timings = {}
        outputs = {}
        for backend in ("reference", "packed"):
            timings[backend] = context.control.measure(
                lambda b=backend, c=code, r=received: bulk_decode_outcomes(c, r, b)
            )
            outputs[backend] = timings[backend].last_result
        ref_corrected, ref_due = outputs["reference"]
        packed_corrected, packed_due = outputs["packed"]
        identical = bool(
            np.array_equal(ref_corrected, packed_corrected)
            and np.array_equal(ref_due, packed_due)
        )
        speedup = timings["reference"].best_seconds / max(
            timings["packed"].best_seconds, 1e-12
        )
        result.artifacts["families"].append(
            {
                "family": label,
                "codeword_length": code.codeword_length,
                "num_data_bits": code.num_data_bits,
                "detect_only": code.detect_only,
                "num_words": num_words,
            }
        )
        result.add(
            f"{label}:reference",
            metrics={"seconds": timings["reference"].best_seconds},
        )
        oracles = {"outputs_identical": identical}
        if label in DUE_FAMILIES:
            oracles["due_exercised"] = bool(ref_due.sum() > 0)
        # Every family must be at least never-slower than the reference
        # (this caught the parity-detect fold-table regression); the tiered
        # floor applies to the headline sec-hamming condition.
        family_floor = floor if label == "sec-hamming" else (
            None if floor is None else 1.0
        )
        oracles["speedup_floor"] = (
            ORACLE_SKIPPED if family_floor is None else speedup >= family_floor
        )
        result.add(
            f"{label}:packed",
            metrics={
                "seconds": timings["packed"].best_seconds,
                "speedup": speedup,
                "due_words": int(ref_due.sum()),
            },
            oracles=oracles,
        )
    return result


def _exact(metric: str):
    return (
        MetricGate(metric=metric, rel_tol=0.0, higher_is_better=True),
        MetricGate(metric=metric, rel_tol=0.0, higher_is_better=False),
    )


register_workload(
    name="decoder-families",
    description=(
        "reference vs packed bulk_decode_outcomes (corrected words + DUE "
        "masks) for every registered code family"
    ),
    tiers={
        "smoke": dict(num_data_bits=16, num_words=400, seed=0, speedup_floor=None),
        "quick": dict(num_data_bits=32, num_words=2_000, seed=0, speedup_floor=1.0),
        "full": dict(num_data_bits=128, num_words=20_000, seed=0, speedup_floor=3.0),
    },
    run=_run,
    gates=(
        # The per-family DUE counts are deterministic for a fixed seed.
        *_exact("due_words"),
        MetricGate(
            metric="speedup",
            condition="sec-hamming:packed",
            rel_tol=0.6,
            higher_is_better=True,
        ),
    ),
    legacy=LegacySpec(
        filename="BENCH_decoder_families.json", emitter=emit_decoder_families
    ),
    tags=("core", "perf"),
)
