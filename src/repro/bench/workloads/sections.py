"""Workloads: the paper's section studies (5.1.x, 5.3, 6.3) and the solver
backend ablation, through the harness.

As with the figure workloads, each study runs as one ``default`` condition
(or one condition per compared backend) whose oracles encode the paper's
claim; seeds and scales are fixed per tier.
"""

from __future__ import annotations

from typing import Mapping

from repro.bench.registry import BenchContext, WorkloadResult, register_workload

SECTION_TAGS = ("section",)


def _fast_retention():
    from repro.dram import DataRetentionModel
    from repro.dram.retention import RetentionCalibration

    return DataRetentionModel(RetentionCalibration(1.0, 0.02, 60.0, 0.5))


# ---------------------------------------------------------------------------
# Section 5.1.1 — true-/anti-cell layout discovery
# ---------------------------------------------------------------------------
def _run_sec511(params: Mapping, context: BenchContext) -> WorkloadResult:
    from repro.core import discover_cell_types
    from repro.dram import CellType, ChipGeometry, VENDOR_A, VENDOR_C

    geometry = ChipGeometry(*params["geometry"])
    retention = _fast_retention()
    chips = {
        vendor.name: vendor.make_chip(
            num_data_bits=params["num_data_bits"],
            geometry=geometry,
            seed=params["seed"],
            retention_model=retention,
        )
        for vendor in (VENDOR_A, VENDOR_C)
    }
    timing = context.control.time_once(
        lambda: discover_cell_types(
            chips["C"], refresh_pause_s=params["refresh_pause_s"]
        )
    )
    classification_c = timing.last_result
    classification_a = discover_cell_types(
        chips["A"], refresh_pause_s=params["refresh_pause_s"]
    )

    ground_truth = VENDOR_C.cell_layout()
    matches = sum(
        1
        for row, value in classification_c.items()
        if value is ground_truth.cell_type_for_row(row)
    )
    accuracy = matches / geometry.num_rows
    result = WorkloadResult()
    result.artifacts.update(
        {
            "vendor_c_accuracy": accuracy,
            "vendor_c_anti_rows": sum(
                1 for v in classification_c.values() if v is CellType.ANTI_CELL
            ),
        }
    )
    result.add(
        "default",
        metrics={"seconds": timing.best_seconds, "layout_accuracy": accuracy},
        oracles={
            "vendor_a_all_true_cells": all(
                value is CellType.TRUE_CELL for value in classification_a.values()
            ),
            "vendor_c_uses_anti_cells": (
                CellType.ANTI_CELL in classification_c.values()
            ),
            "vendor_c_layout_recovered": accuracy >= 0.9,
        },
    )
    return result


register_workload(
    name="sec511-cell-layout",
    description=(
        "section 5.1.1: data-0/data-1 retention tests reveal each row's "
        "true-/anti-cell encoding"
    ),
    tiers={
        "smoke": dict(num_data_bits=8, geometry=(16, 8), refresh_pause_s=90.0, seed=0),
        "quick": dict(num_data_bits=16, geometry=(20, 8), refresh_pause_s=90.0, seed=0),
        "full": dict(num_data_bits=16, geometry=(28, 8), refresh_pause_s=90.0, seed=0),
    },
    run=_run_sec511,
    tags=SECTION_TAGS,
)


# ---------------------------------------------------------------------------
# Section 5.1.2 — ECC dataword layout discovery
# ---------------------------------------------------------------------------
def _run_sec512(params: Mapping, context: BenchContext) -> WorkloadResult:
    from repro.core import discover_dataword_layout
    from repro.core.layout_re import estimate_dataword_bits
    from repro.dram import ChipGeometry, DataRetentionModel, SimulatedDramChip
    from repro.dram.layout import ByteInterleavedWordLayout
    from repro.dram.retention import RetentionCalibration
    from repro.ecc import hamming_code

    chip = SimulatedDramChip(
        hamming_code(params["num_data_bits"]),
        ChipGeometry(*params["geometry"]),
        word_layout=ByteInterleavedWordLayout(
            dataword_bytes=params["dataword_bytes"],
            words_per_region=params["words_per_region"],
        ),
        retention_model=DataRetentionModel(
            RetentionCalibration(1.0, 0.02, 60.0, 0.6)
        ),
        seed=params["seed"],
    )
    timing = context.control.time_once(
        lambda: discover_dataword_layout(
            chip, refresh_pause_s=params["refresh_pause_s"]
        )
    )
    groups = timing.last_result
    multi_byte_groups = [set(group) for group in groups if len(group) > 1]
    interleaving_clean = bool(multi_byte_groups) and all(
        group in ({0, 2}, {1, 3}) for group in multi_byte_groups
    )
    result = WorkloadResult()
    result.artifacts.update(
        {
            "groups": [sorted(group) for group in groups],
            "estimated_dataword_bits": estimate_dataword_bits(groups),
        }
    )
    result.add(
        "default",
        metrics={"seconds": timing.best_seconds},
        oracles={"byte_interleaving_recovered": interleaving_clean},
    )
    return result


register_workload(
    name="sec512-dataword-layout",
    description=(
        "section 5.1.2: uncorrectable-error injection confines miscorrections "
        "to one ECC word, revealing the byte-interleaved dataword layout"
    ),
    tiers={
        "smoke": dict(
            num_data_bits=16, geometry=(12, 8), dataword_bytes=2,
            words_per_region=2, refresh_pause_s=95.0, seed=4,
        ),
        "quick": dict(
            num_data_bits=16, geometry=(16, 8), dataword_bytes=2,
            words_per_region=2, refresh_pause_s=95.0, seed=4,
        ),
        "full": dict(
            num_data_bits=16, geometry=(16, 8), dataword_bytes=2,
            words_per_region=2, refresh_pause_s=95.0, seed=4,
        ),
    },
    run=_run_sec512,
    tags=SECTION_TAGS,
)


# ---------------------------------------------------------------------------
# Section 5.3 — end-to-end BEER recovery per manufacturer
# ---------------------------------------------------------------------------
def _run_sec53(params: Mapping, context: BenchContext) -> WorkloadResult:
    from repro.core import BeerExperiment, ExperimentConfig
    from repro.dram import ChipGeometry, all_vendors
    from repro.ecc import codes_equivalent

    config = ExperimentConfig(
        pattern_weights=(1, 2),
        refresh_windows_s=tuple(params["refresh_windows_s"]),
        rounds_per_window=params["rounds_per_window"],
        threshold=0.0,
        discover_cell_encoding=True,
        discovery_pause_s=60.0,
    )
    retention = _fast_retention()
    geometry = ChipGeometry(*params["geometry"])

    def campaigns():
        outcomes = []
        for vendor in all_vendors():
            for chip_seed in params["chip_seeds"]:
                chip = vendor.make_chip(
                    num_data_bits=params["num_data_bits"],
                    geometry=geometry,
                    seed=chip_seed,
                    retention_model=retention,
                )
                solution = BeerExperiment(chip, config).run(solve=True).solution
                outcomes.append(
                    {
                        "vendor": vendor.name,
                        "chip_seed": chip_seed,
                        "solutions": solution.num_solutions,
                        "matches_ground_truth": any(
                            codes_equivalent(candidate, chip.code)
                            for candidate in solution.codes
                        ),
                        "recovered_code": solution.codes[0]
                        if solution.codes
                        else None,
                    }
                )
        return outcomes

    timing = context.control.time_once(campaigns)
    outcomes = timing.last_result
    by_vendor = {}
    for outcome in outcomes:
        by_vendor.setdefault(outcome["vendor"], []).append(outcome["recovered_code"])
    same_model_agree = all(
        all(
            code is not None and codes_equivalent(codes[0], code)
            for code in codes[1:]
        )
        for codes in by_vendor.values()
        if codes[0] is not None
    ) and all(codes[0] is not None for codes in by_vendor.values())

    result = WorkloadResult()
    result.artifacts["campaigns"] = [
        {k: v for k, v in outcome.items() if k != "recovered_code"}
        for outcome in outcomes
    ]
    result.add(
        "default",
        metrics={"seconds": timing.best_seconds, "campaigns": len(outcomes)},
        oracles={
            "every_campaign_unique": all(o["solutions"] == 1 for o in outcomes),
            "every_recovery_correct": all(
                o["matches_ground_truth"] for o in outcomes
            ),
            "same_model_chips_agree": same_model_agree,
        },
    )
    return result


register_workload(
    name="sec53-end-to-end-recovery",
    description=(
        "section 5.3: the full BEER methodology recovers exactly one ECC "
        "function per manufacturer, identical across chips of one model"
    ),
    tiers={
        # Unique recovery needs the full pattern/window/round budget — smaller
        # campaigns leave the profile under-constrained — and the whole study
        # runs in well under a second, so every tier uses the paper's setup.
        tier: dict(
            num_data_bits=8, geometry=(32, 8),
            refresh_windows_s=(30.0, 45.0, 60.0), rounds_per_window=8,
            chip_seeds=(0, 1),
        )
        for tier in ("smoke", "quick", "full")
    },
    run=_run_sec53,
    tags=SECTION_TAGS,
)


# ---------------------------------------------------------------------------
# Section 6.3 — analytical experiment runtime
# ---------------------------------------------------------------------------
def _run_sec63(params: Mapping, context: BenchContext) -> WorkloadResult:
    from repro.analysis import ExperimentRuntimeModel

    model = ExperimentRuntimeModel()
    windows = [60.0 * minutes for minutes in range(2, 23)]
    timing = context.control.time_once(lambda: model.sweep_seconds(windows))
    serial_seconds = timing.last_result
    fully_parallel = model.parallel_sweep_seconds(windows, params["num_chips"])

    result = WorkloadResult()
    result.artifacts.update(
        {
            "serial_hours": serial_seconds / 3600.0,
            "parallel_hours": fully_parallel / 3600.0,
        }
    )
    result.add(
        "default",
        metrics={"seconds": timing.best_seconds},
        oracles={
            "serial_sweep_about_4_2_hours": (
                abs(serial_seconds / 3600.0 - 4.2) < 0.2
            ),
            "parallelism_bounded_by_longest_window": (
                fully_parallel >= 22 * 60.0
            ),
            "parallelism_helps": fully_parallel < serial_seconds,
        },
    )
    return result


register_workload(
    name="sec63-experiment-runtime",
    description=(
        "section 6.3: analytical real-chip campaign runtime — ~4.2 hours "
        "serial, parallelism bounded by the longest refresh window"
    ),
    tiers={tier: dict(num_chips=21) for tier in ("smoke", "quick", "full")},
    run=_run_sec63,
    tags=SECTION_TAGS,
)


# ---------------------------------------------------------------------------
# Ablation — specialised constraint-propagation solver vs CNF/CDCL SAT
# ---------------------------------------------------------------------------
def _run_ablation(params: Mapping, context: BenchContext) -> WorkloadResult:
    import numpy as np

    from repro.core import (
        BeerSolver,
        SatBeerSolver,
        charged_patterns,
        expected_miscorrection_profile,
    )
    from repro.ecc import codes_equivalent, random_hamming_code

    num_data_bits = params["num_data_bits"]
    seed = params["seed"]
    code = random_hamming_code(num_data_bits, rng=np.random.default_rng(seed))
    profile = expected_miscorrection_profile(
        code, list(charged_patterns(num_data_bits, [1, 2]))
    )

    result = WorkloadResult()
    outcomes = {}
    for label, factory in (
        ("specialised", BeerSolver),
        ("sat", SatBeerSolver),
    ):
        timing = context.control.time_once(
            lambda f=factory: f(num_data_bits).solve(profile)
        )
        solution = timing.last_result
        outcomes[label] = solution
        result.add(
            label,
            metrics={
                "seconds": timing.best_seconds,
                "num_solutions": solution.num_solutions,
            },
            oracles={
                "unique": solution.unique,
                "matches_ground_truth": codes_equivalent(solution.code, code),
            },
        )
    result.artifacts["backends_agree"] = bool(
        codes_equivalent(outcomes["specialised"].code, outcomes["sat"].code)
    )
    return result


register_workload(
    name="ablation-solver-backends",
    description=(
        "ablation: the specialised constraint-propagation solver and the "
        "CNF/CDCL SAT backend recover the same unique ECC function"
    ),
    tiers={
        tier: dict(num_data_bits=8, seed=0) for tier in ("smoke", "quick", "full")
    },
    run=_run_ablation,
    tags=("section", "ablation"),
)
