"""Workload definitions for the unified benchmark harness.

Importing this package populates the workload registry; each module calls
:func:`repro.bench.registry.register_workload` at import time.  The registry
itself imports this package lazily so that ``import repro`` stays cheap.
"""

from __future__ import annotations

from repro.bench.workloads import (  # noqa: F401  (imported for registration)
    decoder,
    figures,
    fused,
    gf2,
    sat,
    sections,
    store,
    sweep,
)
