"""Workload: serial vs process-parallel sweep execution (store byte identity).

Port of the PR 4 ``bench_sweep.py`` writer.  The campaign stores written by
the serial and ``jobs=N`` runs must be byte-identical in every tier; the
wall-time speedup floor only applies on full-tier runs with enough usable
CPUs — when it cannot apply, the skip is recorded explicitly as the
``skipped_speedup_gate`` metric (and an ``ORACLE_SKIPPED`` oracle) instead
of silently passing.  The legacy ``BENCH_sweep_parallel.json`` is re-emitted
from the record.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path
from typing import Mapping

from repro.bench.environment import usable_cpus
from repro.bench.legacy import emit_sweep_parallel
from repro.bench.registry import (
    BenchContext,
    LegacySpec,
    MetricGate,
    WorkloadResult,
    register_workload,
)
from repro.bench.schema import ORACLE_SKIPPED


def _sweep_payload(params: Mapping) -> dict:
    """A multi-cell einsim spec: error-rate points of one 32-bit code."""
    return {
        "name": "bench-parallel-sweep",
        "num_words": params["num_words"],
        "chunk_size": params["chunk_size"],
        "seeds": [0],
        "backends": ["packed"],
        "codes": [{"data_bits": 32}],
        "scenarios": [
            {
                "name": "uniform-random",
                "params": {"bit_error_rate": list(params["bit_error_rates"])},
            }
        ],
    }


def _run(params: Mapping, context: BenchContext) -> WorkloadResult:
    from repro.scenarios import SweepRunner, SweepSpec
    from repro.store import CampaignStore

    spec = SweepSpec.from_dict(_sweep_payload(params))
    jobs = params["jobs"]
    floor = params["speedup_floor"]
    cpus = usable_cpus()
    workdir = Path(tempfile.mkdtemp(prefix="bench_sweep_"))
    try:
        timings = {}
        stores = {}
        for label, n_jobs in (("serial", 1), ("parallel", jobs)):
            directory = workdir / label
            store = CampaignStore(directory)
            runner = SweepRunner(store=store, jobs=n_jobs)
            timing = context.control.time_once(lambda: runner.run(spec))
            report = timing.last_result
            assert report.simulated == spec.num_cells, report.to_dict()
            timings[label] = timing
            stores[label] = (directory / "records.jsonl").read_bytes()

        identical = stores["serial"] == stores["parallel"]
        speedup = timings["serial"].best_seconds / max(
            timings["parallel"].best_seconds, 1e-12
        )
        gate_applies = floor is not None and cpus >= jobs
        skipped = not gate_applies

        result = WorkloadResult()
        result.artifacts.update(
            {
                "quick": not context.is_full,
                "available_cpus": cpus,
                "num_cells": spec.num_cells,
                "num_words_per_cell": spec.cells[0].config()["num_words"],
                "skip_reason": (
                    None
                    if gate_applies
                    else (
                        f"only {cpus} usable CPU(s) for jobs={jobs}"
                        if floor is not None
                        else f"{context.tier} tier does not gate wall time"
                    )
                ),
            }
        )
        result.add(
            "serial",
            metrics={
                "seconds": timings["serial"].best_seconds,
                "store_bytes": len(stores["serial"]),
            },
        )
        result.add(
            "parallel",
            metrics={
                "seconds": timings["parallel"].best_seconds,
                "speedup": speedup,
                "skipped_speedup_gate": skipped,
            },
            oracles={
                "stores_byte_identical": bool(identical),
                "speedup_floor": (
                    ORACLE_SKIPPED if skipped else speedup >= floor
                ),
            },
        )
        return result
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def _exact(metric: str, condition: str):
    return (
        MetricGate(metric=metric, condition=condition, rel_tol=0.0, higher_is_better=True),
        MetricGate(metric=metric, condition=condition, rel_tol=0.0, higher_is_better=False),
    )


register_workload(
    name="sweep-parallel",
    description=(
        "serial vs process-parallel sweep executor over one multi-cell spec; "
        "campaign stores must stay byte-identical"
    ),
    tiers={
        "smoke": dict(
            num_words=1_000,
            chunk_size=512,
            bit_error_rates=(0.005, 0.02),
            jobs=2,
            speedup_floor=None,
        ),
        "quick": dict(
            num_words=6_000,
            chunk_size=2_048,
            bit_error_rates=(0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1),
            jobs=4,
            speedup_floor=None,
        ),
        "full": dict(
            num_words=250_000,
            chunk_size=16_384,
            bit_error_rates=(0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1),
            jobs=4,
            speedup_floor=1.5,
        ),
    },
    run=_run,
    # The store byte count is fully deterministic for a given spec — any
    # serialization drift shows up here before it corrupts caches.
    gates=_exact("store_bytes", "serial"),
    legacy=LegacySpec(
        filename="BENCH_sweep_parallel.json", emitter=emit_sweep_parallel
    ),
    tags=("core", "perf"),
)
