"""Workload: incremental vs one-shot SAT-based BEER model enumeration.

Port of the PR 3 ``bench_sat.py`` writer.  Both solver paths must enumerate
identical canonical code sets; the model/solution counts are deterministic
for a fixed seed, so the comparator pins them exactly, while the incremental
speedup is gated with a tolerance.  The legacy ``BENCH_sat_solver.json`` is
re-emitted from the record.
"""

from __future__ import annotations

from typing import Mapping

from repro.bench.legacy import emit_sat_solver
from repro.bench.registry import (
    BenchContext,
    LegacySpec,
    MetricGate,
    WorkloadResult,
    register_workload,
)
from repro.bench.schema import ORACLE_SKIPPED


def _run(params: Mapping, context: BenchContext) -> WorkloadResult:
    import numpy as np

    from repro.core import (
        SatBeerSolver,
        expected_miscorrection_profile,
        one_charged_patterns,
    )
    from repro.ecc import random_hamming_code
    from repro.ecc.codespace import canonical_form

    seed = params["seed"]
    floor = params["speedup_floor"]
    cases = [tuple(case) for case in params["cases"]]
    gate_case = params["gate_case"]

    result = WorkloadResult()
    result.artifacts["quick"] = not context.is_full
    result.artifacts["cases"] = []
    for num_data_bits, num_pinned in cases:
        code = random_hamming_code(num_data_bits, rng=np.random.default_rng(seed))
        profile = expected_miscorrection_profile(
            code, list(one_charged_patterns(num_data_bits))
        )
        pinned = {
            index: code.parity_column_ints[index] for index in range(num_pinned)
        }
        solver = SatBeerSolver(num_data_bits)

        # Incremental solves mutate persistent solver state (learned clauses
        # survive), so each path is timed exactly once — repeating would
        # measure a different problem.
        incremental_timing = context.control.time_once(
            lambda: solver.solve(profile, known_columns=pinned or None)
        )
        incremental = incremental_timing.last_result
        one_shot_timing = context.control.time_once(
            lambda: solver.solve(
                profile, known_columns=pinned or None, incremental=False
            )
        )
        one_shot = one_shot_timing.last_result

        identical = {canonical_form(c) for c in incremental.codes} == {
            canonical_form(c) for c in one_shot.codes
        }
        speedup = one_shot_timing.best_seconds / max(
            incremental_timing.best_seconds, 1e-12
        )
        result.artifacts["cases"].append(
            {
                "num_data_bits": num_data_bits,
                "num_parity_bits": solver.num_parity_bits,
                "pinned_columns": num_pinned,
                "solver_stats": incremental.solver_stats,
            }
        )
        result.add(
            f"k{num_data_bits}:one-shot",
            metrics={"seconds": one_shot_timing.best_seconds},
        )
        oracles = {"identical_canonical_sets": bool(identical)}
        if num_data_bits == gate_case:
            oracles["speedup_floor"] = (
                ORACLE_SKIPPED if floor is None else speedup >= floor
            )
        result.add(
            f"k{num_data_bits}:incremental",
            metrics={
                "seconds": incremental_timing.best_seconds,
                "speedup": speedup,
                "models_enumerated": incremental.nodes_visited,
                "canonical_codes": incremental.num_solutions,
            },
            oracles=oracles,
        )
    return result


def _exact(metric: str):
    # Two opposite-direction zero-tolerance gates pin a deterministic count
    # to the baseline exactly.
    return (
        MetricGate(metric=metric, rel_tol=0.0, higher_is_better=True),
        MetricGate(metric=metric, rel_tol=0.0, higher_is_better=False),
    )


register_workload(
    name="sat-solver",
    description=(
        "incremental vs one-shot BEER model enumeration on analytic "
        "miscorrection profiles (persistent CDCL solver vs fresh-solver oracle)"
    ),
    tiers={
        # The speedup floor applies to the k=16 unpinned case (the paper-scale
        # enumeration where incrementality pays off most); the pinned k=32
        # case mostly exercises known-column clamping, not enumeration.
        "smoke": dict(cases=((8, 0),), gate_case=8, seed=0, speedup_floor=None),
        "quick": dict(
            cases=((8, 0), (16, 3)), gate_case=16, seed=0, speedup_floor=1.0
        ),
        "full": dict(
            cases=((8, 0), (16, 0), (32, 4)),
            gate_case=16,
            seed=0,
            speedup_floor=3.0,
        ),
    },
    run=_run,
    gates=(
        *_exact("models_enumerated"),
        *_exact("canonical_codes"),
        MetricGate(metric="speedup", rel_tol=0.6, higher_is_better=True),
    ),
    legacy=LegacySpec(filename="BENCH_sat_solver.json", emitter=emit_sat_solver),
    tags=("core", "perf"),
)
