"""Workloads: the paper's figure/table reproductions through the harness.

Each workload wraps one :mod:`repro.analysis` data generator, times the
generation as a single ``default`` condition, and turns the figure's
expected *shape* (the paper's claim) into named oracles.  Seeds are fixed
per tier so every tier is deterministic.  The figure data itself lands in
the record's ``artifacts`` in summarised form.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.bench.registry import BenchContext, WorkloadResult, register_workload

FIGURE_TAGS = ("figure",)


# ---------------------------------------------------------------------------
# Figure 1 — per-bit post-correction error probability per ECC function
# ---------------------------------------------------------------------------
def _run_fig1(params: Mapping, context: BenchContext) -> WorkloadResult:
    from repro.analysis import figure1_error_probability_data

    timing = context.control.time_once(
        lambda: figure1_error_probability_data(**params)
    )
    data = timing.last_result
    shapes = [tuple(e["relative_error_probability"]) for e in data["post_correction"]]
    result = WorkloadResult()
    result.artifacts.update(
        {
            "distinct_post_correction_shapes": len(set(shapes)),
            "num_functions": len(shapes),
        }
    )
    result.add(
        "default",
        metrics={"seconds": timing.best_seconds},
        oracles={"functions_produce_distinct_shapes": len(set(shapes)) > 1},
    )
    return result


register_workload(
    name="fig1-error-probability",
    description=(
        "figure 1: per-bit post-correction error probability differs between "
        "ECC functions of the same (n, k) under identical injected errors"
    ),
    tiers={
        "smoke": dict(
            num_data_bits=8, num_functions=3, bit_error_rate=2e-2,
            num_words=4_000, num_bootstrap=10, seed=0,
        ),
        "quick": dict(
            num_data_bits=16, num_functions=3, bit_error_rate=5e-3,
            num_words=30_000, num_bootstrap=25, seed=0,
        ),
        "full": dict(
            num_data_bits=32, num_functions=3, bit_error_rate=1e-3,
            num_words=150_000, num_bootstrap=100, seed=0,
        ),
    },
    run=_run_fig1,
    tags=FIGURE_TAGS,
)


# ---------------------------------------------------------------------------
# Tables 1 and 2 — the worked (7, 4) example code
# ---------------------------------------------------------------------------
def _run_table1(params: Mapping, context: BenchContext) -> WorkloadResult:
    from repro.analysis import table1_outcome_data

    timing = context.control.time_once(lambda: table1_outcome_data(**params))
    rows = timing.last_result
    outcomes = [row["outcome"] for row in rows]
    result = WorkloadResult()
    result.artifacts["outcome_counts"] = {
        outcome: outcomes.count(outcome)
        for outcome in ("no error", "correctable", "uncorrectable")
    }
    result.add(
        "default",
        metrics={"seconds": timing.best_seconds},
        oracles={
            "one_no_error_case": outcomes.count("no error") == 1,
            "three_correctable_cases": outcomes.count("correctable") == 3,
            "four_uncorrectable_cases": outcomes.count("uncorrectable") == 4,
        },
    )
    return result


register_workload(
    name="table1-outcomes",
    description=(
        "table 1: the 2^3 retention-error patterns of one stored codeword "
        "split into no-error / correctable / uncorrectable outcomes"
    ),
    tiers={tier: {} for tier in ("smoke", "quick", "full")},
    run=_run_table1,
    tags=FIGURE_TAGS,
)


def _run_table2(params: Mapping, context: BenchContext) -> WorkloadResult:
    from repro.analysis import table2_miscorrection_profile_data

    timing = context.control.time_once(
        lambda: table2_miscorrection_profile_data(**params)
    )
    rows = timing.last_result
    by_pattern = {row["pattern_id"]: row["possible_miscorrections"] for row in rows}
    result = WorkloadResult()
    result.artifacts["profile"] = {str(k): v for k, v in sorted(by_pattern.items())}
    result.add(
        "default",
        metrics={"seconds": timing.best_seconds},
        oracles={
            "pattern0_miscorrects_bits_123": by_pattern[0] == [1, 2, 3],
            "other_patterns_clean": all(
                by_pattern[p] == [] for p in (1, 2, 3)
            ),
        },
    )
    return result


register_workload(
    name="table2-miscorrection-profile",
    description=(
        "table 2: only the pattern charging data bit 0 of the (7, 4) example "
        "code can miscorrect (at bits 1, 2, 3)"
    ),
    tiers={tier: {} for tier in ("smoke", "quick", "full")},
    run=_run_table2,
    tags=FIGURE_TAGS,
)


# ---------------------------------------------------------------------------
# Figure 3 — per-manufacturer error maps
# ---------------------------------------------------------------------------
def _run_fig3(params: Mapping, context: BenchContext) -> WorkloadResult:
    from repro.analysis import figure3_manufacturer_profile_data
    from repro.dram import ChipGeometry

    kwargs = dict(params)
    kwargs["geometry"] = ChipGeometry(*kwargs.pop("geometry"))
    timing = context.control.time_once(
        lambda: figure3_manufacturer_profile_data(**kwargs)
    )
    data = timing.last_result
    flattened = {
        name: tuple(d["error_count_matrix"].flatten()) for name, d in data.items()
    }
    traces = {
        name: int(np.trace(d["error_count_matrix"])) for name, d in data.items()
    }
    result = WorkloadResult()
    result.artifacts.update(
        {
            "total_error_counts": {
                name: int(sum(values)) for name, values in flattened.items()
            },
            "diagonal_counts": traces,
        }
    )
    result.add(
        "default",
        metrics={"seconds": timing.best_seconds},
        oracles={
            "manufacturer_maps_differ": (
                flattened["A"] != flattened["B"] and flattened["B"] != flattened["C"]
            ),
            "charged_bit_errors_observed": all(t > 0 for t in traces.values()),
        },
    )
    return result


register_workload(
    name="fig3-manufacturer-profiles",
    description=(
        "figure 3: 1-CHARGED error maps differ between manufacturers (they "
        "use different ECC functions)"
    ),
    tiers={
        "smoke": dict(
            num_data_bits=8, geometry=(16, 8), refresh_windows_s=(45.0, 60.0),
            rounds_per_window=3, seed=0,
        ),
        "quick": dict(
            num_data_bits=16, geometry=(32, 8), refresh_windows_s=(30.0, 60.0),
            rounds_per_window=3, seed=0,
        ),
        "full": dict(
            num_data_bits=16, geometry=(32, 8),
            refresh_windows_s=(30.0, 45.0, 60.0), rounds_per_window=6, seed=0,
        ),
    },
    run=_run_fig3,
    tags=FIGURE_TAGS,
)


# ---------------------------------------------------------------------------
# Figure 4 — threshold filter separating miscorrections from noise
# ---------------------------------------------------------------------------
def _run_fig4(params: Mapping, context: BenchContext) -> WorkloadResult:
    from repro.analysis import figure4_threshold_data

    timing = context.control.time_once(lambda: figure4_threshold_data(**params))
    data = timing.last_result
    medians = np.array(data["per_bit_median"])
    susceptible = sorted(data["analytically_susceptible_bits"])
    non_susceptible = [b for b in range(len(medians)) if b not in susceptible]
    separable = True
    if susceptible and non_susceptible:
        separable = bool(
            medians[susceptible].max() > medians[non_susceptible].max()
        )
    result = WorkloadResult()
    result.artifacts.update(
        {
            "susceptible_bits": susceptible,
            "max_susceptible_median": float(medians[susceptible].max())
            if susceptible
            else None,
            "max_non_susceptible_median": float(medians[non_susceptible].max())
            if non_susceptible
            else None,
        }
    )
    result.add(
        "default",
        metrics={"seconds": timing.best_seconds},
        oracles={"susceptible_bits_separable": separable},
    )
    return result


register_workload(
    name="fig4-threshold-filter",
    description=(
        "figure 4: per-bit miscorrection probabilities separate into a "
        "near-zero and a clearly non-zero group (the threshold filter works)"
    ),
    tiers={
        "smoke": dict(
            num_data_bits=8, refresh_windows_s=(40.0, 60.0),
            rounds_per_window=2, transient_fault_probability=2e-4, seed=1,
        ),
        "quick": dict(
            num_data_bits=16, refresh_windows_s=(30.0, 45.0, 60.0),
            rounds_per_window=2, transient_fault_probability=2e-4, seed=1,
        ),
        "full": dict(
            num_data_bits=16, refresh_windows_s=(20.0, 30.0, 40.0, 50.0, 60.0),
            rounds_per_window=4, transient_fault_probability=2e-4, seed=1,
        ),
    },
    run=_run_fig4,
    tags=FIGURE_TAGS,
)


# ---------------------------------------------------------------------------
# Figure 5 — uniqueness per test-pattern set
# ---------------------------------------------------------------------------
#: Dataword lengths of unshortened SEC Hamming codes (k = 2^r - r - 1).
FULL_LENGTH_DATAWORDS = frozenset({4, 11, 26, 57, 120, 247})


def _run_fig5(params: Mapping, context: BenchContext) -> WorkloadResult:
    from repro.analysis import figure5_uniqueness_data

    timing = context.control.time_once(lambda: figure5_uniqueness_data(**params))
    data = timing.last_result
    counts = data["solution_counts"]
    lengths = data["dataword_lengths"]
    combined_unique = all(
        counts["{1,2}-CHARGED"][k]["max"] == 1.0 for k in lengths
    )
    full_length_unique = all(
        counts["1-CHARGED"][k]["max"] == 1.0
        for k in lengths
        if k in FULL_LENGTH_DATAWORDS
    )
    result = WorkloadResult()
    result.artifacts["max_candidates"] = {
        set_name: {str(k): counts[set_name][k]["max"] for k in lengths}
        for set_name in counts
    }
    result.add(
        "default",
        metrics={"seconds": timing.best_seconds},
        oracles={
            "combined_pattern_set_always_unique": combined_unique,
            "full_length_codes_unique_with_1charged": full_length_unique,
        },
    )
    return result


register_workload(
    name="fig5-uniqueness",
    description=(
        "figure 5: the {1,2}-CHARGED pattern set always identifies the ECC "
        "function uniquely; full-length codes are unique for every set"
    ),
    tiers={
        "smoke": dict(
            dataword_lengths=(4, 6), codes_per_length=1, max_solutions=25, seed=0,
        ),
        "quick": dict(
            dataword_lengths=(4, 6, 8, 11), codes_per_length=2,
            max_solutions=25, seed=0,
        ),
        "full": dict(
            dataword_lengths=(4, 6, 8, 11, 16), codes_per_length=3,
            max_solutions=25, seed=0,
        ),
    },
    run=_run_fig5,
    tags=FIGURE_TAGS,
)


# ---------------------------------------------------------------------------
# Figure 6 — BEER solver runtime/memory scaling
# ---------------------------------------------------------------------------
def _run_fig6(params: Mapping, context: BenchContext) -> WorkloadResult:
    from repro.analysis import figure6_runtime_data

    timing = context.control.time_once(lambda: figure6_runtime_data(**params))
    rows = timing.last_result["rows"]
    result = WorkloadResult()
    result.artifacts["rows"] = rows
    result.add(
        "default",
        metrics={
            "seconds": timing.best_seconds,
            "largest_total_seconds": rows[-1]["total_seconds"],
        },
        oracles={
            "runtime_grows_with_length": (
                rows[-1]["total_seconds"] >= rows[0]["total_seconds"]
            ),
            "uniqueness_check_dominates": all(
                row["check_uniqueness_seconds"]
                >= 0.5 * row["determine_function_seconds"]
                for row in rows
            ),
        },
    )
    return result


register_workload(
    name="fig6-solver-runtime",
    description=(
        "figure 6: BEER solver runtime grows with code length and the "
        "uniqueness check dominates total runtime"
    ),
    tiers={
        "smoke": dict(dataword_lengths=(4, 8), codes_per_length=1, seed=0),
        "quick": dict(dataword_lengths=(4, 8, 16), codes_per_length=1, seed=0),
        "full": dict(dataword_lengths=(4, 8, 16, 32), codes_per_length=2, seed=0),
    },
    run=_run_fig6,
    tags=FIGURE_TAGS,
)


# ---------------------------------------------------------------------------
# Figures 8 and 9 — BEEP success rates
# ---------------------------------------------------------------------------
def _run_fig8(params: Mapping, context: BenchContext) -> WorkloadResult:
    from repro.analysis import figure8_beep_pass_data

    timing = context.control.time_once(lambda: figure8_beep_pass_data(**params))
    rows = timing.last_result["rows"]
    lengths = sorted({row["codeword_length"] for row in rows})
    passes = sorted({row["passes"] for row in rows})
    mean_by_passes = {
        p: float(np.mean([r["success_rate"] for r in rows if r["passes"] == p]))
        for p in passes
    }
    two_pass_by_length = {
        n: float(
            np.mean(
                [
                    r["success_rate"]
                    for r in rows
                    if r["codeword_length"] == n and r["passes"] == passes[-1]
                ]
            )
        )
        for n in lengths
    }
    result = WorkloadResult()
    result.artifacts.update(
        {
            "mean_success_by_passes": {str(p): v for p, v in mean_by_passes.items()},
            "final_pass_success_by_length": {
                str(n): v for n, v in two_pass_by_length.items()
            },
        }
    )
    result.add(
        "default",
        metrics={
            "seconds": timing.best_seconds,
            "mean_success_final_pass": mean_by_passes[passes[-1]],
        },
        oracles={
            "second_pass_helps": (
                mean_by_passes[passes[-1]] >= mean_by_passes[passes[0]] - 1e-9
            ),
            "longer_codewords_profile_well": (
                two_pass_by_length[lengths[-1]]
                >= two_pass_by_length[lengths[0]] - 0.15
            ),
            "success_substantial": mean_by_passes[passes[-1]] >= 0.5,
        },
    )
    return result


register_workload(
    name="fig8-beep-passes",
    description=(
        "figure 8: BEEP success rate improves with a second profiling pass "
        "and with longer codewords"
    ),
    tiers={
        "smoke": dict(
            codeword_lengths=(31,), error_counts=(2, 3), passes=(1, 2),
            codewords_per_point=4, seed=0,
        ),
        "quick": dict(
            codeword_lengths=(31, 63), error_counts=(2, 3), passes=(1, 2),
            codewords_per_point=8, seed=0,
        ),
        "full": dict(
            codeword_lengths=(31, 63, 127), error_counts=(2, 3, 4, 5),
            passes=(1, 2), codewords_per_point=16, seed=0,
        ),
    },
    run=_run_fig8,
    tags=FIGURE_TAGS,
)


def _run_fig9(params: Mapping, context: BenchContext) -> WorkloadResult:
    from repro.analysis import figure9_beep_probability_data

    timing = context.control.time_once(
        lambda: figure9_beep_probability_data(**params)
    )
    rows = timing.last_result["rows"]
    lengths = sorted({row["codeword_length"] for row in rows})
    probabilities = sorted({row["per_bit_error_probability"] for row in rows})
    mean_by_probability = {
        p: float(
            np.mean(
                [
                    r["success_rate"]
                    for r in rows
                    if r["per_bit_error_probability"] == p
                ]
            )
        )
        for p in probabilities
    }
    mean_by_length = {
        n: float(
            np.mean([r["success_rate"] for r in rows if r["codeword_length"] == n])
        )
        for n in lengths
    }
    result = WorkloadResult()
    result.artifacts.update(
        {
            "mean_success_by_probability": {
                str(p): v for p, v in mean_by_probability.items()
            },
            "mean_success_by_length": {str(n): v for n, v in mean_by_length.items()},
        }
    )
    result.add(
        "default",
        metrics={"seconds": timing.best_seconds},
        oracles={
            "deterministic_failures_easiest": (
                mean_by_probability[probabilities[-1]]
                >= mean_by_probability[probabilities[0]] - 1e-9
            ),
            "longer_codewords_more_resilient": (
                mean_by_length[lengths[-1]] >= mean_by_length[lengths[0]] - 1e-9
            ),
        },
    )
    return result


register_workload(
    name="fig9-beep-error-probability",
    description=(
        "figure 9: BEEP stays effective with probabilistic cell failures; "
        "success degrades as per-bit failure probability drops"
    ),
    tiers={
        "smoke": dict(
            codeword_lengths=(31,), error_counts=(3,),
            per_bit_probabilities=(1.0, 0.25), codewords_per_point=4, seed=0,
        ),
        "quick": dict(
            codeword_lengths=(31, 63), error_counts=(3,),
            per_bit_probabilities=(1.0, 0.5, 0.25), codewords_per_point=6, seed=0,
        ),
        "full": dict(
            codeword_lengths=(31, 63, 127), error_counts=(2, 3, 4, 5),
            per_bit_probabilities=(1.0, 0.75, 0.5, 0.25),
            codewords_per_point=15, seed=0,
        ),
    },
    run=_run_fig9,
    tags=FIGURE_TAGS,
)
