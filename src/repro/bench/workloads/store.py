"""Workload: store open + full cache-hit check, sharded vs single-file.

The synthetic campaign has deliberately small configs and fat result
payloads — the shape of a real einsim sweep — so the cost a layout pays
to answer "is this key committed?" is what the timer sees.  Opening a v1
single-file store parses and content-verifies every payload before the
first membership test; a v2 sharded store reads only its compacted
sidecar indexes and answers membership from a dict.  The full tier runs
the ISSUE-9 acceptance scale (>=20k cells) and gates the speedup at 10x;
smoke/quick record the speedup but skip the floor (small stores measure
filesystem latency, not layout behaviour).

Correctness oracles in every tier: exact record counts through both
layouts, identical key sets, and a byte-identity proof that
``migrate(v1 -> v2)`` -> ``compact`` -> ``migrate(v2 -> v1)`` reproduces
the original ``records.jsonl`` bit for bit.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path
from typing import Mapping

from repro.bench.registry import (
    BenchContext,
    MetricGate,
    WorkloadResult,
    register_workload,
)
from repro.bench.schema import ORACLE_SKIPPED


def _write_synthetic_v1(directory: Path, records: int, result_ints: int) -> bytes:
    """Write a canonical v1 ``records.jsonl`` of ``records`` synthetic cells."""
    from repro.store import ResultRecord, content_key

    directory.mkdir(parents=True, exist_ok=True)
    lines = []
    for index in range(records):
        config = {"cell": index, "kind": "bench-store", "seed": index % 7}
        result = {
            "counts": [(index * 31 + slot) % 997 for slot in range(result_ints)],
            "num_words": 1000 + index,
        }
        record = ResultRecord(
            key=content_key(config), config=config, result=result
        )
        lines.append(record.to_json_line() + "\n")
    payload = "".join(lines).encode("utf-8")
    (directory / "records.jsonl").write_bytes(payload)
    return payload


def _open_and_hit_check(directory: Path, keys: list) -> int:
    """Open a store and membership-test every key; return the hit count."""
    from repro.store import CampaignStore

    store = CampaignStore(directory)
    return sum(1 for key in keys if key in store)


def _run(params: Mapping, context: BenchContext) -> WorkloadResult:
    from repro.store import (
        SHARDED,
        SINGLE_FILE,
        CampaignStore,
        store_compact,
        store_migrate,
    )

    records = params["records"]
    floor = params["speedup_floor"]
    workdir = Path(tempfile.mkdtemp(prefix="bench_store_"))
    try:
        v1_dir = workdir / "v1"
        v1_bytes = _write_synthetic_v1(v1_dir, records, params["result_ints"])
        keys = CampaignStore(v1_dir).keys()

        # The sharded twin: same record set, migrated through the real path.
        v2_dir = workdir / "v2"
        shutil.copytree(v1_dir, v2_dir)
        migrated = store_migrate(v2_dir, SHARDED)["records"]

        # Round-trip proof on a third copy: v1 -> v2 -> compact -> v1 must
        # reproduce the original records.jsonl byte for byte.
        rt_dir = workdir / "roundtrip"
        shutil.copytree(v1_dir, rt_dir)
        store_migrate(rt_dir, SHARDED)
        store_compact(rt_dir)
        store_migrate(rt_dir, SINGLE_FILE)
        round_trip_identical = (
            rt_dir / "records.jsonl"
        ).read_bytes() == v1_bytes

        timings = {}
        hits = {}
        for label, directory in (("single-file", v1_dir), ("sharded", v2_dir)):
            timing = context.control.time_once(
                lambda d=directory: _open_and_hit_check(d, keys)
            )
            timings[label] = timing
            hits[label] = timing.last_result

        speedup = timings["single-file"].best_seconds / max(
            timings["sharded"].best_seconds, 1e-12
        )
        skipped = floor is None
        sharded_keys = CampaignStore(v2_dir).keys()

        result = WorkloadResult()
        result.artifacts.update(
            {
                "quick": not context.is_full,
                "records": records,
                "v1_bytes": len(v1_bytes),
                "skip_reason": (
                    None if floor is not None
                    else f"{context.tier} tier does not gate the speedup floor"
                ),
            }
        )
        result.add(
            "single-file",
            metrics={
                "open_hit_seconds": timings["single-file"].best_seconds,
                "record_count": hits["single-file"],
                "store_bytes": len(v1_bytes),
            },
            oracles={
                "record_count_exact": hits["single-file"] == records,
            },
        )
        result.add(
            "sharded",
            metrics={
                "open_hit_seconds": timings["sharded"].best_seconds,
                "record_count": hits["sharded"],
                "speedup": speedup,
                "skipped_speedup_gate": skipped,
            },
            oracles={
                "record_count_exact": (
                    hits["sharded"] == records and migrated == records
                ),
                "key_order_identical": sharded_keys == keys,
                "migrate_round_trip_byte_identical": round_trip_identical,
                "speedup_floor": (
                    ORACLE_SKIPPED if skipped else speedup >= floor
                ),
            },
        )
        return result
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def _exact(metric: str, condition: str):
    return (
        MetricGate(metric=metric, condition=condition, rel_tol=0.0, higher_is_better=True),
        MetricGate(metric=metric, condition=condition, rel_tol=0.0, higher_is_better=False),
    )


register_workload(
    name="store-layouts",
    description=(
        "campaign-store open + full cache-hit check, v2 sharded vs v1 "
        "single-file, with migrate round-trip byte identity"
    ),
    tiers={
        "smoke": dict(records=64, result_ints=32, speedup_floor=None),
        "quick": dict(records=2_000, result_ints=64, speedup_floor=None),
        "full": dict(records=25_000, result_ints=64, speedup_floor=10.0),
    },
    run=_run,
    # Record counts are fully deterministic for a given tier — any layout
    # losing or duplicating records shows up here before it poisons caches.
    gates=_exact("record_count", "single-file") + _exact("record_count", "sharded"),
    tags=("core", "perf", "store"),
)
