"""Workload: GF(2) backend comparison (reference vs packed kernels).

Port of the PR 1 ``bench_gf2_backends.py`` writer: the 10k-word (136, 128)
bulk-decode acceptance microbenchmark plus fig6-style solver-input
generation, decomposed into merged-schema conditions.  The legacy
``BENCH_gf2_backends.json`` is re-emitted from the record.
"""

from __future__ import annotations

from typing import Mapping

from repro.bench.legacy import emit_gf2_backends
from repro.bench.registry import (
    BenchContext,
    LegacySpec,
    MetricGate,
    WorkloadResult,
    register_workload,
)
from repro.bench.schema import ORACLE_SKIPPED


def _run(params: Mapping, context: BenchContext) -> WorkloadResult:
    from repro.analysis import gf2_backend_comparison_data

    data = gf2_backend_comparison_data(
        num_words=params["num_words"],
        num_data_bits=params["num_data_bits"],
        dataword_lengths=tuple(params["dataword_lengths"]),
        words_per_pattern=params["words_per_pattern"],
        repeats=params["repeats"],
        seed=params["seed"],
    )
    floor = params["speedup_floor"]
    result = WorkloadResult()

    micro = data["bulk_decode"]
    result.artifacts["bulk_decode"] = {
        "codeword_length": micro["codeword_length"],
        "num_data_bits": micro["num_data_bits"],
        "num_words": micro["num_words"],
        "repeats": micro["repeats"],
    }
    result.add(
        "bulk-decode:reference", metrics={"seconds": micro["reference_seconds"]}
    )
    result.add(
        "bulk-decode:packed",
        metrics={"seconds": micro["packed_seconds"], "speedup": micro["speedup"]},
        oracles={
            "outputs_identical": bool(micro["outputs_identical"]),
            "speedup_floor": (
                ORACLE_SKIPPED if floor is None else micro["speedup"] >= floor
            ),
        },
    )

    result.artifacts["solver_input"] = []
    for row in data["solver_input"]["rows"]:
        length = row["dataword_length"]
        result.artifacts["solver_input"].append(
            {
                "dataword_length": length,
                "codeword_length": row["codeword_length"],
                "num_patterns": row["num_patterns"],
                "words_per_pattern": row["words_per_pattern"],
            }
        )
        result.add(
            f"solver-input-k{length}:reference",
            metrics={"seconds": row["reference_seconds"]},
        )
        result.add(
            f"solver-input-k{length}:packed",
            metrics={"seconds": row["packed_seconds"], "speedup": row["speedup"]},
            oracles={"profiles_identical": bool(row["profiles_identical"])},
        )
    return result


register_workload(
    name="gf2-backends",
    description=(
        "reference vs bit-packed GF(2) kernels: bulk-decode microbenchmark "
        "and fig6-style solver-input generation"
    ),
    tiers={
        "smoke": dict(
            num_words=200,
            num_data_bits=32,
            dataword_lengths=(8,),
            words_per_pattern=100,
            repeats=1,
            seed=0,
            speedup_floor=None,
        ),
        "quick": dict(
            num_words=1_000,
            num_data_bits=128,
            dataword_lengths=(8,),
            words_per_pattern=200,
            repeats=3,
            seed=0,
            speedup_floor=1.0,
        ),
        "full": dict(
            num_words=10_000,
            num_data_bits=128,
            dataword_lengths=(8, 16, 32),
            words_per_pattern=2_000,
            repeats=5,
            seed=0,
            speedup_floor=5.0,
        ),
    },
    run=_run,
    gates=(
        MetricGate(
            metric="speedup",
            condition="bulk-decode:packed",
            rel_tol=0.6,
            higher_is_better=True,
        ),
    ),
    legacy=LegacySpec(filename="BENCH_gf2_backends.json", emitter=emit_gf2_backends),
    tags=("core", "perf"),
)
