"""Workload: the fused Monte-Carlo decode pipeline vs the staged backends.

Two scenarios on the paper's headline (136, 128) SEC-Hamming word, both
run through :class:`repro.einsim.simulator.EinsimSimulator` end to end:

* ``mc-beep`` — the BEEP weak-cell case: eight known error-prone cells,
  each firing with probability one half
  (:class:`repro.einsim.injectors.FixedErrorCountInjector`).  The packed
  protocol keeps the round in the subset representation, which the fused
  kernel classifies from a single histogram — the headline speedup and the
  ISSUE-10 acceptance floor (25x over the reference at the full tier).
* ``mc-retention`` — uniform anti-cell retention failures
  (:class:`repro.einsim.injectors.DataRetentionInjector`), the dense-lanes
  representation; a smaller but still-gated win.

Every tier proves bit-identity: the reference, packed and fused backends
must agree on every ``SimulationResult`` field (counts, DUE words,
miscorrection positions) for the same seed.  The deterministic outcome
counts are additionally gated exactly against the committed baselines.
"""

from __future__ import annotations

from typing import Mapping

from repro.bench.registry import (
    BenchContext,
    MetricGate,
    WorkloadResult,
    register_workload,
)
from repro.bench.schema import ORACLE_SKIPPED

#: All simulation backends the scenarios compare; ``reference`` is the oracle.
BACKENDS = ("reference", "packed", "fused")

#: Number of BEEP weak cells (and exact errors placed) per codeword.
_BEEP_CELLS = 8


def _results_equal(left, right) -> bool:
    import numpy as np

    return bool(
        np.array_equal(
            left.post_correction_error_counts, right.post_correction_error_counts
        )
        and np.array_equal(
            left.pre_correction_error_counts, right.pre_correction_error_counts
        )
        and left.num_words == right.num_words
        and left.uncorrectable_words == right.uncorrectable_words
        and left.miscorrected_words == right.miscorrected_words
        and left.miscorrection_positions == right.miscorrection_positions
        and left.detected_words == right.detected_words
    )


def _scenarios(code, params: Mapping):
    import numpy as np

    from repro.einsim.injectors import DataRetentionInjector, FixedErrorCountInjector

    # Evenly spread weak cells across the codeword, deterministically.
    candidates = np.linspace(
        0, code.codeword_length - 1, _BEEP_CELLS
    ).astype(np.int64)
    return [
        (
            "mc-beep",
            FixedErrorCountInjector(
                _BEEP_CELLS,
                candidate_positions=[int(c) for c in candidates],
                per_bit_probability=0.5,
            ),
            params["beep_floor"],
        ),
        (
            "mc-retention",
            DataRetentionInjector(params["retention_rate"], "anti-cell"),
            params["retention_floor"],
        ),
    ]


def _run(params: Mapping, context: BenchContext) -> WorkloadResult:
    import numpy as np

    from repro.ecc import get_family
    from repro.einsim.simulator import EinsimSimulator

    code = get_family("sec-hamming").construct(params["num_data_bits"])
    dataword = np.zeros(code.num_data_bits, dtype=np.uint8)
    num_words = params["num_words"]
    seed = params["seed"]

    result = WorkloadResult()
    result.artifacts.update(
        {
            "quick": not context.is_full,
            "codeword_length": code.codeword_length,
            "num_data_bits": code.num_data_bits,
            "num_words": num_words,
        }
    )
    for scenario, injector, floor in _scenarios(code, params):
        timings = {}
        outputs = {}
        for backend in BACKENDS:
            # A fresh simulator per measured call replays the same RNG
            # stream, so repeated timing runs stay deterministic.
            def simulate(b=backend):
                simulator = EinsimSimulator(code, seed=seed, backend=b)
                return simulator.simulate(dataword, num_words, injector)

            timings[backend] = context.control.measure(simulate)
            outputs[backend] = timings[backend].last_result
        reference = outputs["reference"]
        identical = all(
            _results_equal(reference, outputs[backend])
            for backend in ("packed", "fused")
        )
        speedup = timings["reference"].best_seconds / max(
            timings["fused"].best_seconds, 1e-12
        )
        for backend in ("reference", "packed"):
            result.add(
                f"{scenario}:{backend}",
                metrics={"seconds": timings[backend].best_seconds},
            )
        result.add(
            f"{scenario}:fused",
            metrics={
                "seconds": timings["fused"].best_seconds,
                "speedup": speedup,
                "uncorrectable_words": reference.uncorrectable_words,
                "miscorrected_words": reference.miscorrected_words,
                "detected_words": reference.detected_words,
            },
            oracles={
                "results_identical": identical,
                # The scenarios must actually exercise the multi-bit paths
                # the fused classifier reimplements, not just clean words.
                "multi_bit_exercised": reference.uncorrectable_words > 0,
                "speedup_floor": (
                    ORACLE_SKIPPED if floor is None else speedup >= floor
                ),
            },
        )
    return result


def _exact(metric: str):
    return (
        MetricGate(metric=metric, rel_tol=0.0, higher_is_better=True),
        MetricGate(metric=metric, rel_tol=0.0, higher_is_better=False),
    )


register_workload(
    name="decoder-fused",
    description=(
        "fused Monte-Carlo pipeline (inject+decode+classify on packed "
        "lanes) vs reference and packed staged simulation"
    ),
    tiers={
        "smoke": dict(
            num_data_bits=16,
            num_words=1_000,
            seed=11,
            retention_rate=0.02,
            beep_floor=None,
            retention_floor=None,
        ),
        "quick": dict(
            num_data_bits=128,
            num_words=20_000,
            seed=11,
            retention_rate=0.001,
            beep_floor=5.0,
            retention_floor=1.5,
        ),
        "full": dict(
            num_data_bits=128,
            num_words=100_000,
            seed=11,
            retention_rate=0.001,
            beep_floor=25.0,
            retention_floor=1.5,
        ),
    },
    run=_run,
    gates=(
        # Outcome counts are deterministic for a fixed seed: a drifting
        # count means a backend silently changed behaviour.
        *_exact("uncorrectable_words"),
        *_exact("miscorrected_words"),
        *_exact("detected_words"),
        MetricGate(metric="speedup", rel_tol=0.6, higher_is_better=True),
    ),
    tags=("core", "perf"),
)
