"""Comparator: diff a benchmark run against a committed baseline and gate CI.

The comparator walks the merged schema (workload × condition × metric) and
produces a :class:`ComparatorReport` of *failures* (the CI job exits
non-zero) and *warnings* (surfaced but non-fatal):

failures
    * an oracle that is ``False`` in the new run (identity-gate violation),
      whether or not the baseline knew about it;
    * an oracle present in the baseline but absent from the new run;
    * a gated metric that regressed beyond its tolerance (a regression of
      exactly the tolerance passes; tolerance + ε fails);
    * a workload or condition present in the baseline but missing from the
      run (unless the comparison is an explicit subset comparison);
    * a gated metric present in the baseline but missing from the run.

warnings
    * environment-fingerprint keys that differ from the baseline (numbers
      from different hosts are comparable only advisedly);
    * an oracle recorded as ``"skipped"`` (e.g. the parallel-sweep speedup
      floor on a <4-CPU machine);
    * workloads/conditions/metrics new in the run (no baseline to compare
      against);
    * tier mismatch between run and baseline.

Gate rules come from the workload registry by default but can be injected,
so the gate logic is testable with synthetic metric values and no timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.bench.registry import MetricGate, gates_by_workload
from repro.bench.schema import ORACLE_SKIPPED, BenchRun, ConditionRecord


@dataclass(frozen=True)
class Finding:
    """One comparator observation, addressed down to the metric."""

    kind: str  # e.g. "metric-regression", "oracle-violation", ...
    workload: str
    message: str
    condition: Optional[str] = None
    metric: Optional[str] = None

    def location(self) -> str:
        parts = [self.workload]
        if self.condition is not None:
            parts.append(self.condition)
        if self.metric is not None:
            parts.append(self.metric)
        return "/".join(parts)

    def to_dict(self) -> Dict[str, Optional[str]]:
        return {
            "kind": self.kind,
            "workload": self.workload,
            "condition": self.condition,
            "metric": self.metric,
            "message": self.message,
        }


@dataclass
class ComparatorReport:
    """The full outcome of one run-vs-baseline comparison."""

    failures: List[Finding] = field(default_factory=list)
    warnings: List[Finding] = field(default_factory=list)
    compared_metrics: int = 0
    compared_oracles: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict:
        return {
            "ok": self.ok,
            "compared_metrics": self.compared_metrics,
            "compared_oracles": self.compared_oracles,
            "failures": [finding.to_dict() for finding in self.failures],
            "warnings": [finding.to_dict() for finding in self.warnings],
        }

    def summary(self) -> str:
        status = "OK" if self.ok else "REGRESSION"
        return (
            f"{status}: {self.compared_metrics} metrics and "
            f"{self.compared_oracles} oracles compared, "
            f"{len(self.failures)} failure(s), {len(self.warnings)} warning(s)"
        )


def metric_within_tolerance(value: float, baseline: float, gate: MetricGate) -> bool:
    """Apply one gate: regression of exactly ``rel_tol`` passes, beyond fails."""
    if gate.higher_is_better:
        return value >= baseline * (1.0 - gate.rel_tol)
    return value <= baseline * (1.0 + gate.rel_tol)


def compare_runs(
    run: BenchRun,
    baseline: BenchRun,
    gates: Optional[Mapping[str, Sequence[MetricGate]]] = None,
    allow_subset: bool = False,
) -> ComparatorReport:
    """Compare ``run`` against ``baseline`` and report failures/warnings.

    ``gates`` maps workload name to its metric gates; by default they are
    taken from the workload registry.  With ``allow_subset`` a run covering
    only some of the baseline's workloads is legal (partial ``bench run
    --workload ...`` invocations); missing workloads then go unmentioned
    instead of failing.
    """
    gate_map: Mapping[str, Sequence[MetricGate]] = (
        gates if gates is not None else gates_by_workload()
    )
    report = ComparatorReport()

    _compare_environment(run, baseline, report)
    if run.tier != baseline.tier:
        report.warnings.append(
            Finding(
                kind="tier-mismatch",
                workload="*",
                message=(
                    f"run tier {run.tier!r} differs from baseline tier "
                    f"{baseline.tier!r}; numbers are not directly comparable"
                ),
            )
        )

    run_names = set(run.workload_names())
    base_names = set(baseline.workload_names())
    if not allow_subset:
        for name in sorted(base_names - run_names):
            report.failures.append(
                Finding(
                    kind="missing-workload",
                    workload=name,
                    message=f"workload {name!r} is in the baseline but not in the run",
                )
            )
    for name in sorted(run_names - base_names):
        report.warnings.append(
            Finding(
                kind="new-workload",
                workload=name,
                message=f"workload {name!r} has no baseline yet",
            )
        )

    for name in sorted(run_names & base_names):
        _compare_workload(
            run.workload(name),
            baseline.workload(name),
            tuple(gate_map.get(name, ())),
            report,
        )
    return report


def _compare_environment(run: BenchRun, baseline: BenchRun, report: ComparatorReport) -> None:
    keys = set(run.environment) | set(baseline.environment)
    for key in sorted(keys):
        mine = run.environment.get(key)
        theirs = baseline.environment.get(key)
        if mine != theirs:
            report.warnings.append(
                Finding(
                    kind="environment-mismatch",
                    workload="*",
                    metric=key,
                    message=(
                        f"environment {key!r} differs: run={mine!r} "
                        f"baseline={theirs!r} (timings may not be comparable)"
                    ),
                )
            )


def _compare_workload(run_record, base_record, gates: Tuple[MetricGate, ...], report) -> None:
    name = run_record.workload
    run_conditions = {c.condition: c for c in run_record.conditions}
    base_conditions = {c.condition: c for c in base_record.conditions}

    for condition in sorted(set(base_conditions) - set(run_conditions)):
        report.failures.append(
            Finding(
                kind="missing-condition",
                workload=name,
                condition=condition,
                message=(
                    f"condition {condition!r} is in the baseline but missing "
                    f"from the run"
                ),
            )
        )
    for condition in sorted(set(run_conditions) - set(base_conditions)):
        report.warnings.append(
            Finding(
                kind="new-condition",
                workload=name,
                condition=condition,
                message=f"condition {condition!r} has no baseline yet",
            )
        )

    for condition in sorted(set(run_conditions)):
        _check_oracles(
            name, run_conditions[condition], base_conditions.get(condition), report
        )
    for condition in sorted(set(run_conditions) & set(base_conditions)):
        _check_metrics(
            name, run_conditions[condition], base_conditions[condition], gates, report
        )


def _check_oracles(
    name: str,
    run_condition: ConditionRecord,
    base_condition: Optional[ConditionRecord],
    report: ComparatorReport,
) -> None:
    base_oracles = base_condition.oracles if base_condition is not None else {}
    for oracle in sorted(set(base_oracles) - set(run_condition.oracles)):
        report.failures.append(
            Finding(
                kind="missing-oracle",
                workload=name,
                condition=run_condition.condition,
                metric=oracle,
                message=(
                    f"oracle {oracle!r} is in the baseline but was not "
                    f"evaluated by the run"
                ),
            )
        )
    for oracle, value in sorted(run_condition.oracles.items()):
        report.compared_oracles += 1
        if value is False:
            report.failures.append(
                Finding(
                    kind="oracle-violation",
                    workload=name,
                    condition=run_condition.condition,
                    metric=oracle,
                    message=f"identity/correctness gate {oracle!r} failed",
                )
            )
        elif value == ORACLE_SKIPPED:
            report.warnings.append(
                Finding(
                    kind="oracle-skipped",
                    workload=name,
                    condition=run_condition.condition,
                    metric=oracle,
                    message=f"gate {oracle!r} was skipped by the run",
                )
            )


def _check_metrics(
    name: str,
    run_condition: ConditionRecord,
    base_condition: ConditionRecord,
    gates: Tuple[MetricGate, ...],
    report: ComparatorReport,
) -> None:
    for gate in gates:
        if not gate.applies_to(run_condition.condition):
            continue
        if gate.metric not in base_condition.metrics:
            continue  # nothing to compare against (e.g. metric added later)
        baseline_value = base_condition.metrics[gate.metric]
        if gate.metric not in run_condition.metrics:
            report.failures.append(
                Finding(
                    kind="missing-metric",
                    workload=name,
                    condition=run_condition.condition,
                    metric=gate.metric,
                    message=(
                        f"gated metric {gate.metric!r} is in the baseline but "
                        f"missing from the run"
                    ),
                )
            )
            continue
        value = run_condition.metrics[gate.metric]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            report.failures.append(
                Finding(
                    kind="metric-type",
                    workload=name,
                    condition=run_condition.condition,
                    metric=gate.metric,
                    message=f"gated metric {gate.metric!r} is not numeric: {value!r}",
                )
            )
            continue
        report.compared_metrics += 1
        if not metric_within_tolerance(float(value), float(baseline_value), gate):
            direction = "below" if gate.higher_is_better else "above"
            report.failures.append(
                Finding(
                    kind="metric-regression",
                    workload=name,
                    condition=run_condition.condition,
                    metric=gate.metric,
                    message=(
                        f"{gate.metric} = {value} regressed {direction} the "
                        f"baseline {baseline_value} beyond tolerance "
                        f"{gate.rel_tol:.0%}"
                    ),
                )
            )
