"""Pytest and standalone-script glue for benchmark workloads.

The 19 ``benchmarks/bench_*.py`` modules are thin declarations: each calls
:func:`bench_workload_test` to get a pytest-collectable test function, and
:func:`standalone_main` to keep its historical ``python benchmarks/...``
entry point.  Tier selection is environment-driven so CI and local runs can
share the same files:

* ``REPRO_BENCH_TIER`` — explicit tier name (``smoke``/``quick``/``full``);
* ``REPRO_BENCH_QUICK=1`` — legacy switch, maps to ``quick``;
* otherwise the default passed by the caller (``quick`` for pytest runs).
"""

from __future__ import annotations

import argparse
import os
from typing import Callable

from repro.exceptions import ValidationError
from repro.bench.driver import emit_legacy_files, run_workload
from repro.bench.registry import get_workload
from repro.bench.report import print_workload_record
from repro.bench.schema import ORACLE_SKIPPED
from repro.bench.timing import TIERS


def resolve_tier(default: str = "quick") -> str:
    """The benchmark tier selected by the environment, else *default*."""
    tier = os.environ.get("REPRO_BENCH_TIER", "").strip().lower()
    if tier:
        if tier not in TIERS:
            raise ValidationError(f"REPRO_BENCH_TIER must be one of {TIERS}, got {tier!r}")
        return tier
    if os.environ.get("REPRO_BENCH_QUICK", "") == "1":
        return "quick"
    return default


def check_record(record, skip=None) -> None:
    """Assert every oracle in *record* holds; report skipped gates via *skip*.

    ``skip`` is called with a reason string when any oracle is ``"skipped"``
    (e.g. ``pytest.skip`` to surface the reason in the test report) after all
    hard oracles have been checked — a skipped gate never masks a failure.
    """
    failures = []
    skipped = []
    for condition in record.conditions:
        for name, value in condition.oracles.items():
            if value is False:
                failures.append(f"{record.workload}/{condition.condition}: {name}")
            elif value == ORACLE_SKIPPED:
                skipped.append(f"{condition.condition}: {name}")
    assert not failures, "oracle violations: " + ", ".join(failures)
    if skipped and skip is not None:
        reason = record.artifacts.get("skip_reason") or ", ".join(skipped)
        skip(f"gate(s) not applicable: {reason}")


def bench_workload_test(name: str, default_tier: str = "quick") -> Callable:
    """A pytest test function running workload *name* at the resolved tier.

    The test prints the workload report, asserts every oracle, surfaces
    skipped gates as pytest skips, and (on full-tier runs of workloads with a
    legacy emitter) refreshes the committed ``BENCH_*.json`` file.
    """

    def test() -> None:
        import pytest

        tier = resolve_tier(default_tier)
        workload = get_workload(name)
        record = run_workload(workload, tier)
        print()
        print_workload_record(record, tier)
        if tier == "full" and workload.legacy is not None:
            emit_legacy_files(_single_run(record, tier))
        check_record(record, skip=pytest.skip)

    test.__name__ = f"test_bench_{name.replace('-', '_')}"
    test.__doc__ = get_workload(name).description
    return test


def _single_run(record, tier: str):
    from repro.bench.environment import environment_fingerprint
    from repro.bench.schema import BenchRun

    return BenchRun(
        tier=tier,
        environment=environment_fingerprint(),
        workloads=[record],
    )


def standalone_main(name: str, argv=None) -> int:
    """CLI entry point preserved for ``python benchmarks/bench_*.py``."""
    parser = argparse.ArgumentParser(description=get_workload(name).description)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run the reduced quick tier instead of the full tier",
    )
    parser.add_argument(
        "--tier",
        choices=list(TIERS),
        default=None,
        help="explicit tier (overrides --quick)",
    )
    args = parser.parse_args(argv)
    tier = args.tier or ("quick" if args.quick else resolve_tier("full"))

    workload = get_workload(name)
    record = run_workload(workload, tier)
    print_workload_record(record, tier)
    if tier == "full" and workload.legacy is not None:
        for path in emit_legacy_files(_single_run(record, tier)).values():
            print(f"wrote {path}")
    failures = [
        f"{condition.condition}: {oracle}"
        for condition in record.conditions
        for oracle, value in condition.oracles.items()
        if value is False
    ]
    if failures:
        print("ORACLE FAILURES: " + ", ".join(failures))
        return 1
    return 0
