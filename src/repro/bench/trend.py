"""Trend reports over a directory of merged bench-run files.

``beer-tool bench trend DIR`` answers "how have the numbers moved across
runs?" without any plotting dependency: it loads every merged-schema JSON
file in a directory (one per historical ``bench run``), orders them by
filename — the natural convention for dated or numbered result files —
and renders one row per (workload, condition, metric) series with the
value at every run plus the relative change from the first run to the
last.

By default only *gated* metrics are tracked (the ones the comparator
checks against baselines); ``--metric`` selects explicit metric names
instead, which is how ``obs.*`` counter deltas attached by the tracer can
be trended over time.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.bench.registry import gates_by_workload
from repro.bench.schema import BenchRun, SchemaError


def load_runs(directory) -> List[Tuple[str, BenchRun]]:
    """Load every merged bench-run JSON in ``directory``, filename-ordered.

    Files that are not valid merged-schema documents are skipped (a results
    directory often also holds comparator reports and legacy files).
    """
    root = Path(directory)
    if not root.is_dir():
        raise SchemaError(f"{root} is not a directory")
    runs: List[Tuple[str, BenchRun]] = []
    for path in sorted(root.glob("*.json")):
        try:
            runs.append((path.name, BenchRun.read(path)))
        except SchemaError:
            continue
    return runs


def _tracked_metrics(
    workload: str, metrics: Optional[Sequence[str]]
) -> Optional[set]:
    """The metric names to track for ``workload``; ``None`` means "any"."""
    if metrics:
        return set(metrics)
    gates = gates_by_workload().get(workload, ())
    return {gate.metric for gate in gates}


def trend_data(
    runs: Sequence[Tuple[str, BenchRun]],
    workloads: Optional[Sequence[str]] = None,
    metrics: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    """Build the trend document: one series per (workload, condition, metric).

    A series holds one value per run (``None`` where the run lacks that
    measurement) and, when both endpoints exist and the first is non-zero,
    the relative change ``(last - first) / |first|``.
    """
    labels = [label for label, _ in runs]
    tiers = sorted({run.tier for _, run in runs})
    series: Dict[Tuple[str, str, str], List[Optional[float]]] = {}
    for run_index, (_, run) in enumerate(runs):
        for record in run.workloads:
            if workloads and record.workload not in workloads:
                continue
            tracked = _tracked_metrics(record.workload, metrics)
            for condition in record.conditions:
                for name, value in condition.metrics.items():
                    if tracked and name not in tracked:
                        continue
                    if not isinstance(value, (int, float)) or isinstance(value, bool):
                        continue
                    key = (record.workload, condition.condition, name)
                    values = series.setdefault(key, [None] * len(runs))
                    values[run_index] = float(value)

    rows = []
    for (workload, condition, metric) in sorted(series):
        values = series[(workload, condition, metric)]
        present = [v for v in values if v is not None]
        first = present[0] if present else None
        last = present[-1] if present else None
        change = None
        if first is not None and last is not None and first != 0:
            change = (last - first) / abs(first)
        rows.append(
            {
                "workload": workload,
                "condition": condition,
                "metric": metric,
                "values": values,
                "first": first,
                "last": last,
                "rel_change": change,
            }
        )
    return {
        "num_runs": len(runs),
        "runs": labels,
        "tiers": tiers,
        "series": rows,
    }


def _render_value(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def format_trend_text(data: Dict[str, Any]) -> str:
    """Render the trend document as an aligned text table."""
    lines = [
        f"bench trend: {data['num_runs']} runs "
        f"[tier(s): {', '.join(data['tiers']) or '-'}]"
    ]
    if not data["series"]:
        lines.append("no tracked metrics found (pass --metric to select some)")
        return "\n".join(lines)
    header = ["workload", "condition", "metric", *data["runs"], "change"]
    rows = []
    for entry in data["series"]:
        change = entry["rel_change"]
        rows.append(
            [
                entry["workload"],
                entry["condition"],
                entry["metric"],
                *(_render_value(v) for v in entry["values"]),
                f"{change:+.1%}" if change is not None else "-",
            ]
        )
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows))
        for i in range(len(header))
    ]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
