"""Human-readable rendering of benchmark runs and comparator reports.

Replaces the old ``benchmarks/_reporting.py`` helpers; the table/sparkline
primitives are kept so workload artifacts (paper figures) can still be
printed as ASCII, and a generic per-workload renderer prints the merged
schema uniformly.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.bench.compare import ComparatorReport
from repro.bench.schema import BenchRun, WorkloadRecord


def print_header(title: str) -> None:
    """Print a banner identifying which artefact follows."""
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


def print_table(headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Print an ASCII table with aligned columns."""
    materialised: List[List[str]] = [[_format(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    line = "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    print(line)
    print("  ".join("-" * w for w in widths))
    for row in materialised:
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))


def _format(cell) -> str:
    if isinstance(cell, float):
        if cell != 0 and (abs(cell) < 1e-3 or abs(cell) >= 1e4):
            return f"{cell:.3e}"
        return f"{cell:.4f}"
    return str(cell)


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """Render a coarse one-line bar chart of non-negative values."""
    if not values:
        return ""
    peak = max(values) or 1.0
    blocks = " .:-=+*#%@"
    return "".join(
        blocks[min(int(value / peak * (len(blocks) - 1)), len(blocks) - 1)]
        for value in list(values)[:width]
    )


def print_workload_record(record: WorkloadRecord, tier: str) -> None:
    """Print one workload's conditions, metrics, and oracle outcomes."""
    print_header(f"{record.workload} [{tier} tier]")
    if record.params:
        rendered = ", ".join(f"{k}={v!r}" for k, v in sorted(record.params.items()))
        print(f"params: {rendered}")
    metric_names = sorted({m for c in record.conditions for m in c.metrics})
    oracle_names = sorted({o for c in record.conditions for o in c.oracles})
    headers = ["condition"] + metric_names + [f"[{name}]" for name in oracle_names]
    rows = []
    for condition in record.conditions:
        row = [condition.condition]
        row += [condition.metrics.get(name, "") for name in metric_names]
        row += [_oracle_cell(condition.oracles.get(name)) for name in oracle_names]
        rows.append(row)
    print_table(headers, rows)


def _oracle_cell(value) -> str:
    if value is None:
        return ""
    if value is True:
        return "pass"
    if value is False:
        return "FAIL"
    return str(value)


def print_run(run: BenchRun) -> None:
    for record in run.workloads:
        print_workload_record(record, run.tier)


def print_comparator_report(report: ComparatorReport) -> None:
    print_header("comparator report")
    print(report.summary())
    for finding in report.failures:
        print(f"  FAIL [{finding.kind}] {finding.location()}: {finding.message}")
    for finding in report.warnings:
        print(f"  warn [{finding.kind}] {finding.location()}: {finding.message}")
