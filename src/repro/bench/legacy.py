"""Legacy ``BENCH_*.json`` emitters: merged schema → historical formats.

PRs 1, 3, 4 and 5 each introduced an ad-hoc benchmark writer with its own
JSON layout (``BENCH_gf2_backends.json``, ``BENCH_sat_solver.json``,
``BENCH_sweep_parallel.json``, ``BENCH_decoder_families.json``).  The merged
schema subsumes all four; these emitters reconstruct the exact historical
key structure from a :class:`~repro.bench.schema.WorkloadRecord` so any
consumer of the old files keeps working.  The golden-file test diffs the
emitted key structure against the committed files.

The single deliberate addition is ``skipped_speedup_gate`` in
``BENCH_sweep_parallel.json``: the old writer silently passed the speedup
floor on <4-CPU machines, the new field makes that skip explicit.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.bench.schema import ORACLE_SKIPPED, WorkloadRecord


def emit_gf2_backends(record: WorkloadRecord) -> Dict[str, Any]:
    """Rebuild the PR 1 ``BENCH_gf2_backends.json`` layout."""
    bulk_info = record.artifacts["bulk_decode"]
    bulk_ref = record.condition("bulk-decode:reference")
    bulk_packed = record.condition("bulk-decode:packed")
    payload: Dict[str, Any] = {
        "bulk_decode": {
            "codeword_length": bulk_info["codeword_length"],
            "num_data_bits": bulk_info["num_data_bits"],
            "num_words": bulk_info["num_words"],
            "repeats": bulk_info["repeats"],
            "reference_seconds": bulk_ref.metrics["seconds"],
            "packed_seconds": bulk_packed.metrics["seconds"],
            "speedup": bulk_packed.metrics["speedup"],
            "outputs_identical": bulk_packed.oracles["outputs_identical"],
        },
        "solver_input": {"rows": []},
    }
    for row_info in record.artifacts["solver_input"]:
        length = row_info["dataword_length"]
        reference = record.condition(f"solver-input-k{length}:reference")
        packed = record.condition(f"solver-input-k{length}:packed")
        payload["solver_input"]["rows"].append(
            {
                "dataword_length": length,
                "codeword_length": row_info["codeword_length"],
                "num_patterns": row_info["num_patterns"],
                "words_per_pattern": row_info["words_per_pattern"],
                "reference_seconds": reference.metrics["seconds"],
                "packed_seconds": packed.metrics["seconds"],
                "speedup": packed.metrics["speedup"],
                "profiles_identical": packed.oracles["profiles_identical"],
            }
        )
    return payload


def emit_sat_solver(record: WorkloadRecord) -> Dict[str, Any]:
    """Rebuild the PR 3 ``BENCH_sat_solver.json`` layout."""
    payload: Dict[str, Any] = {
        "quick": record.artifacts["quick"],
        "seed": record.params["seed"],
        "rows": [],
    }
    for case in record.artifacts["cases"]:
        k = case["num_data_bits"]
        incremental = record.condition(f"k{k}:incremental")
        one_shot = record.condition(f"k{k}:one-shot")
        payload["rows"].append(
            {
                "num_data_bits": k,
                "num_parity_bits": case["num_parity_bits"],
                "pinned_columns": case["pinned_columns"],
                "models_enumerated": incremental.metrics["models_enumerated"],
                "canonical_codes": incremental.metrics["canonical_codes"],
                "incremental_seconds": incremental.metrics["seconds"],
                "one_shot_seconds": one_shot.metrics["seconds"],
                "speedup": incremental.metrics["speedup"],
                "identical_canonical_sets": incremental.oracles[
                    "identical_canonical_sets"
                ],
                "solver_stats": case["solver_stats"],
            }
        )
    return payload


def emit_sweep_parallel(record: WorkloadRecord) -> Dict[str, Any]:
    """Rebuild the PR 4 ``BENCH_sweep_parallel.json`` layout (+ skip field)."""
    serial = record.condition("serial")
    parallel = record.condition("parallel")
    return {
        "quick": record.artifacts["quick"],
        "available_cpus": record.artifacts["available_cpus"],
        "jobs": record.params["jobs"],
        "num_cells": record.artifacts["num_cells"],
        "num_words_per_cell": record.artifacts["num_words_per_cell"],
        "serial_seconds": serial.metrics["seconds"],
        "parallel_seconds": parallel.metrics["seconds"],
        "speedup": parallel.metrics["speedup"],
        "stores_byte_identical": parallel.oracles["stores_byte_identical"],
        "store_bytes": serial.metrics["store_bytes"],
        # Deliberate schema addition: the speedup floor used to pass silently
        # on <4-CPU machines; the skip is now recorded in the results file.
        "skipped_speedup_gate": parallel.oracles["speedup_floor"] == ORACLE_SKIPPED,
    }


def emit_decoder_families(record: WorkloadRecord) -> Dict[str, Any]:
    """Rebuild the PR 5 ``BENCH_decoder_families.json`` layout."""
    payload: Dict[str, Any] = {"quick": record.artifacts["quick"], "rows": []}
    for family_info in record.artifacts["families"]:
        label = family_info["family"]
        reference = record.condition(f"{label}:reference")
        packed = record.condition(f"{label}:packed")
        payload["rows"].append(
            {
                "family": label,
                "codeword_length": family_info["codeword_length"],
                "num_data_bits": family_info["num_data_bits"],
                "detect_only": family_info["detect_only"],
                "num_words": family_info["num_words"],
                "due_words": packed.metrics["due_words"],
                "reference_seconds": reference.metrics["seconds"],
                "packed_seconds": packed.metrics["seconds"],
                "speedup": packed.metrics["speedup"],
                "outputs_identical": packed.oracles["outputs_identical"],
            }
        )
    return payload
