"""Measurement control: warmup / repeat / minimum-time loops for the driver.

Workload runners receive a :class:`RunControl` describing how carefully to
measure (nothing at smoke tier, best-of-repeats with a minimum time budget at
full tier) and call :meth:`RunControl.measure` around the hot path.  Keeping
the loop here means every benchmark measures the same way and the tier knobs
live in one place.
"""

from __future__ import annotations

from repro.exceptions import ValidationError
import time
from dataclasses import dataclass
from typing import Callable, Dict


@dataclass(frozen=True)
class RunControl:
    """How to measure one timed section.

    ``warmup`` un-timed calls precede measurement (filling code and syndrome
    caches); the section then runs at least ``repeats`` timed iterations and
    keeps iterating until ``min_time_s`` of measured time has accumulated
    (bounded by ``max_repeats``); the best (minimum) time is reported, the
    standard robust choice for wall-clock microbenchmarks.
    """

    warmup: int = 1
    repeats: int = 3
    min_time_s: float = 0.0
    max_repeats: int = 50

    def measure(self, fn: Callable[[], object]) -> "Measurement":
        """Run ``fn`` under this control and return its timing summary."""
        for _ in range(self.warmup):
            fn()
        times = []
        total = 0.0
        result = None
        while len(times) < self.repeats or (
            total < self.min_time_s and len(times) < self.max_repeats
        ):
            start = time.perf_counter()
            result = fn()
            elapsed = time.perf_counter() - start
            times.append(elapsed)
            total += elapsed
        return Measurement(
            best_seconds=min(times),
            mean_seconds=total / len(times),
            runs=len(times),
            last_result=result,
        )

    def time_once(self, fn: Callable[[], object]) -> "Measurement":
        """Measure a single un-warmed call (for stateful one-shot sections).

        Incremental solvers and cache-building runs change behaviour when
        repeated; those sections are timed exactly once regardless of the
        control's repeat settings.
        """
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        return Measurement(
            best_seconds=elapsed, mean_seconds=elapsed, runs=1, last_result=result
        )


@dataclass
class Measurement:
    """Outcome of one measured section."""

    best_seconds: float
    mean_seconds: float
    runs: int
    last_result: object = None


#: Per-tier measurement defaults.  Smoke is correctness-only (single cold
#: run); quick keeps CI latency low; full buys stable numbers for baselines.
TIER_CONTROLS: Dict[str, RunControl] = {
    "smoke": RunControl(warmup=0, repeats=1, min_time_s=0.0),
    "quick": RunControl(warmup=1, repeats=3, min_time_s=0.0),
    "full": RunControl(warmup=1, repeats=5, min_time_s=0.25),
}

TIERS = tuple(TIER_CONTROLS)


def control_for_tier(tier: str) -> RunControl:
    try:
        return TIER_CONTROLS[tier]
    except KeyError:
        raise ValidationError(
            f"unknown tier {tier!r} (expected one of {sorted(TIER_CONTROLS)})"
        ) from None
