"""Benchmark driver: run registered workloads at a tier into one merged run.

The driver resolves each workload's tier parameters, hands the runner a
:class:`~repro.bench.registry.BenchContext` (tier + measurement control),
collects the per-condition records into a :class:`~repro.bench.schema.BenchRun`
stamped with the environment fingerprint, and optionally re-emits the
historical ``BENCH_*.json`` files from the merged records so downstream
consumers of the legacy formats keep working.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.bench.environment import environment_fingerprint
from repro.bench.registry import BenchContext, Workload, all_workloads, get_workload
from repro.bench.schema import BenchRun, WorkloadRecord
from repro.bench.timing import control_for_tier


def repo_root() -> Path:
    """The repository root (where the legacy ``BENCH_*.json`` files live)."""
    return Path(__file__).resolve().parents[3]


def baselines_dir(root: Optional[Path] = None) -> Path:
    return (root or repo_root()) / "benchmarks" / "baselines"


def baseline_path(tier: str, root: Optional[Path] = None) -> Path:
    return baselines_dir(root) / f"{tier}.json"


def run_workload(workload: Workload, tier: str) -> WorkloadRecord:
    """Run one workload at ``tier`` and return its merged-schema record.

    Each workload runs with the tracer in metrics-only mode (unless the
    caller already enabled a full trace), so every condition record carries
    the ``obs.*`` counter deltas its measurements moved — cache hits,
    conflicts, words decoded — without writing any trace file.
    """
    from repro.obs import TRACER

    params = workload.params_for(tier)
    context = BenchContext(tier=tier, control=control_for_tier(tier))
    owns_tracer = not TRACER.enabled
    if owns_tracer:
        TRACER.enable(sink_path=None, record_events=False)
    try:
        result = workload.run(params, context)
    finally:
        if owns_tracer:
            TRACER.disable()
    return WorkloadRecord(
        workload=workload.name,
        params=params,
        conditions=result.conditions,
        artifacts=result.artifacts,
    )


def run_bench(
    names: Optional[Sequence[str]] = None,
    tier: str = "quick",
) -> BenchRun:
    """Run the named workloads (default: all registered) into one BenchRun."""
    control_for_tier(tier)  # validate the tier before doing any work
    workloads = (
        [get_workload(name) for name in names] if names else all_workloads()
    )
    records = [run_workload(workload, tier) for workload in workloads]
    return BenchRun(
        tier=tier,
        environment=environment_fingerprint(),
        workloads=records,
    )


def emit_legacy_files(
    run: BenchRun, root: Optional[Path] = None
) -> Dict[str, Path]:
    """Regenerate the historical ``BENCH_*.json`` files from a merged run.

    Only workloads declaring a :class:`~repro.bench.registry.LegacySpec`
    produce a file; the emitters rebuild the exact PR 1/3/4/5 key structure
    from the merged records, proving the merged schema subsumes them.
    """
    import json

    target = root or repo_root()
    written: Dict[str, Path] = {}
    for record in run.workloads:
        workload = get_workload(record.workload)
        if workload.legacy is None:
            continue
        payload = workload.legacy.emitter(record)
        path = target / workload.legacy.filename
        path.write_text(json.dumps(payload, indent=2) + "\n")
        written[record.workload] = path
    return written


def legacy_payloads(run: BenchRun) -> Dict[str, Dict]:
    """The legacy payload per workload (filename -> payload), without writing."""
    payloads: Dict[str, Dict] = {}
    for record in run.workloads:
        workload = get_workload(record.workload)
        if workload.legacy is None:
            continue
        payloads[workload.legacy.filename] = workload.legacy.emitter(record)
    return payloads


def workload_listing() -> List[Dict]:
    """A serialisable description of every registered workload."""
    listing = []
    for workload in all_workloads():
        listing.append(
            {
                "name": workload.name,
                "description": workload.description,
                "tags": list(workload.tags),
                "tiers": {tier: dict(params) for tier, params in workload.tiers.items()},
                "gated_metrics": [
                    {
                        "metric": gate.metric,
                        "condition": gate.condition,
                        "rel_tol": gate.rel_tol,
                        "higher_is_better": gate.higher_is_better,
                    }
                    for gate in workload.gates
                ],
                "legacy_file": workload.legacy.filename if workload.legacy else None,
            }
        )
    return listing
