"""Environment fingerprint attached to every benchmark run.

The fingerprint answers "were these numbers measured on a comparable
machine?".  The comparator never hard-fails on a fingerprint mismatch —
timings legitimately differ across hosts — but it surfaces every differing
key as a warning so a baseline refresh on new hardware is a conscious,
documented act rather than a silent drift.
"""

from __future__ import annotations

import os
import platform
import sys
from typing import Any, Dict

import numpy as np


def environment_fingerprint() -> Dict[str, Any]:
    """Collect the host properties that shape benchmark numbers."""
    return {
        "python_version": platform.python_version(),
        "python_implementation": platform.python_implementation(),
        "platform_system": platform.system(),
        "platform_machine": platform.machine(),
        "numpy_version": np.__version__,
        "usable_cpus": usable_cpus(),
        "byte_order": sys.byteorder,
    }


def usable_cpus() -> int:
    """CPUs this process may actually schedule on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1
