"""An incremental conflict-driven clause-learning (CDCL) SAT solver.

The solver implements the standard modern architecture and is designed to be
*persistent*: one :class:`CDCLSolver` instance survives across many queries,
which is exactly the shape of BEER's workload (enumerate every ECC function
consistent with a miscorrection profile by repeatedly re-solving under
freshly-added blocking clauses).

* two-watched-literal unit propagation,
* first-UIP conflict analysis with non-chronological backjumping,
* activity-based (VSIDS-style) branching backed by an indexed binary max-heap
  (O(log V) decisions instead of an O(V) scan) with phase saving,
* native assumption solving (MiniSat-style: assumptions become pseudo-decision
  levels, so no CNF copy is needed per query),
* incremental clause addition via :meth:`CDCLSolver.add_clause` with
  root-level simplification,
* Luby restarts,
* learned-clause deletion (reduceDB) so long model enumerations do not grow
  memory without bound.

Learned clauses, variable activities, and saved phases are all kept alive
between :meth:`CDCLSolver.solve` calls; :func:`iterate_models` exploits this
so that enumerating the *n*-th model costs incremental work instead of a full
re-propagation of the whole formula.  The historical one-shot enumeration
(fresh solver per model) is retained behind ``incremental=False`` as the
differential oracle for the incremental path.

A per-call conflict budget is supported; exhausting it raises
:class:`repro.exceptions.BudgetExhaustedError`, a dedicated indeterminate
outcome distinct from encoding errors.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.exceptions import BudgetExhaustedError, SolverError
from repro.obs import TRACER
from repro.sat.cnf import CNF, simplify_literals

#: With tracing enabled, a ``sat.solver.stats`` metric event (a full
#: :class:`SolverStats` snapshot) is emitted every this many conflicts —
#: the periodic heartbeat long solves/enumerations leave in the trace.
STATS_SNAPSHOT_INTERVAL = 1024


class Clause(list):
    """A clause attached to the solver: a literal list plus solver metadata.

    Clauses are distinguished by identity, not value: two learned clauses
    with the same literals are distinct objects, so watch lists and reason
    pointers must be compared with ``is`` (see ``_remove_watch``).
    """

    __slots__ = ("learnt", "activity")

    def __init__(self, literals: Iterable[int], learnt: bool = False):
        super().__init__(literals)
        self.learnt = learnt
        self.activity = 0.0


@dataclass
class SolverStats:
    """Cumulative statistics of one :class:`CDCLSolver` instance."""

    variables: int = 0
    clauses: int = 0
    learnt: int = 0
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    restarts: int = 0
    learnt_total: int = 0
    deleted: int = 0
    solve_calls: int = 0

    def as_dict(self) -> Dict[str, int]:
        """The statistics as a plain JSON-serialisable dict."""
        return dataclasses.asdict(self)


@dataclass
class SATResult:
    """Outcome of one SAT solver invocation (counters are per solve call)."""

    satisfiable: bool
    #: Variable assignment (``assignment[v]`` for variable ``v``); empty if UNSAT.
    assignment: Dict[int, bool]
    #: Number of conflicts encountered while solving.
    conflicts: int
    #: Number of decisions made while solving.
    decisions: int
    #: Number of literals propagated while solving.
    propagations: int = 0
    #: Number of restarts performed while solving.
    restarts: int = 0

    def value(self, variable: int) -> bool:
        """Return the value assigned to ``variable`` (only valid when satisfiable)."""
        if not self.satisfiable:
            raise SolverError("no model available for an unsatisfiable formula")
        return self.assignment[variable]


def _luby(index: int) -> int:
    """The ``index``-th term (0-based) of the Luby sequence 1,1,2,1,1,2,4,..."""
    size = 1
    sequence = 0
    while size < index + 1:
        sequence += 1
        size = 2 * size + 1
    while size - 1 != index:
        size = (size - 1) >> 1
        sequence -= 1
        index %= size
    return 1 << sequence


class _VariableHeap:
    """Indexed binary max-heap of variables ordered by VSIDS activity.

    Replaces the O(V) linear scan per decision with O(log V) pops; ``update``
    restores heap order after an activity bump (activities only grow between
    rescales, and rescaling is uniform, so sift-up suffices).
    """

    __slots__ = ("_activity", "_heap", "_position")

    def __init__(self, activity: List[float]):
        self._activity = activity  # shared with the solver; never rebound
        self._heap: List[int] = []
        self._position: List[int] = [-1]  # var -> heap index, -1 if absent

    def grow_one(self) -> None:
        self._position.append(-1)

    def push(self, variable: int) -> None:
        if self._position[variable] != -1:
            return
        self._heap.append(variable)
        self._sift_up(len(self._heap) - 1)

    def pop(self) -> Optional[int]:
        if not self._heap:
            return None
        top = self._heap[0]
        last = self._heap.pop()
        self._position[top] = -1
        if self._heap:
            self._heap[0] = last
            self._position[last] = 0
            self._sift_down(0)
        return top

    def update(self, variable: int) -> None:
        position = self._position[variable]
        if position != -1:
            self._sift_up(position)

    def _sift_up(self, index: int) -> None:
        heap, activity, position = self._heap, self._activity, self._position
        variable = heap[index]
        key = activity[variable]
        while index > 0:
            parent = (index - 1) >> 1
            parent_var = heap[parent]
            if activity[parent_var] >= key:
                break
            heap[index] = parent_var
            position[parent_var] = index
            index = parent
        heap[index] = variable
        position[variable] = index

    def _sift_down(self, index: int) -> None:
        heap, activity, position = self._heap, self._activity, self._position
        size = len(heap)
        variable = heap[index]
        key = activity[variable]
        while True:
            child = 2 * index + 1
            if child >= size:
                break
            right = child + 1
            if right < size and activity[heap[right]] > activity[heap[child]]:
                child = right
            child_var = heap[child]
            if key >= activity[child_var]:
                break
            heap[index] = child_var
            position[child_var] = index
            index = child
        heap[index] = variable
        position[variable] = index


#: Sentinel distinguishing "no budget override" from an explicit None.
_UNSET = object()
#: Sentinel returned by the assumption scheduler when an assumption is false.
_ASSUMPTION_CONFLICT = object()

#: Conflicts per Luby unit; restart interval is ``_RESTART_BASE * luby(i)``.
_RESTART_BASE = 100


class CDCLSolver:
    """Persistent, incremental CDCL solver.

    The solver outlives individual queries: call :meth:`solve` repeatedly
    (optionally under assumptions), interleaved with :meth:`add_clause`.
    Learned clauses, activities, and saved phases carry over between calls.
    """

    def __init__(self, formula: Optional[CNF] = None, max_conflicts: Optional[int] = None):
        self._max_conflicts = max_conflicts
        self._num_variables = 0

        # Variable-indexed state (slot 0 unused).
        self._assignment: List[Optional[bool]] = [None]
        self._level: List[int] = [0]
        self._reason: List[Optional[Clause]] = [None]
        self._activity: List[float] = [0.0]
        self._saved_phase: List[bool] = [False]

        self._activity_increment = 1.0
        self._activity_decay = 0.95
        self._clause_increment = 1.0
        self._clause_decay = 0.999

        self._trail: List[int] = []
        self._trail_limits: List[int] = []
        self._propagation_head = 0

        self._watches: Dict[int, List[Clause]] = {}
        self._clauses: List[Clause] = []
        self._learnt: List[Clause] = []
        self._heap = _VariableHeap(self._activity)
        self._seen = bytearray(1)  # persistent conflict-analysis scratch
        self._unsat = False
        self._stats = SolverStats()

        self._restart_base = _RESTART_BASE
        self._max_learnt_growth = 1.3

        if formula is not None:
            self._ensure_variables(formula.num_variables)
            for clause in formula.clauses:
                self.add_clause(clause)
        self._max_learnt = max(1000, len(self._clauses) // 2)

    # -- incremental clause API ---------------------------------------------------
    def add_clause(self, literals: Iterable[int]) -> None:
        """Attach one clause to the live solver.

        The solver backtracks to the root level and applies root-level
        simplification: satisfied clauses are dropped, root-false literals
        removed, and a resulting unit is enqueued immediately.  An empty
        residual marks the formula permanently unsatisfiable.
        """
        clause = simplify_literals(literals)
        if clause is None:
            return  # tautology
        self._ensure_variables(max(abs(literal) for literal in clause))
        self._backtrack(0)
        remaining: List[int] = []
        for literal in clause:
            value = self._literal_value(literal)
            if value is True:
                return  # satisfied at the root level forever
            if value is None:
                remaining.append(literal)
        if not remaining:
            self._unsat = True
            return
        if len(remaining) == 1:
            self._enqueue(remaining[0], reason=None)
            return
        attached = Clause(remaining)
        self._clauses.append(attached)
        self._watch(attached)

    def stats(self) -> SolverStats:
        """A snapshot of the solver's cumulative statistics."""
        snapshot = dataclasses.replace(self._stats)
        snapshot.variables = self._num_variables
        snapshot.clauses = len(self._clauses)
        snapshot.learnt = len(self._learnt)
        return snapshot

    # -- public solving API -------------------------------------------------------
    def solve(
        self,
        assumptions: Optional[Iterable[int]] = None,
        max_conflicts=_UNSET,
    ) -> SATResult:
        """Run the CDCL loop, optionally under unit assumptions.

        Assumptions are placed as pseudo-decisions at the first decision
        levels (no CNF copy); they hold for this call only.  ``max_conflicts``
        overrides the constructor's per-call conflict budget; exhausting the
        budget raises :class:`BudgetExhaustedError`.
        """
        budget = self._max_conflicts if max_conflicts is _UNSET else max_conflicts
        self._stats.solve_calls += 1
        self._backtrack(0)

        start_conflicts = self._stats.conflicts
        start_decisions = self._stats.decisions
        start_propagations = self._stats.propagations
        start_restarts = self._stats.restarts

        def result(satisfiable: bool, model: Optional[Dict[int, bool]] = None) -> SATResult:
            if TRACER.enabled:
                TRACER.add("sat.solve_calls")
                TRACER.add("sat.conflicts", self._stats.conflicts - start_conflicts)
                TRACER.add("sat.decisions", self._stats.decisions - start_decisions)
                TRACER.add(
                    "sat.propagations", self._stats.propagations - start_propagations
                )
                TRACER.add("sat.restarts", self._stats.restarts - start_restarts)
            return SATResult(
                satisfiable,
                model if model is not None else {},
                self._stats.conflicts - start_conflicts,
                self._stats.decisions - start_decisions,
                self._stats.propagations - start_propagations,
                self._stats.restarts - start_restarts,
            )

        if self._unsat:
            return result(False)
        assumption_list = self._prepare_assumptions(assumptions)
        if assumption_list is None:
            return result(False)  # assumptions contain x and -x

        restart_number = 0
        conflicts_until_restart = self._restart_base * _luby(restart_number)

        while True:
            conflict = self._propagate()
            if conflict is not None:
                consumed = self._stats.conflicts - start_conflicts
                if budget is not None and consumed >= budget:
                    raise BudgetExhaustedError(budget=budget, conflicts=consumed)
                self._stats.conflicts += 1
                if (
                    TRACER.enabled
                    and self._stats.conflicts % STATS_SNAPSHOT_INTERVAL == 0
                ):
                    TRACER.event("sat.solver.stats", self.stats().as_dict())
                conflicts_until_restart -= 1
                if self._decision_level() == 0:
                    self._unsat = True
                    return result(False)
                learnt_clause, backjump_level = self._analyze(conflict)
                self._backtrack(backjump_level)
                self._attach_learnt(learnt_clause)
                self._decay_activities()
                continue

            if conflicts_until_restart <= 0 and self._decision_level() > 0:
                restart_number += 1
                conflicts_until_restart = self._restart_base * _luby(restart_number)
                self._stats.restarts += 1
                self._backtrack(0)
                continue

            if self._decision_level() == 0 and len(self._learnt) >= self._max_learnt:
                self._reduce_learnt()

            step = self._next_assumption(assumption_list)
            if step is _ASSUMPTION_CONFLICT:
                return result(False)  # UNSAT under these assumptions
            literal: Optional[int] = step
            if literal is None:
                variable = self._pick_branch_variable()
                if variable is None:
                    model = {
                        v: bool(self._assignment[v])
                        for v in range(1, self._num_variables + 1)
                    }
                    return result(True, model)
                self._stats.decisions += 1
                literal = variable if self._saved_phase[variable] else -variable
            self._trail_limits.append(len(self._trail))
            self._enqueue(literal, reason=None)

    # -- assumptions --------------------------------------------------------------
    def _prepare_assumptions(self, assumptions) -> Optional[List[int]]:
        """Deduped assumption literals; None when they contain ``x`` and ``-x``."""
        literals = list(assumptions) if assumptions is not None else []
        if not literals:
            return []
        cleaned = simplify_literals(literals)
        if cleaned is None:
            return None
        self._ensure_variables(max(abs(literal) for literal in cleaned))
        return list(cleaned)

    def _next_assumption(self, assumptions: List[int]):
        """The next assumption to decide, None when done, or a conflict marker."""
        while self._decision_level() < len(assumptions):
            literal = assumptions[self._decision_level()]
            value = self._literal_value(literal)
            if value is True:
                # Already implied: open an empty level so assumption indices
                # and decision levels stay aligned.
                self._trail_limits.append(len(self._trail))
                continue
            if value is False:
                return _ASSUMPTION_CONFLICT
            return literal
        return None

    # -- clause bookkeeping -------------------------------------------------------
    def _watch(self, clause: Clause) -> None:
        for literal in (clause[0], clause[1]):
            self._watches.setdefault(literal, []).append(clause)

    def _remove_watch(self, literal: int, clause: Clause) -> None:
        watchers = self._watches.get(literal, [])
        for index, candidate in enumerate(watchers):
            if candidate is clause:
                watchers[index] = watchers[-1]
                watchers.pop()
                return

    def _attach_learnt(self, literals: List[int]) -> None:
        if len(literals) == 1:
            self._enqueue(literals[0], reason=None)
            return
        clause = Clause(literals, learnt=True)
        clause.activity = self._clause_increment
        self._learnt.append(clause)
        self._stats.learnt_total += 1
        self._watch(clause)
        self._enqueue(literals[0], reason=clause)

    def _is_locked(self, clause: Clause) -> bool:
        variable = abs(clause[0])
        return self._assignment[variable] is not None and self._reason[variable] is clause

    def _reduce_learnt(self) -> None:
        """Delete the lowest-activity half of the learned clauses (reduceDB)."""
        self._learnt.sort(key=lambda clause: clause.activity)
        target = len(self._learnt) // 2
        kept: List[Clause] = []
        deleted = 0
        for clause in self._learnt:
            if deleted >= target or len(clause) == 2 or self._is_locked(clause):
                kept.append(clause)
                continue
            self._remove_watch(clause[0], clause)
            self._remove_watch(clause[1], clause)
            deleted += 1
        self._learnt = kept
        self._stats.deleted += deleted
        self._max_learnt = int(self._max_learnt * self._max_learnt_growth) + 1

    # -- assignment machinery -----------------------------------------------------
    def _ensure_variables(self, count: int) -> None:
        while self._num_variables < count:
            self._num_variables += 1
            self._assignment.append(None)
            self._level.append(0)
            self._reason.append(None)
            self._activity.append(0.0)
            self._saved_phase.append(False)
            self._seen.append(0)
            self._heap.grow_one()
            self._heap.push(self._num_variables)

    def _decision_level(self) -> int:
        return len(self._trail_limits)

    def _literal_value(self, literal: int) -> Optional[bool]:
        value = self._assignment[abs(literal)]
        if value is None:
            return None
        return value if literal > 0 else not value

    def _enqueue(self, literal: int, reason: Optional[Clause]) -> None:
        variable = abs(literal)
        self._assignment[variable] = literal > 0
        self._level[variable] = self._decision_level()
        self._reason[variable] = reason
        self._saved_phase[variable] = literal > 0
        self._trail.append(literal)

    def _backtrack(self, target_level: int) -> None:
        if self._decision_level() <= target_level:
            return
        cutoff = self._trail_limits[target_level]
        for literal in reversed(self._trail[cutoff:]):
            variable = abs(literal)
            self._assignment[variable] = None
            self._reason[variable] = None
            self._heap.push(variable)
        del self._trail[cutoff:]
        del self._trail_limits[target_level:]
        self._propagation_head = min(self._propagation_head, len(self._trail))

    # -- propagation --------------------------------------------------------------
    def _propagate(self) -> Optional[Clause]:
        while self._propagation_head < len(self._trail):
            literal = self._trail[self._propagation_head]
            self._propagation_head += 1
            self._stats.propagations += 1
            false_literal = -literal
            watching = self._watches.get(false_literal)
            if not watching:
                continue
            retained: List[Clause] = []
            conflict: Optional[Clause] = None
            for position, clause in enumerate(watching):
                if clause[0] == false_literal:
                    clause[0], clause[1] = clause[1], clause[0]
                first_value = self._literal_value(clause[0])
                if first_value is True:
                    retained.append(clause)
                    continue
                moved = False
                for alternative in range(2, len(clause)):
                    if self._literal_value(clause[alternative]) is not False:
                        clause[1], clause[alternative] = clause[alternative], clause[1]
                        self._watches.setdefault(clause[1], []).append(clause)
                        moved = True
                        break
                if moved:
                    continue
                retained.append(clause)
                if first_value is None:
                    self._enqueue(clause[0], reason=clause)
                else:
                    conflict = clause
                    retained.extend(watching[position + 1 :])
                    break
            self._watches[false_literal] = retained
            if conflict is not None:
                return conflict
        return None

    # -- conflict analysis --------------------------------------------------------
    def _analyze(self, conflict: Clause) -> tuple:
        learnt: List[int] = []
        # Persistent scratch: current-level marks are all cleared by the trail
        # walk below (one per counter decrement), lower-level marks explicitly
        # at the end, keeping analysis O(clause sizes) instead of O(V).
        seen = self._seen
        counter = 0
        literal: Optional[int] = None
        clause: Clause = conflict
        trail_index = len(self._trail) - 1
        current_level = self._decision_level()

        while True:
            if clause.learnt:
                self._bump_clause_activity(clause)
            for clause_literal in clause:
                # Skip the literal this clause propagated (the resolvent pivot).
                if literal is not None and clause_literal == literal:
                    continue
                variable = abs(clause_literal)
                if seen[variable] or self._level[variable] == 0:
                    continue
                seen[variable] = True
                self._bump_activity(variable)
                if self._level[variable] == current_level:
                    counter += 1
                else:
                    learnt.append(clause_literal)

            while not seen[abs(self._trail[trail_index])]:
                trail_index -= 1
            literal = self._trail[trail_index]
            variable = abs(literal)
            seen[variable] = False
            trail_index -= 1
            counter -= 1
            if counter == 0:
                break
            reason = self._reason[variable]
            assert reason is not None, "UIP literal must have a reason clause"
            clause = reason

        for lower_literal in learnt:
            seen[abs(lower_literal)] = 0

        learnt_clause = [-literal] + learnt
        if len(learnt_clause) == 1:
            backjump_level = 0
        else:
            levels = sorted((self._level[abs(lit)] for lit in learnt), reverse=True)
            backjump_level = levels[0]
            # Place a literal from the backjump level in the second watch slot.
            for index, lit in enumerate(learnt_clause[1:], start=1):
                if self._level[abs(lit)] == backjump_level:
                    learnt_clause[1], learnt_clause[index] = (
                        learnt_clause[index],
                        learnt_clause[1],
                    )
                    break
        return learnt_clause, backjump_level

    # -- branching heuristics -----------------------------------------------------
    def _bump_activity(self, variable: int) -> None:
        self._activity[variable] += self._activity_increment
        if self._activity[variable] > 1e100:
            for index in range(1, self._num_variables + 1):
                self._activity[index] *= 1e-100
            self._activity_increment *= 1e-100
        self._heap.update(variable)

    def _bump_clause_activity(self, clause: Clause) -> None:
        clause.activity += self._clause_increment
        if clause.activity > 1e20:
            for learnt in self._learnt:
                learnt.activity *= 1e-20
            self._clause_increment *= 1e-20

    def _decay_activities(self) -> None:
        self._activity_increment /= self._activity_decay
        self._clause_increment /= self._clause_decay

    def _pick_branch_variable(self) -> Optional[int]:
        while True:
            variable = self._heap.pop()
            if variable is None:
                return None
            if self._assignment[variable] is None:
                return variable


def solve(
    formula: CNF,
    assumptions: Optional[Iterable[int]] = None,
    max_conflicts: Optional[int] = None,
) -> SATResult:
    """Solve ``formula`` (optionally under unit assumptions).

    Assumptions are handled natively by the solver (pseudo-decision levels);
    the CNF is never copied.
    """
    return CDCLSolver(formula).solve(assumptions=assumptions, max_conflicts=max_conflicts)


def iterate_models(
    formula: CNF,
    over_variables: Optional[Sequence[int]] = None,
    limit: Optional[int] = None,
    incremental: bool = True,
    solver: Optional[CDCLSolver] = None,
) -> Iterator[Dict[int, bool]]:
    """Enumerate models of ``formula``.

    ``over_variables`` restricts both the reported assignment and the blocking
    clauses to a subset of variables, so models are enumerated up to their
    projection onto those variables.  ``limit`` bounds the number of models.

    With ``incremental=True`` (the default) one persistent :class:`CDCLSolver`
    is kept alive across blocking clauses, retaining learned clauses, watch
    lists, activities, and saved phases between models; pass ``solver`` to
    reuse/inspect that solver (e.g. to read its statistics afterwards).
    A supplied solver MUST have been constructed from ``formula`` (possibly
    with extra clauses already added) — enumeration runs entirely on the
    solver's own clause database.  ``incremental=False`` restores the
    historical one-shot behaviour — a fresh solver and a CNF copy per model —
    and serves as the differential oracle for the incremental path.
    """
    variables = (
        list(over_variables)
        if over_variables is not None
        else list(range(1, formula.num_variables + 1))
    )
    if not incremental:
        if solver is not None:
            raise SolverError("a persistent solver requires incremental mode")
        working = formula.copy()
        found = 0
        while limit is None or found < limit:
            result = CDCLSolver(working).solve()
            if not result.satisfiable:
                return
            model = {v: result.assignment[v] for v in variables}
            yield model
            found += 1
            blocking_clause = [(-v if model[v] else v) for v in variables]
            if not blocking_clause:
                return
            working.add_clause(blocking_clause)
        return

    if solver is not None and solver.stats().variables < formula.num_variables:
        raise SolverError(
            "the supplied solver does not cover the formula's variables; "
            "construct it as CDCLSolver(formula)"
        )
    active = solver if solver is not None else CDCLSolver(formula)
    found = 0
    while limit is None or found < limit:
        result = active.solve()
        if not result.satisfiable:
            return
        model = {v: result.assignment[v] for v in variables}
        yield model
        found += 1
        blocking_clause = [(-v if model[v] else v) for v in variables]
        if not blocking_clause:
            return
        active.add_clause(blocking_clause)
