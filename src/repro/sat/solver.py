"""A conflict-driven clause-learning (CDCL) SAT solver.

The solver implements the standard modern architecture:

* two-watched-literal unit propagation,
* first-UIP conflict analysis with non-chronological backjumping,
* activity-based (VSIDS-style) branching with phase saving,
* geometric restarts.

It is deliberately free of micro-optimisation tricks so the algorithm stays
readable; the problem sizes produced by the BEER SAT backend (thousands of
variables, tens of thousands of clauses) are well within its reach.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.exceptions import SolverError
from repro.sat.cnf import CNF


@dataclass
class SATResult:
    """Outcome of one SAT solver invocation."""

    satisfiable: bool
    #: Variable assignment (``assignment[v]`` for variable ``v``); empty if UNSAT.
    assignment: Dict[int, bool]
    #: Number of conflicts encountered while solving.
    conflicts: int
    #: Number of decisions made while solving.
    decisions: int

    def value(self, variable: int) -> bool:
        """Return the value assigned to ``variable`` (only valid when satisfiable)."""
        if not self.satisfiable:
            raise SolverError("no model available for an unsatisfiable formula")
        return self.assignment[variable]


class CDCLSolver:
    """Conflict-driven clause-learning solver for a fixed CNF formula."""

    def __init__(self, formula: CNF, max_conflicts: Optional[int] = None):
        self._num_variables = formula.num_variables
        self._clauses: List[List[int]] = [list(clause) for clause in formula.clauses]
        self._max_conflicts = max_conflicts

        size = self._num_variables + 1
        self._assignment: List[Optional[bool]] = [None] * size
        self._level: List[int] = [0] * size
        self._reason: List[Optional[int]] = [None] * size
        self._activity: List[float] = [0.0] * size
        self._saved_phase: List[bool] = [False] * size
        self._activity_increment = 1.0
        self._activity_decay = 0.95

        self._trail: List[int] = []
        self._trail_limits: List[int] = []
        self._propagation_head = 0

        self._watches: Dict[int, List[int]] = {}
        self._conflicts = 0
        self._decisions = 0
        self._initial_units: List[int] = []

        for index, clause in enumerate(self._clauses):
            if len(clause) == 1:
                self._initial_units.append(clause[0])
            else:
                self._watch_clause(index)

    # -- public API -------------------------------------------------------------
    def solve(self) -> SATResult:
        """Run the CDCL loop and return the result."""
        if not self._place_initial_units():
            return SATResult(False, {}, self._conflicts, self._decisions)

        conflict_limit = 128.0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self._conflicts += 1
                if self._max_conflicts is not None and self._conflicts > self._max_conflicts:
                    raise SolverError("conflict budget exhausted before a result was found")
                if self._decision_level() == 0:
                    return SATResult(False, {}, self._conflicts, self._decisions)
                learnt_clause, backjump_level = self._analyze(conflict)
                self._backtrack(backjump_level)
                self._attach_learnt(learnt_clause)
                self._decay_activities()
                conflict_limit -= 1
                if conflict_limit <= 0:
                    conflict_limit = 128.0 + 0.1 * self._conflicts
                    self._backtrack(0)
                continue

            variable = self._pick_branch_variable()
            if variable is None:
                assignment = {
                    v: bool(self._assignment[v]) for v in range(1, self._num_variables + 1)
                }
                return SATResult(True, assignment, self._conflicts, self._decisions)
            self._decisions += 1
            self._trail_limits.append(len(self._trail))
            literal = variable if self._saved_phase[variable] else -variable
            self._enqueue(literal, reason=None)

    # -- clause bookkeeping -----------------------------------------------------
    def _watch_clause(self, index: int) -> None:
        clause = self._clauses[index]
        for literal in clause[:2]:
            self._watches.setdefault(literal, []).append(index)

    def _attach_learnt(self, clause: List[int]) -> None:
        if len(clause) == 1:
            self._enqueue(clause[0], reason=None)
            return
        self._clauses.append(clause)
        index = len(self._clauses) - 1
        self._watch_clause(index)
        self._enqueue(clause[0], reason=index)

    # -- assignment machinery ------------------------------------------------------
    def _place_initial_units(self) -> bool:
        for literal in self._initial_units:
            value = self._literal_value(literal)
            if value is False:
                return False
            if value is None:
                self._enqueue(literal, reason=None)
        return True

    def _decision_level(self) -> int:
        return len(self._trail_limits)

    def _literal_value(self, literal: int) -> Optional[bool]:
        value = self._assignment[abs(literal)]
        if value is None:
            return None
        return value if literal > 0 else not value

    def _enqueue(self, literal: int, reason: Optional[int]) -> None:
        variable = abs(literal)
        self._assignment[variable] = literal > 0
        self._level[variable] = self._decision_level()
        self._reason[variable] = reason
        self._saved_phase[variable] = literal > 0
        self._trail.append(literal)

    def _backtrack(self, target_level: int) -> None:
        if self._decision_level() <= target_level:
            return
        cutoff = self._trail_limits[target_level]
        for literal in reversed(self._trail[cutoff:]):
            variable = abs(literal)
            self._assignment[variable] = None
            self._reason[variable] = None
        del self._trail[cutoff:]
        del self._trail_limits[target_level:]
        self._propagation_head = min(self._propagation_head, len(self._trail))

    # -- propagation ---------------------------------------------------------------
    def _propagate(self) -> Optional[int]:
        while self._propagation_head < len(self._trail):
            literal = self._trail[self._propagation_head]
            self._propagation_head += 1
            false_literal = -literal
            watching = self._watches.get(false_literal, [])
            retained: List[int] = []
            conflict: Optional[int] = None
            for position, clause_index in enumerate(watching):
                clause = self._clauses[clause_index]
                if clause[0] == false_literal:
                    clause[0], clause[1] = clause[1], clause[0]
                first_value = self._literal_value(clause[0])
                if first_value is True:
                    retained.append(clause_index)
                    continue
                moved = False
                for alternative in range(2, len(clause)):
                    if self._literal_value(clause[alternative]) is not False:
                        clause[1], clause[alternative] = clause[alternative], clause[1]
                        self._watches.setdefault(clause[1], []).append(clause_index)
                        moved = True
                        break
                if moved:
                    continue
                retained.append(clause_index)
                if first_value is None:
                    self._enqueue(clause[0], reason=clause_index)
                else:
                    conflict = clause_index
                    retained.extend(watching[position + 1 :])
                    break
            self._watches[false_literal] = retained
            if conflict is not None:
                return conflict
        return None

    # -- conflict analysis ----------------------------------------------------------
    def _analyze(self, conflict_index: int) -> tuple:
        learnt: List[int] = []
        seen = [False] * (self._num_variables + 1)
        counter = 0
        literal: Optional[int] = None
        clause: List[int] = list(self._clauses[conflict_index])
        trail_index = len(self._trail) - 1
        current_level = self._decision_level()

        while True:
            for clause_literal in clause:
                # Skip the literal this clause propagated (the resolvent pivot).
                if literal is not None and clause_literal == literal:
                    continue
                variable = abs(clause_literal)
                if seen[variable] or self._level[variable] == 0:
                    continue
                seen[variable] = True
                self._bump_activity(variable)
                if self._level[variable] == current_level:
                    counter += 1
                else:
                    learnt.append(clause_literal)

            while not seen[abs(self._trail[trail_index])]:
                trail_index -= 1
            literal = self._trail[trail_index]
            variable = abs(literal)
            seen[variable] = False
            trail_index -= 1
            counter -= 1
            if counter == 0:
                break
            reason_index = self._reason[variable]
            assert reason_index is not None, "UIP literal must have a reason clause"
            clause = list(self._clauses[reason_index])

        learnt_clause = [-literal] + learnt
        if len(learnt_clause) == 1:
            backjump_level = 0
        else:
            levels = sorted((self._level[abs(lit)] for lit in learnt), reverse=True)
            backjump_level = levels[0]
            # Place a literal from the backjump level in the second watch slot.
            for index, lit in enumerate(learnt_clause[1:], start=1):
                if self._level[abs(lit)] == backjump_level:
                    learnt_clause[1], learnt_clause[index] = (
                        learnt_clause[index],
                        learnt_clause[1],
                    )
                    break
        return learnt_clause, backjump_level

    # -- branching heuristics -----------------------------------------------------------
    def _bump_activity(self, variable: int) -> None:
        self._activity[variable] += self._activity_increment
        if self._activity[variable] > 1e100:
            for index in range(1, self._num_variables + 1):
                self._activity[index] *= 1e-100
            self._activity_increment *= 1e-100

    def _decay_activities(self) -> None:
        self._activity_increment /= self._activity_decay

    def _pick_branch_variable(self) -> Optional[int]:
        best_variable = None
        best_activity = -1.0
        for variable in range(1, self._num_variables + 1):
            if self._assignment[variable] is None and self._activity[variable] > best_activity:
                best_variable = variable
                best_activity = self._activity[variable]
        return best_variable


def solve(
    formula: CNF,
    assumptions: Optional[Iterable[int]] = None,
    max_conflicts: Optional[int] = None,
) -> SATResult:
    """Solve ``formula`` (optionally under unit assumptions)."""
    if assumptions:
        working = formula.copy()
        for literal in assumptions:
            working.add_unit(literal)
    else:
        working = formula
    return CDCLSolver(working, max_conflicts=max_conflicts).solve()


def iterate_models(
    formula: CNF,
    over_variables: Optional[Sequence[int]] = None,
    limit: Optional[int] = None,
) -> Iterator[Dict[int, bool]]:
    """Enumerate models of ``formula``.

    ``over_variables`` restricts both the reported assignment and the blocking
    clauses to a subset of variables, so models are enumerated up to their
    projection onto those variables.  ``limit`` bounds the number of models.
    """
    variables = (
        list(over_variables)
        if over_variables is not None
        else list(range(1, formula.num_variables + 1))
    )
    working = formula.copy()
    found = 0
    while limit is None or found < limit:
        result = CDCLSolver(working).solve()
        if not result.satisfiable:
            return
        model = {v: result.assignment[v] for v in variables}
        yield model
        found += 1
        blocking_clause = [(-v if model[v] else v) for v in variables]
        if not blocking_clause:
            return
        working.add_clause(blocking_clause)
