"""A self-contained Boolean satisfiability (SAT) substrate.

The paper solves the BEER constraint problem with the Z3 solver; this package
provides the equivalent capability from scratch (see DESIGN.md substitution
table):

* :mod:`repro.sat.cnf` — CNF formula container with clause hygiene
  (duplicate-literal removal, tautology dropping) and variable allocation,
* :mod:`repro.sat.dimacs` — DIMACS CNF reading/writing,
* :mod:`repro.sat.solver` — a persistent, incremental CDCL solver
  (two-watched-literal propagation, first-UIP clause learning, heap-based
  VSIDS branching, native assumption solving, Luby restarts, learned-clause
  deletion) with incremental model enumeration support,
* :mod:`repro.sat.encoders` — helper encodings (XOR/parity chains, at-most-one,
  implications) used to express GF(2) constraints in CNF.

The BEER SAT backend (:mod:`repro.core.beer_sat`) builds directly on these
pieces; everything here is also usable independently as a general-purpose SAT
toolkit.
"""

from repro.sat.cnf import CNF, simplify_literals
from repro.sat.solver import (
    CDCLSolver,
    SATResult,
    SolverStats,
    solve,
    iterate_models,
)
from repro.sat.dimacs import read_dimacs, write_dimacs
from repro.sat.encoders import (
    encode_xor,
    encode_at_most_one,
    encode_exactly_one,
    encode_implies,
    encode_iff,
)

__all__ = [
    "CNF",
    "simplify_literals",
    "CDCLSolver",
    "SATResult",
    "SolverStats",
    "solve",
    "iterate_models",
    "read_dimacs",
    "write_dimacs",
    "encode_xor",
    "encode_at_most_one",
    "encode_exactly_one",
    "encode_implies",
    "encode_iff",
]
