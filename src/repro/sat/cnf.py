"""CNF formula container.

Literals follow the DIMACS convention: variables are positive integers
``1, 2, 3, ...``; a positive literal ``v`` asserts the variable is true and a
negative literal ``-v`` asserts it is false.  A clause is a disjunction of
literals, and a formula is a conjunction of clauses.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.exceptions import SolverError


class CNF:
    """A conjunctive-normal-form formula with explicit variable allocation."""

    def __init__(self, num_variables: int = 0):
        if num_variables < 0:
            raise SolverError("number of variables cannot be negative")
        self._num_variables = num_variables
        self._clauses: List[Tuple[int, ...]] = []

    # -- variables ---------------------------------------------------------
    @property
    def num_variables(self) -> int:
        """Highest variable index allocated so far."""
        return self._num_variables

    def new_variable(self) -> int:
        """Allocate and return a fresh variable."""
        self._num_variables += 1
        return self._num_variables

    def new_variables(self, count: int) -> List[int]:
        """Allocate ``count`` fresh variables and return them in order."""
        if count < 0:
            raise SolverError("cannot allocate a negative number of variables")
        return [self.new_variable() for _ in range(count)]

    # -- clauses -------------------------------------------------------------
    @property
    def clauses(self) -> List[Tuple[int, ...]]:
        """The clauses added so far (tuples of literals)."""
        return list(self._clauses)

    @property
    def num_clauses(self) -> int:
        """Number of clauses."""
        return len(self._clauses)

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add one clause; literals referencing unallocated variables extend the pool."""
        clause = tuple(int(lit) for lit in literals)
        if not clause:
            raise SolverError("cannot add an empty clause (formula would be trivially UNSAT)")
        for literal in clause:
            if literal == 0:
                raise SolverError("0 is not a valid literal")
            self._num_variables = max(self._num_variables, abs(literal))
        self._clauses.append(clause)

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> None:
        """Add several clauses."""
        for clause in clauses:
            self.add_clause(clause)

    def add_unit(self, literal: int) -> None:
        """Add a unit clause forcing ``literal`` to be true."""
        self.add_clause([literal])

    # -- evaluation -----------------------------------------------------------
    def evaluate(self, assignment: Sequence[bool]) -> bool:
        """Evaluate the formula under a full assignment.

        ``assignment[v - 1]`` gives the value of variable ``v``.
        """
        if len(assignment) < self._num_variables:
            raise SolverError(
                f"assignment covers {len(assignment)} variables, "
                f"formula has {self._num_variables}"
            )
        for clause in self._clauses:
            satisfied = False
            for literal in clause:
                value = assignment[abs(literal) - 1]
                if (literal > 0) == value:
                    satisfied = True
                    break
            if not satisfied:
                return False
        return True

    def copy(self) -> "CNF":
        """Return an independent copy of the formula."""
        duplicate = CNF(self._num_variables)
        duplicate._clauses = list(self._clauses)
        return duplicate

    def __repr__(self) -> str:
        return f"CNF(variables={self._num_variables}, clauses={len(self._clauses)})"
