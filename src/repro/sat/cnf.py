"""CNF formula container.

Literals follow the DIMACS convention: variables are positive integers
``1, 2, 3, ...``; a positive literal ``v`` asserts the variable is true and a
negative literal ``-v`` asserts it is false.  A clause is a disjunction of
literals, and a formula is a conjunction of clauses.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import SolverError


def simplify_literals(literals: Iterable[int]) -> Optional[Tuple[int, ...]]:
    """Validate and clean one clause: dedupe literals, detect tautologies.

    Returns the literals with duplicates removed (first-occurrence order), or
    ``None`` when the clause contains a complementary pair ``x, -x`` and is a
    tautology that may be dropped.  Duplicate literals are a correctness
    hazard downstream, not just noise: a two-watched-literal scheme would put
    both watch slots of ``[x, x]`` on the same literal and misreport a unit
    clause as a conflict.
    """
    seen: set = set()
    cleaned: List[int] = []
    for raw in literals:
        literal = int(raw)
        if literal == 0:
            raise SolverError("0 is not a valid literal")
        if -literal in seen:
            return None
        if literal not in seen:
            seen.add(literal)
            cleaned.append(literal)
    if not cleaned:
        raise SolverError("cannot add an empty clause (formula would be trivially UNSAT)")
    return tuple(cleaned)


class CNF:
    """A conjunctive-normal-form formula with explicit variable allocation."""

    def __init__(self, num_variables: int = 0):
        if num_variables < 0:
            raise SolverError("number of variables cannot be negative")
        self._num_variables = num_variables
        self._clauses: List[Tuple[int, ...]] = []

    # -- variables ---------------------------------------------------------
    @property
    def num_variables(self) -> int:
        """Highest variable index allocated so far."""
        return self._num_variables

    def new_variable(self) -> int:
        """Allocate and return a fresh variable."""
        self._num_variables += 1
        return self._num_variables

    def new_variables(self, count: int) -> List[int]:
        """Allocate ``count`` fresh variables and return them in order."""
        if count < 0:
            raise SolverError("cannot allocate a negative number of variables")
        return [self.new_variable() for _ in range(count)]

    # -- clauses -------------------------------------------------------------
    @property
    def clauses(self) -> List[Tuple[int, ...]]:
        """The clauses added so far (tuples of literals)."""
        return list(self._clauses)

    @property
    def num_clauses(self) -> int:
        """Number of clauses."""
        return len(self._clauses)

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add one clause; literals referencing unallocated variables extend the pool.

        Clause hygiene is applied at add time: duplicate literals are removed
        and tautologies (clauses containing both ``x`` and ``-x``) are
        silently dropped, so the stored formula is always watchable by a
        two-watched-literal solver.
        """
        raw = [int(literal) for literal in literals]
        clause = simplify_literals(raw)
        for literal in raw:
            self._num_variables = max(self._num_variables, abs(literal))
        if clause is None:
            return
        self._clauses.append(clause)

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> None:
        """Add several clauses."""
        for clause in clauses:
            self.add_clause(clause)

    def add_unit(self, literal: int) -> None:
        """Add a unit clause forcing ``literal`` to be true."""
        self.add_clause([literal])

    # -- evaluation -----------------------------------------------------------
    def evaluate(self, assignment: Sequence[bool]) -> bool:
        """Evaluate the formula under a full assignment.

        ``assignment[v - 1]`` gives the value of variable ``v``.
        """
        if len(assignment) < self._num_variables:
            raise SolverError(
                f"assignment covers {len(assignment)} variables, "
                f"formula has {self._num_variables}"
            )
        for clause in self._clauses:
            satisfied = False
            for literal in clause:
                value = assignment[abs(literal) - 1]
                if (literal > 0) == value:
                    satisfied = True
                    break
            if not satisfied:
                return False
        return True

    def copy(self) -> "CNF":
        """Return an independent copy of the formula."""
        duplicate = CNF(self._num_variables)
        duplicate._clauses = list(self._clauses)
        return duplicate

    def __repr__(self) -> str:
        return f"CNF(variables={self._num_variables}, clauses={len(self._clauses)})"
