"""Reading and writing DIMACS CNF files.

The DIMACS format is the interchange format for SAT instances::

    c optional comments
    p cnf <num_variables> <num_clauses>
    1 -2 3 0
    2 3 0

Each clause line lists its literals terminated by ``0``.  The reader is
deliberately liberal in what it accepts — comments and blank lines anywhere,
clauses split across lines or sharing one line, a missing trailing ``0`` on
the final clause, and the SATLIB-style ``%`` end-of-file marker — while
staying strict about real structural problems: a missing or duplicated
problem line, an explicit empty clause (which :class:`~repro.sat.cnf.CNF`
cannot represent), undeclared variables, and clause-count mismatches all
raise :class:`~repro.exceptions.SolverError`.  ``read_dimacs(write_dimacs(f))``
preserves ``f``'s clauses and variable count exactly (property-tested in
``tests/test_sat_cnf.py``).
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Union

from repro.exceptions import SolverError
from repro.sat.cnf import CNF


def read_dimacs(source: Union[str, Path, io.TextIOBase]) -> CNF:
    """Parse a DIMACS CNF file (path, string content, or open text stream)."""
    if isinstance(source, io.TextIOBase):
        text = source.read()
    else:
        path = Path(str(source))
        if path.exists():
            text = path.read_text()
        else:
            text = str(source)

    declared_variables = None
    declared_clauses = None
    formula = CNF()
    pending: list = []
    clauses_read = 0

    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        if line == "%":
            # SATLIB benchmark files terminate with a '%' marker (typically
            # followed by a stray '0' line); everything after it is ignored.
            if pending:
                raise SolverError(
                    "clause not terminated with 0 before the '%' end marker"
                )
            break
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise SolverError(f"malformed problem line: {line!r}")
            if declared_variables is not None:
                raise SolverError(f"duplicate problem line: {line!r}")
            declared_variables = int(parts[2])
            declared_clauses = int(parts[3])
            continue
        for token in line.split():
            try:
                literal = int(token)
            except ValueError:
                raise SolverError(
                    f"invalid literal {token!r} on line {raw_line!r}"
                ) from None
            if literal == 0:
                if not pending:
                    raise SolverError(
                        "explicit empty clause (bare '0'): the formula is "
                        "trivially unsatisfiable and cannot be represented"
                    )
                formula.add_clause(pending)
                pending = []
                clauses_read += 1
            else:
                pending.append(literal)
    if pending:
        # A final clause with its trailing '0' cut off at EOF.
        formula.add_clause(pending)
        clauses_read += 1

    if declared_variables is None:
        raise SolverError("missing 'p cnf' problem line")
    # add_clause grows the variable pool from the raw literals even for
    # clauses dropped as tautologies, so this covers every referenced variable.
    if formula.num_variables > declared_variables:
        raise SolverError(
            f"clauses reference variable {formula.num_variables} but the header "
            f"declares only {declared_variables}"
        )
    while formula.num_variables < declared_variables:
        formula.new_variable()
    if declared_clauses is not None and clauses_read != declared_clauses:
        raise SolverError(
            f"header declares {declared_clauses} clauses but {clauses_read} were read"
        )
    return formula


def write_dimacs(formula: CNF, destination: Union[str, Path, None] = None) -> str:
    """Serialise a CNF formula to DIMACS; optionally write it to ``destination``."""
    lines = [f"p cnf {formula.num_variables} {formula.num_clauses}"]
    for clause in formula.clauses:
        lines.append(" ".join(str(literal) for literal in clause) + " 0")
    text = "\n".join(lines) + "\n"
    if destination is not None:
        Path(destination).write_text(text)
    return text
