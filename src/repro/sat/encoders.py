"""CNF encodings for the constraint shapes the library needs.

The BEER SAT backend expresses GF(2) (XOR) relations, mutual exclusion, and
implications over Boolean variables.  These helpers add the corresponding
clauses to a :class:`~repro.sat.cnf.CNF`, allocating auxiliary variables where
needed.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.exceptions import SolverError
from repro.sat.cnf import CNF


def encode_xor(formula: CNF, literals: Sequence[int], parity: bool) -> None:
    """Constrain ``literals`` to XOR to ``parity`` (True = odd number of true literals).

    Long XOR chains are broken into three-literal links with auxiliary
    variables so clause counts stay linear in the chain length.
    """
    literals = list(literals)
    if not literals:
        if parity:
            raise SolverError("an empty XOR cannot have odd parity")
        return
    # Reduce to a chain: x1 xor x2 = a1, a1 xor x3 = a2, ...
    accumulator = literals[0]
    for literal in literals[1:]:
        auxiliary = formula.new_variable()
        _encode_xor_triple(formula, accumulator, literal, auxiliary)
        accumulator = auxiliary
    formula.add_unit(accumulator if parity else -accumulator)


def _encode_xor_triple(formula: CNF, left: int, right: int, result: int) -> None:
    """Add clauses enforcing ``result = left XOR right``."""
    formula.add_clauses(
        [
            [-left, -right, -result],
            [left, right, -result],
            [-left, right, result],
            [left, -right, result],
        ]
    )


def encode_odd_weight(formula: CNF, literals: Sequence[int]) -> None:
    """Constrain an odd number of ``literals`` to be true.

    This is the Hsiao SEC-DED column predicate: every data column of ``H``
    must have odd parity (which also makes it non-zero).
    """
    encode_xor(formula, literals, True)


def encode_not_weight_one(formula: CNF, literals: Sequence[int]) -> None:
    """Forbid exactly one of ``literals`` being true.

    For each literal: if it is true, some other literal must be true too.
    Combined with a non-zero constraint this yields weight ≥ 2; combined with
    :func:`encode_odd_weight` it yields weight ≥ 3 — the two column
    design-space predicates of the built-in BEER-searchable code families.
    """
    literals = list(literals)
    for index, literal in enumerate(literals):
        others = literals[:index] + literals[index + 1 :]
        formula.add_clause([-literal] + others)


def encode_column_design_space(
    formula: CNF, literals: Sequence[int], min_weight: int, odd_weight: bool
) -> None:
    """Encode a code family's per-column predicates over one column's variables.

    Supports the constraint shapes of
    :class:`repro.ecc.family.ColumnConstraints` that BEER-searchable families
    declare: ``min_weight`` in {1, 2, 3} (3 only together with
    ``odd_weight``, matching SEC-DED) and the odd-parity predicate.
    """
    if min_weight >= 4 or (min_weight == 3 and not odd_weight):
        raise SolverError(
            f"no CNF encoding registered for min_weight={min_weight} with "
            f"odd_weight={odd_weight}"
        )
    if odd_weight:
        encode_odd_weight(formula, literals)
    else:
        formula.add_clause(literals)  # non-zero
    if min_weight >= 2:
        encode_not_weight_one(formula, literals)


def encode_at_most_one(formula: CNF, literals: Sequence[int]) -> None:
    """Constrain at most one of ``literals`` to be true (pairwise encoding)."""
    literals = list(literals)
    for index, first in enumerate(literals):
        for second in literals[index + 1 :]:
            formula.add_clause([-first, -second])


def encode_exactly_one(formula: CNF, literals: Sequence[int]) -> None:
    """Constrain exactly one of ``literals`` to be true."""
    literals = list(literals)
    if not literals:
        raise SolverError("exactly-one over an empty set is unsatisfiable")
    formula.add_clause(literals)
    encode_at_most_one(formula, literals)


def encode_implies(formula: CNF, antecedent: int, consequents: Sequence[int]) -> None:
    """Constrain ``antecedent -> (c1 and c2 and ...)``."""
    for consequent in consequents:
        formula.add_clause([-antecedent, consequent])


def encode_iff(formula: CNF, left: int, right: int) -> None:
    """Constrain ``left <-> right``."""
    formula.add_clauses([[-left, right], [left, -right]])


def encode_clause_selector(formula: CNF, selector: int, clause: Sequence[int]) -> None:
    """Constrain ``selector -> clause`` (a guarded/soft clause)."""
    formula.add_clause([-selector] + list(clause))


def encode_conjunction(formula: CNF, output: int, inputs: Sequence[int]) -> None:
    """Constrain ``output <-> AND(inputs)`` (Tseitin AND gate)."""
    inputs = list(inputs)
    if not inputs:
        formula.add_unit(output)
        return
    for literal in inputs:
        formula.add_clause([-output, literal])
    formula.add_clause([output] + [-literal for literal in inputs])


def encode_disjunction(formula: CNF, output: int, inputs: Sequence[int]) -> None:
    """Constrain ``output <-> OR(inputs)`` (Tseitin OR gate)."""
    inputs = list(inputs)
    if not inputs:
        formula.add_unit(-output)
        return
    for literal in inputs:
        formula.add_clause([output, -literal])
    formula.add_clause([-output] + list(inputs))


def integer_of_bits(model: dict, variables: Sequence[int]) -> int:
    """Decode a little-endian bit vector of SAT variables from a model."""
    value = 0
    for position, variable in enumerate(variables):
        if model[variable]:
            value |= 1 << position
    return value


def bits_of_integer(value: int, width: int) -> List[bool]:
    """Return the little-endian bit list of ``value`` with the given width."""
    if value < 0 or value >> width:
        raise SolverError(f"value {value} does not fit in {width} bits")
    return [(value >> position) & 1 == 1 for position in range(width)]
