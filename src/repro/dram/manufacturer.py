"""Manufacturer profiles for simulated DRAM chips.

The paper studies chips from three anonymised manufacturers (A, B, C) and
observes that:

* all three use on-die ECC with the same dataword layout but apparently
  *different* ECC functions (Figure 3);
* manufacturer A's miscorrection profile looks unstructured, while B's and
  C's show repeating patterns, suggesting systematically organised
  parity-check matrices;
* A and B use only true-cells, while C alternates blocks of true- and
  anti-cell rows (Section 5.1.1).

The profiles below bake these qualitative differences into chip factories so
that the reproduction's "real-chip" experiments (Section 5) have three
distinct vendors to discriminate between.  The actual matrices are of course
not the confidential production functions — they are representative stand-ins
with the same structural flavour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.ecc.code import SystematicLinearCode
from repro.ecc.family import get_family
from repro.dram.cell import CellType
from repro.dram.chip import ChipGeometry, SimulatedDramChip
from repro.dram.faults import TransientFaultModel
from repro.dram.layout import ByteInterleavedWordLayout, CellTypeLayout
from repro.dram.retention import DataRetentionModel


def _unstructured_columns(
    num_data_bits: int, available: Sequence[int], seed: int
) -> List[int]:
    """Vendor-A style: a pseudo-random arrangement of legal columns."""
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(available))[:num_data_bits]
    return [available[int(i)] for i in order]


def _ascending_columns(
    num_data_bits: int, available: Sequence[int], seed: int
) -> List[int]:
    """Vendor-B style: columns in ascending numeric order (regular structure)."""
    del seed
    return list(available[:num_data_bits])


def _weight_grouped_columns(
    num_data_bits: int, available: Sequence[int], seed: int
) -> List[int]:
    """Vendor-C style: columns grouped by Hamming weight (a different regularity)."""
    del seed
    grouped = sorted(available, key=lambda value: (bin(value).count("1"), value))
    return grouped[:num_data_bits]


@dataclass(frozen=True)
class ManufacturerProfile:
    """A recipe for building simulated chips from one (anonymised) manufacturer."""

    name: str
    column_strategy: Callable[[int, Sequence[int], int], List[int]]
    cell_blocks: Optional[Sequence[int]] = None  # None => all true-cells
    default_dataword_bits: int = 32
    description: str = ""
    extra_seed: int = field(default=0)

    def ecc_function(
        self,
        num_data_bits: Optional[int] = None,
        num_parity_bits: Optional[int] = None,
        code_family: str = "sec-hamming",
    ) -> SystematicLinearCode:
        """Return this manufacturer's on-die ECC function for the given width.

        ``code_family`` selects the design space the vendor's column strategy
        arranges (any registered family with a searchable column space, e.g.
        ``"secded-extended-hamming"``); the strategy itself — unstructured,
        ascending, weight-grouped — stays a vendor property.
        """
        family = get_family(code_family)
        data_bits = num_data_bits if num_data_bits is not None else self.default_dataword_bits
        parity_bits = (
            num_parity_bits
            if num_parity_bits is not None
            else family.min_parity_bits(data_bits)
        )
        available = family.candidate_columns(parity_bits)
        columns = self.column_strategy(data_bits, available, self.extra_seed)
        return family.construct(data_bits, parity_bits, columns=columns)

    def cell_layout(self) -> CellTypeLayout:
        """Return this manufacturer's true/anti-cell row organisation."""
        if self.cell_blocks is None:
            return CellTypeLayout.uniform(CellType.TRUE_CELL)
        return CellTypeLayout.alternating(list(self.cell_blocks), first=CellType.TRUE_CELL)

    def make_chip(
        self,
        num_data_bits: Optional[int] = None,
        geometry: Optional[ChipGeometry] = None,
        seed: int = 0,
        transient_fault_probability: float = 0.0,
        retention_model: Optional[DataRetentionModel] = None,
        backend: str = "reference",
        code_family: str = "sec-hamming",
    ) -> SimulatedDramChip:
        """Build a simulated chip of this manufacturer.

        ``seed`` selects the chip instance (its per-cell retention times); the
        ECC function and layouts are manufacturer properties and do not change
        between chips of the same model, matching the paper's observation that
        chips of the same model share one ECC function.  ``code_family``
        selects which family the on-die ECC function is drawn from.
        """
        code = self.ecc_function(num_data_bits, code_family=code_family)
        data_bits = code.num_data_bits
        word_layout = (
            ByteInterleavedWordLayout(data_bits // 8, 2) if data_bits % 8 == 0 else None
        )
        return SimulatedDramChip(
            code=code,
            geometry=geometry if geometry is not None else ChipGeometry(),
            cell_layout=self.cell_layout(),
            word_layout=word_layout,
            retention_model=retention_model,
            transient_faults=TransientFaultModel(transient_fault_probability),
            seed=seed,
            backend=backend,
        )


#: Manufacturer A: true-cells only, unstructured parity-check matrix.
VENDOR_A = ManufacturerProfile(
    name="A",
    column_strategy=_unstructured_columns,
    cell_blocks=None,
    description="True-cells only; apparently unstructured parity-check matrix.",
    extra_seed=0xA,
)

#: Manufacturer B: true-cells only, regular ascending-column matrix.
VENDOR_B = ManufacturerProfile(
    name="B",
    column_strategy=_ascending_columns,
    cell_blocks=None,
    description="True-cells only; regular ascending-syndrome parity-check matrix.",
    extra_seed=0xB,
)

#: Manufacturer C: alternating true/anti-cell row blocks, weight-grouped matrix.
VENDOR_C = ManufacturerProfile(
    name="C",
    column_strategy=_weight_grouped_columns,
    cell_blocks=(8, 8, 12),
    description=(
        "50/50 true-/anti-cells in alternating row blocks; weight-grouped "
        "parity-check matrix."
    ),
    extra_seed=0xC,
)


def all_vendors() -> List[ManufacturerProfile]:
    """Return the three manufacturer profiles in order A, B, C."""
    return [VENDOR_A, VENDOR_B, VENDOR_C]
