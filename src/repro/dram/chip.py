"""A behavioural model of a DRAM chip with on-die ECC.

The chip stores every dataword as an ECC codeword produced by an internal
(single-error-correcting) code that is *not* observable at the chip interface.
Reads decode the stored codeword and return only the data bits — exactly the
visibility a third-party tester has when applying BEER to real hardware.

The model exposes the handful of controls that the paper's testing
infrastructure provides:

* write and read datawords (word-granular or byte-addressed),
* pause refresh for a chosen duration at a chosen ambient temperature, which
  lets CHARGED cells decay according to their per-cell retention times,
* nothing else — syndromes, parity bits and pre-correction states stay inside
  the chip (accessible only through explicitly named ``inspect_*`` ground-truth
  helpers that the BEER/BEEP algorithms never use).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.exceptions import AddressError, ChipConfigurationError
from repro.gf2 import GF2Vector
from repro.ecc.code import SystematicLinearCode
from repro.dram.cell import CellType
from repro.dram.faults import TransientFaultModel
from repro.dram.layout import ByteInterleavedWordLayout, CellTypeLayout
from repro.dram.retention import DataRetentionModel


@dataclass(frozen=True)
class ChipGeometry:
    """Size of the simulated chip, expressed in rows and ECC words per row."""

    num_rows: int = 64
    words_per_row: int = 8

    def __post_init__(self):
        if self.num_rows < 1 or self.words_per_row < 1:
            raise ChipConfigurationError("chip geometry values must be positive")

    @property
    def num_words(self) -> int:
        """Total number of ECC words on the chip."""
        return self.num_rows * self.words_per_row


class SimulatedDramChip:
    """Simulated DRAM chip with on-die ECC and a data-retention fault model."""

    def __init__(
        self,
        code: SystematicLinearCode,
        geometry: Optional[ChipGeometry] = None,
        cell_layout: Optional[CellTypeLayout] = None,
        word_layout=None,
        retention_model: Optional[DataRetentionModel] = None,
        transient_faults: Optional[TransientFaultModel] = None,
        seed: int = 0,
        backend: str = "reference",
    ):
        from repro.einsim.engine import resolve_backend

        self._code = code
        self._backend = resolve_backend(backend)
        self._geometry = geometry if geometry is not None else ChipGeometry()
        self._cell_layout = (
            cell_layout
            if cell_layout is not None
            else CellTypeLayout.uniform(CellType.TRUE_CELL)
        )
        if code.num_data_bits % 8 == 0:
            default_layout = ByteInterleavedWordLayout(code.num_data_bits // 8, 2)
        else:
            default_layout = None
        self._word_layout = word_layout if word_layout is not None else default_layout
        self._retention_model = (
            retention_model if retention_model is not None else DataRetentionModel()
        )
        self._transient_faults = (
            transient_faults if transient_faults is not None else TransientFaultModel(0.0)
        )
        self._rng = np.random.default_rng(seed)

        num_words = self._geometry.num_words
        codeword_length = code.codeword_length
        self._stored = np.zeros((num_words, codeword_length), dtype=np.uint8)
        self._current = np.zeros((num_words, codeword_length), dtype=np.uint8)
        self._retention_times = self._retention_model.sample_retention_times(
            num_words * codeword_length, self._rng
        ).reshape(num_words, codeword_length)

        # One cell type per word (all cells of a row share the row's type).
        word_rows = np.arange(num_words) // self._geometry.words_per_row
        self._word_is_anti = np.array(
            [
                self._cell_layout.cell_type_for_row(int(row)) is CellType.ANTI_CELL
                for row in word_rows
            ],
            dtype=bool,
        )


    # -- basic properties ----------------------------------------------------
    @property
    def code(self) -> SystematicLinearCode:
        """The on-die ECC function (ground truth; hidden from BEER itself)."""
        return self._code

    @property
    def backend(self) -> str:
        """GF(2) kernel backend used by the on-die encode/decode machinery."""
        return self._backend

    @property
    def geometry(self) -> ChipGeometry:
        """The chip geometry."""
        return self._geometry

    @property
    def num_words(self) -> int:
        """Total number of ECC words on the chip."""
        return self._geometry.num_words

    @property
    def num_data_bits(self) -> int:
        """Dataword length of the on-die ECC."""
        return self._code.num_data_bits

    @property
    def word_layout(self):
        """The byte-address to ECC-word layout (None for word-only addressing)."""
        return self._word_layout

    @property
    def row_size_bytes(self) -> int:
        """Number of data bytes stored per row (requires byte-aligned datawords)."""
        if self._code.num_data_bits % 8 != 0:
            raise ChipConfigurationError(
                "row size in bytes is undefined for non-byte-aligned datawords"
            )
        return self._geometry.words_per_row * (self._code.num_data_bits // 8)

    def row_of_word(self, word_index: int) -> int:
        """Return the row that stores the given ECC word."""
        self._check_word_index(word_index)
        return word_index // self._geometry.words_per_row

    def words_in_row(self, row_index: int) -> range:
        """Return the ECC word indices stored in the given row."""
        if not 0 <= row_index < self._geometry.num_rows:
            raise AddressError(f"row index {row_index} out of range")
        start = row_index * self._geometry.words_per_row
        return range(start, start + self._geometry.words_per_row)

    def cell_type_of_word(self, word_index: int) -> CellType:
        """Return the cell type (true/anti) of every cell in the given word."""
        self._check_word_index(word_index)
        return CellType.ANTI_CELL if self._word_is_anti[word_index] else CellType.TRUE_CELL

    # -- word-granular data access ---------------------------------------------
    def write_dataword(self, word_index: int, dataword) -> None:
        """Encode and store one dataword."""
        self.write_datawords([word_index], np.asarray([_as_bits(dataword, self.num_data_bits)]))

    def write_datawords(self, word_indices: Sequence[int], datawords: np.ndarray) -> None:
        """Encode and store datawords at the given word indices (vectorised)."""
        indices = self._validate_indices(word_indices)
        data = np.asarray(datawords, dtype=np.uint8)
        if data.ndim != 2 or data.shape != (len(indices), self.num_data_bits):
            raise AddressError(
                f"expected dataword array of shape ({len(indices)}, {self.num_data_bits})"
            )
        from repro.einsim.engine import bulk_encode

        codewords = bulk_encode(self._code, data, self._backend)
        self._stored[indices] = codewords
        self._current[indices] = codewords

    def fill(self, dataword) -> None:
        """Write the same dataword to every ECC word on the chip."""
        bits = _as_bits(dataword, self.num_data_bits)
        tiled = np.tile(bits, (self.num_words, 1))
        self.write_datawords(range(self.num_words), tiled)

    def read_dataword(self, word_index: int) -> GF2Vector:
        """Read and decode one dataword."""
        return GF2Vector(self.read_datawords([word_index])[0])

    def read_datawords(self, word_indices: Sequence[int]) -> np.ndarray:
        """Read and decode datawords at the given indices (vectorised).

        The returned array contains only post-correction data bits; parity
        bits and syndromes are never exposed.
        """
        indices = self._validate_indices(word_indices)
        raw = self._current[indices]
        raw = self._transient_faults.corrupt(raw, self._rng)
        corrected = self._decode_bulk(raw)
        return corrected[:, : self.num_data_bits]

    def read_all_datawords(self) -> np.ndarray:
        """Read and decode every word on the chip."""
        return self.read_datawords(range(self.num_words))

    # -- byte-addressed access --------------------------------------------------
    def write_bytes(self, byte_address: int, data: bytes) -> None:
        """Write bytes through the address layout (read-modify-write per word)."""
        layout = self._require_layout()
        pending = {}
        for offset, value in enumerate(data):
            for bit_in_byte in range(8):
                target = layout.bit_address(byte_address + offset, bit_in_byte)
                self._check_word_index(target.word_index)
                word_bits = pending.get(target.word_index)
                if word_bits is None:
                    word_bits = self._stored[target.word_index, : self.num_data_bits].copy()
                    pending[target.word_index] = word_bits
                word_bits[target.bit_index] = (value >> bit_in_byte) & 1
        for word_index, bits in pending.items():
            self.write_dataword(word_index, bits)

    def read_bytes(self, byte_address: int, length: int) -> bytes:
        """Read bytes through the address layout."""
        layout = self._require_layout()
        needed_words = sorted(
            {
                layout.bit_address(byte_address + offset, 0).word_index
                for offset in range(length)
            }
        )
        decoded = {
            word: bits
            for word, bits in zip(needed_words, self.read_datawords(needed_words))
        }
        output = bytearray()
        for offset in range(length):
            value = 0
            for bit_in_byte in range(8):
                target = layout.bit_address(byte_address + offset, bit_in_byte)
                value |= int(decoded[target.word_index][target.bit_index]) << bit_in_byte
            output.append(value)
        return bytes(output)

    # -- refresh control -----------------------------------------------------------
    def pause_refresh(self, duration_s: float, temperature_c: float = 80.0) -> None:
        """Pause refresh for ``duration_s`` seconds at the given temperature.

        Every CHARGED cell whose retention time is shorter than the effective
        window decays to the DISCHARGED state.  The decay accumulates until
        the affected words are rewritten.
        """
        if duration_s < 0:
            raise ChipConfigurationError("refresh pause must be non-negative")
        failing = self._retention_model.cells_failing(
            self._retention_times, duration_s, temperature_c
        )
        anti_mask = self._word_is_anti[:, np.newaxis]
        # True-cells: CHARGED stores 1, decays to 0.  Anti-cells: CHARGED
        # stores 0, decays to 1.
        charged = np.where(anti_mask, self._current == 0, self._current == 1)
        decayed = failing & charged
        self._current = np.where(
            decayed, np.where(anti_mask, 1, 0), self._current
        ).astype(np.uint8)

    def restore_refresh(self) -> None:
        """Resume normal refresh (no further decay until the next pause).

        Decay that already happened cannot be undone; the method exists so
        experiment code reads naturally (pause → wait → restore → read).
        """

    # -- ground-truth inspection (not available to BEER/BEEP) -----------------------
    def inspect_stored_codeword(self, word_index: int) -> GF2Vector:
        """Ground truth: the codeword as originally written (pre-decay)."""
        self._check_word_index(word_index)
        return GF2Vector(self._stored[word_index])

    def inspect_current_codeword(self, word_index: int) -> GF2Vector:
        """Ground truth: the stored codeword including accumulated decay."""
        self._check_word_index(word_index)
        return GF2Vector(self._current[word_index])

    def inspect_pre_correction_errors(self, word_index: int) -> tuple:
        """Ground truth: positions of raw (pre-correction) errors in a word."""
        self._check_word_index(word_index)
        difference = self._stored[word_index] ^ self._current[word_index]
        return tuple(int(i) for i in np.flatnonzero(difference))

    def inspect_retention_time(self, word_index: int, bit_index: int) -> float:
        """Ground truth: a single cell's retention time (seconds at 80 °C)."""
        self._check_word_index(word_index)
        return float(self._retention_times[word_index, bit_index])

    # -- internals ----------------------------------------------------------------
    def _decode_bulk(self, raw: np.ndarray) -> np.ndarray:
        from repro.einsim.engine import bulk_decode

        return bulk_decode(self._code, raw, self._backend)

    def _require_layout(self):
        if self._word_layout is None:
            raise ChipConfigurationError(
                "byte-addressed access requires a word layout "
                "(dataword length must be byte-aligned or a layout must be supplied)"
            )
        return self._word_layout

    def _check_word_index(self, word_index: int) -> None:
        if not 0 <= word_index < self.num_words:
            raise AddressError(
                f"word index {word_index} out of range for {self.num_words} words"
            )

    def _validate_indices(self, word_indices: Iterable[int]) -> np.ndarray:
        indices = np.asarray(list(word_indices), dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_words):
            raise AddressError("one or more word indices out of range")
        return indices


def _as_bits(dataword, expected_length: int) -> np.ndarray:
    """Convert a dataword (GF2Vector, list, ndarray) to a uint8 bit array."""
    if isinstance(dataword, GF2Vector):
        bits = dataword.to_numpy()
    else:
        bits = np.asarray(dataword, dtype=np.uint8) % 2
    if bits.ndim != 1 or bits.shape[0] != expected_length:
        raise AddressError(
            f"dataword must have exactly {expected_length} bits, got shape {bits.shape}"
        )
    return bits.astype(np.uint8)
