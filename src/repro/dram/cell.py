"""DRAM cell encoding conventions (true-cells vs anti-cells).

Section 3.1 of the paper: a *true-cell* encodes data '1' as a fully charged
capacitor while an *anti-cell* encodes data '1' as a fully discharged one.
The convention is invisible during normal operation but matters for
data-retention errors, because cells decay only from CHARGED to DISCHARGED.
For a true-cell a retention error therefore flips 1 → 0; for an anti-cell it
flips 0 → 1.
"""

from __future__ import annotations

from repro.exceptions import ValidationError
import enum


class CellType(enum.Enum):
    """Physical data-encoding convention of a DRAM cell."""

    #: Data '1' is stored as a charged capacitor.
    TRUE_CELL = "true"
    #: Data '1' is stored as a discharged capacitor.
    ANTI_CELL = "anti"


class ChargeState(enum.Enum):
    """Electrical state of a DRAM cell's storage capacitor."""

    CHARGED = "charged"
    DISCHARGED = "discharged"


def charge_state_for_bit(cell_type: CellType, bit_value: int) -> ChargeState:
    """Return the charge state a cell assumes when storing ``bit_value``."""
    if bit_value not in (0, 1):
        raise ValidationError(f"bit value must be 0 or 1, got {bit_value}")
    if cell_type is CellType.TRUE_CELL:
        return ChargeState.CHARGED if bit_value == 1 else ChargeState.DISCHARGED
    return ChargeState.CHARGED if bit_value == 0 else ChargeState.DISCHARGED


def bit_for_charge_state(cell_type: CellType, state: ChargeState) -> int:
    """Return the logical bit value a cell in ``state`` reads back as."""
    if cell_type is CellType.TRUE_CELL:
        return 1 if state is ChargeState.CHARGED else 0
    return 0 if state is ChargeState.CHARGED else 1


def retention_error_value(cell_type: CellType) -> int:
    """Return the bit value a cell decays *to* when it loses its charge."""
    return bit_for_charge_state(cell_type, ChargeState.DISCHARGED)


def can_experience_retention_error(cell_type: CellType, stored_bit: int) -> bool:
    """Return True if a cell storing ``stored_bit`` can suffer a retention error.

    Only CHARGED cells can decay, so a cell is vulnerable exactly when its
    stored value maps to the CHARGED state under its encoding convention.
    """
    return charge_state_for_bit(cell_type, stored_bit) is ChargeState.CHARGED
