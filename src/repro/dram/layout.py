"""Address layouts: ECC-word interleaving and true/anti-cell organisation.

Two layout questions matter to a third party testing a chip with on-die ECC
(paper Sections 5.1.1 and 5.1.2):

* **Which bytes share an ECC word?**  The profiled LPDDR4 chips map each
  contiguous 32 B region onto two 16 B ECC datawords interleaved at byte
  granularity (byte 0 → word 0, byte 1 → word 1, byte 2 → word 0, ...).
  :class:`ByteInterleavedWordLayout` models this; :class:`SequentialWordLayout`
  models the simpler contiguous mapping for comparison.

* **Which cells are true-cells and which are anti-cells?**  Manufacturers A
  and B use only true-cells; manufacturer C alternates blocks of rows between
  the two conventions.  :class:`CellTypeLayout` captures both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.exceptions import AddressError, ChipConfigurationError, ReproError
from repro.dram.cell import CellType


@dataclass(frozen=True)
class WordBitAddress:
    """Location of one data bit inside the chip's ECC-word address space."""

    word_index: int
    bit_index: int


class SequentialWordLayout:
    """Contiguous mapping: each ECC dataword covers ``dataword_bytes`` adjacent bytes."""

    def __init__(self, dataword_bytes: int):
        if dataword_bytes < 1:
            raise ChipConfigurationError("dataword must span at least one byte")
        self._dataword_bytes = dataword_bytes

    @property
    def dataword_bytes(self) -> int:
        """Number of bytes covered by one ECC dataword."""
        return self._dataword_bytes

    @property
    def region_bytes(self) -> int:
        """Size of the address-space granule the layout repeats over."""
        return self._dataword_bytes

    @property
    def words_per_region(self) -> int:
        """Number of ECC words per region (always 1 for sequential layout)."""
        return 1

    def bit_address(self, byte_address: int, bit_in_byte: int) -> WordBitAddress:
        """Map ``(byte_address, bit_in_byte)`` to its ECC word and bit index."""
        _validate_bit_in_byte(bit_in_byte)
        if byte_address < 0:
            raise AddressError("byte address must be non-negative")
        word_index = byte_address // self._dataword_bytes
        byte_in_word = byte_address % self._dataword_bytes
        return WordBitAddress(word_index, byte_in_word * 8 + bit_in_byte)

    def byte_address(self, word_index: int, bit_index: int) -> Tuple[int, int]:
        """Inverse of :meth:`bit_address`; returns ``(byte_address, bit_in_byte)``."""
        if bit_index < 0 or bit_index >= self._dataword_bytes * 8:
            raise AddressError("bit index out of range for this layout")
        byte_in_word, bit_in_byte = divmod(bit_index, 8)
        return word_index * self._dataword_bytes + byte_in_word, bit_in_byte


class ByteInterleavedWordLayout:
    """Byte-granularity interleaving of several ECC words within a region.

    With the paper's parameters (``dataword_bytes=16``, ``words_per_region=2``)
    a 32 B region holds two 16 B ECC datawords: even bytes belong to the first
    word and odd bytes to the second.
    """

    def __init__(self, dataword_bytes: int = 16, words_per_region: int = 2):
        if dataword_bytes < 1 or words_per_region < 1:
            raise ChipConfigurationError(
                "dataword size and words per region must be positive"
            )
        self._dataword_bytes = dataword_bytes
        self._words_per_region = words_per_region

    @property
    def dataword_bytes(self) -> int:
        """Number of bytes covered by one ECC dataword."""
        return self._dataword_bytes

    @property
    def words_per_region(self) -> int:
        """Number of ECC words interleaved within one region."""
        return self._words_per_region

    @property
    def region_bytes(self) -> int:
        """Size of one interleaving region in bytes."""
        return self._dataword_bytes * self._words_per_region

    def bit_address(self, byte_address: int, bit_in_byte: int) -> WordBitAddress:
        """Map ``(byte_address, bit_in_byte)`` to its ECC word and bit index."""
        _validate_bit_in_byte(bit_in_byte)
        if byte_address < 0:
            raise AddressError("byte address must be non-negative")
        region_index, offset = divmod(byte_address, self.region_bytes)
        word_in_region = offset % self._words_per_region
        byte_in_word = offset // self._words_per_region
        word_index = region_index * self._words_per_region + word_in_region
        return WordBitAddress(word_index, byte_in_word * 8 + bit_in_byte)

    def byte_address(self, word_index: int, bit_index: int) -> Tuple[int, int]:
        """Inverse of :meth:`bit_address`; returns ``(byte_address, bit_in_byte)``."""
        if bit_index < 0 or bit_index >= self._dataword_bytes * 8:
            raise AddressError("bit index out of range for this layout")
        byte_in_word, bit_in_byte = divmod(bit_index, 8)
        region_index, word_in_region = divmod(word_index, self._words_per_region)
        byte_address = (
            region_index * self.region_bytes
            + byte_in_word * self._words_per_region
            + word_in_region
        )
        return byte_address, bit_in_byte


class CellTypeLayout:
    """Assignment of true-/anti-cell conventions to rows.

    The layout is described as repeating blocks of rows; e.g. the paper's
    manufacturer C alternates true- and anti-cell blocks with block lengths of
    800, 824, and 1224 rows.  The (scaled-down) simulated chips use the same
    structure with configurable block lengths.
    """

    def __init__(self, block_types: Sequence[CellType], block_lengths: Sequence[int]):
        if len(block_types) != len(block_lengths) or not block_types:
            raise ChipConfigurationError(
                "block types and block lengths must be non-empty and equal length"
            )
        if any(length < 1 for length in block_lengths):
            raise ChipConfigurationError("block lengths must be positive")
        self._block_types = list(block_types)
        self._block_lengths = list(block_lengths)
        self._period = sum(block_lengths)

    @classmethod
    def uniform(cls, cell_type: CellType) -> "CellTypeLayout":
        """Return a layout in which every row uses the same cell type."""
        return cls([cell_type], [1])

    @classmethod
    def alternating(
        cls, block_lengths: Sequence[int], first: CellType = CellType.TRUE_CELL
    ) -> "CellTypeLayout":
        """Return a layout alternating true/anti blocks of the given lengths."""
        second = (
            CellType.ANTI_CELL if first is CellType.TRUE_CELL else CellType.TRUE_CELL
        )
        types = [first if i % 2 == 0 else second for i in range(len(block_lengths))]
        return cls(types, block_lengths)

    @property
    def period(self) -> int:
        """Number of rows after which the block pattern repeats."""
        return self._period

    def cell_type_for_row(self, row_index: int) -> CellType:
        """Return the cell type used by every cell in the given row."""
        if row_index < 0:
            raise AddressError("row index must be non-negative")
        offset = row_index % self._period
        for cell_type, length in zip(self._block_types, self._block_lengths):
            if offset < length:
                return cell_type
            offset -= length
        raise ReproError("unreachable: offset exceeded layout period")

    def rows_of_type(self, cell_type: CellType, num_rows: int) -> List[int]:
        """Return every row index below ``num_rows`` using ``cell_type``."""
        return [
            row for row in range(num_rows) if self.cell_type_for_row(row) is cell_type
        ]


def _validate_bit_in_byte(bit_in_byte: int) -> None:
    if not 0 <= bit_in_byte < 8:
        raise AddressError(f"bit-in-byte must be in [0, 8), got {bit_in_byte}")
