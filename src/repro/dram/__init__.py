"""Behavioural DRAM-chip substrate with on-die ECC.

The paper's experiments run on 80 real LPDDR4 chips; this package provides the
simulated equivalent used by the reproduction (see DESIGN.md, substitution
table).  It models exactly the properties BEER relies on:

* each cell is a *true-cell* or *anti-cell* (:mod:`repro.dram.cell`); only
  cells in the CHARGED state can suffer data-retention errors, and they fail
  unidirectionally towards DISCHARGED;
* per-cell retention times are fixed per chip (errors are repeatable), their
  spatial distribution is uniform-random, and the failure probability grows
  with the refresh window and with temperature
  (:mod:`repro.dram.retention`);
* datawords are scrambled into ECC words by an address layout — two
  byte-interleaved 16 B words per 32 B region for the profiled chips
  (:mod:`repro.dram.layout`);
* every write is encoded and every read decoded by an on-die SEC Hamming code
  that is invisible at the chip interface (:mod:`repro.dram.chip`);
* occasional transient faults can corrupt reads independently of retention
  behaviour (:mod:`repro.dram.faults`), which exercises BEER's threshold
  filtering.

Manufacturer profiles A/B/C (:mod:`repro.dram.manufacturer`) bundle these
choices the way the paper describes the three anonymised vendors.
"""

from repro.dram.cell import CellType, ChargeState, charge_state_for_bit, bit_for_charge_state
from repro.dram.retention import DataRetentionModel, RetentionCalibration
from repro.dram.layout import ByteInterleavedWordLayout, SequentialWordLayout, CellTypeLayout
from repro.dram.faults import TransientFaultModel, StuckAtFaultModel
from repro.dram.chip import SimulatedDramChip, ChipGeometry
from repro.dram.manufacturer import (
    ManufacturerProfile,
    VENDOR_A,
    VENDOR_B,
    VENDOR_C,
    all_vendors,
)

__all__ = [
    "CellType",
    "ChargeState",
    "charge_state_for_bit",
    "bit_for_charge_state",
    "DataRetentionModel",
    "RetentionCalibration",
    "ByteInterleavedWordLayout",
    "SequentialWordLayout",
    "CellTypeLayout",
    "TransientFaultModel",
    "StuckAtFaultModel",
    "SimulatedDramChip",
    "ChipGeometry",
    "ManufacturerProfile",
    "VENDOR_A",
    "VENDOR_B",
    "VENDOR_C",
    "all_vendors",
]
