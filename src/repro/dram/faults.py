"""Non-retention fault models.

BEER's miscorrection profiles must be robust to occasional errors that are not
data-retention related — soft errors from particle strikes, variable-retention
-time cells, voltage fluctuations (paper Section 5.2).  These faults are rare
compared with the deliberately induced retention errors, so BEER removes them
with a simple threshold filter.  The models here let the simulated chip inject
exactly that kind of interference so the filtering path can be exercised.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.exceptions import ChipConfigurationError


class TransientFaultModel:
    """Rare, random, non-repeatable single-bit flips applied at read time.

    Parameters
    ----------
    probability_per_bit:
        Probability that any individual stored bit is flipped during one read
        operation.  The paper's argument is that this rate is orders of
        magnitude below the induced retention error rate (> 1e-7), so the
        default is tiny but non-zero.
    """

    def __init__(self, probability_per_bit: float = 1e-9):
        if not 0 <= probability_per_bit <= 1:
            raise ChipConfigurationError("fault probability must be in [0, 1]")
        self._probability_per_bit = probability_per_bit

    @property
    def probability_per_bit(self) -> float:
        """Per-bit flip probability per read."""
        return self._probability_per_bit

    def corrupt(self, bits: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return a copy of ``bits`` with transient flips applied."""
        bits = np.asarray(bits, dtype=np.uint8)
        if self._probability_per_bit == 0:
            return bits.copy()
        flips = rng.random(bits.shape) < self._probability_per_bit
        return np.bitwise_xor(bits, flips.astype(np.uint8))


class StuckAtFaultModel:
    """Permanently stuck cells (stuck-at-0 / stuck-at-1).

    Stuck-at faults are not part of the BEER methodology itself but are the
    canonical example of "another error mechanism" that BEEP could be extended
    towards (paper Section 7.1.5); they are used in tests to confirm that such
    faults do *not* masquerade as retention behaviour.
    """

    def __init__(
        self,
        stuck_fraction: float = 0.0,
        stuck_value: int = 0,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
    ):
        if not 0 <= stuck_fraction <= 1:
            raise ChipConfigurationError("stuck fraction must be in [0, 1]")
        if stuck_value not in (0, 1):
            raise ChipConfigurationError("stuck value must be 0 or 1")
        if rng is not None and seed is not None:
            raise ChipConfigurationError("pass either rng or seed, not both")
        self._stuck_fraction = stuck_fraction
        self._stuck_value = stuck_value
        # ``seed`` derives each shape's mask independently of the order shapes
        # are encountered (and of process boundaries); ``rng`` keeps the
        # legacy sequential-stream behaviour.
        self._seed = seed
        self._rng = rng if rng is not None else np.random.default_rng(0)
        # Keyed by batch shape: stuck cells are permanent, so every shape's
        # mask must survive interleaved calls with other shapes.
        self._mask_cache: Dict[Tuple[int, ...], np.ndarray] = {}

    @property
    def stuck_fraction(self) -> float:
        """Fraction of cells that are permanently stuck."""
        return self._stuck_fraction

    def _mask_for_shape(self, shape: Tuple[int, ...]) -> np.ndarray:
        key = tuple(shape)
        if key not in self._mask_cache:
            if self._seed is not None:
                generator = np.random.default_rng([self._seed, *key])
            else:
                generator = self._rng
            self._mask_cache[key] = generator.random(shape) < self._stuck_fraction
        return self._mask_cache[key]

    def corrupt(self, bits: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Return a copy of ``bits`` with stuck cells forced to the stuck value."""
        del rng  # stuck-at faults are permanent; the mask is fixed per model
        bits = np.asarray(bits, dtype=np.uint8).copy()
        if self._stuck_fraction == 0:
            return bits
        mask = self._mask_for_shape(bits.shape)
        bits[mask] = self._stuck_value
        return bits
