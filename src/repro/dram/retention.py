"""Data-retention error model.

The model captures the three experimentally established properties that BEER
relies on (paper Section 3.2):

1. retention errors are easily induced and controlled by lengthening the
   refresh window and raising temperature;
2. they are repeatable and uniformly distributed in space;
3. they fail unidirectionally from CHARGED to DISCHARGED.

Each cell is assigned a fixed *retention time*: the longest refresh window it
can tolerate at the reference temperature before losing its charge.  Retention
times are drawn from a lognormal distribution calibrated so that the chip-wide
raw bit error rate (BER) spans the range the paper reports for its refresh
sweeps (≈1e-7 at a 2-minute window up to ≈1e-3 at 22 minutes, at 80 °C).
Temperature acceleration follows the usual "retention halves every ~10 °C"
rule of thumb used throughout the DRAM retention literature.
"""

from __future__ import annotations

from repro.exceptions import ValidationError
import math
from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.stats import norm


#: Reference temperature (°C) at which retention times are specified.
REFERENCE_TEMPERATURE_C = 80.0

#: Temperature increase (°C) that halves every cell's retention time.
TEMPERATURE_HALVING_C = 10.0


@dataclass(frozen=True)
class RetentionCalibration:
    """Two-point calibration of the chip-wide retention-time distribution.

    The distribution is lognormal; the calibration pins the cumulative failure
    probability (raw BER) at two refresh windows, both at the reference
    temperature.  Defaults follow the paper's experimental observations.
    """

    window_low_s: float = 120.0
    ber_low: float = 1e-7
    window_high_s: float = 1320.0
    ber_high: float = 1e-3

    def lognormal_parameters(self) -> tuple:
        """Return ``(mu, sigma)`` of ``ln(retention time)`` for this calibration."""
        if not 0 < self.ber_low < self.ber_high < 1:
            raise ValidationError("calibration BERs must satisfy 0 < low < high < 1")
        if not 0 < self.window_low_s < self.window_high_s:
            raise ValidationError("calibration windows must satisfy 0 < low < high")
        z_low = float(norm.ppf(self.ber_low))
        z_high = float(norm.ppf(self.ber_high))
        log_low = math.log(self.window_low_s)
        log_high = math.log(self.window_high_s)
        sigma = (log_high - log_low) / (z_high - z_low)
        mu = log_low - sigma * z_low
        return mu, sigma


class DataRetentionModel:
    """Per-cell retention times plus window/temperature failure evaluation."""

    def __init__(
        self,
        calibration: Optional[RetentionCalibration] = None,
        reference_temperature_c: float = REFERENCE_TEMPERATURE_C,
        temperature_halving_c: float = TEMPERATURE_HALVING_C,
    ):
        self._calibration = calibration if calibration is not None else RetentionCalibration()
        self._mu, self._sigma = self._calibration.lognormal_parameters()
        self._reference_temperature_c = reference_temperature_c
        self._temperature_halving_c = temperature_halving_c

    @property
    def calibration(self) -> RetentionCalibration:
        """The two-point calibration used to build the distribution."""
        return self._calibration

    # -- population-level statistics ---------------------------------------
    def effective_window(self, refresh_window_s: float, temperature_c: float) -> float:
        """Return the reference-temperature window equivalent to the given conditions.

        Raising the temperature by ``temperature_halving_c`` degrees doubles
        the effective window (i.e. halves every retention time).
        """
        if refresh_window_s < 0:
            raise ValidationError("refresh window must be non-negative")
        exponent = (temperature_c - self._reference_temperature_c) / self._temperature_halving_c
        return refresh_window_s * (2.0 ** exponent)

    def failure_probability(self, refresh_window_s: float, temperature_c: float) -> float:
        """Return the probability that a uniformly chosen cell fails.

        This is the expected raw bit error rate among CHARGED cells for a
        refresh pause of the given length at the given temperature.
        """
        window = self.effective_window(refresh_window_s, temperature_c)
        if window <= 0:
            return 0.0
        z_score = (math.log(window) - self._mu) / self._sigma
        return float(norm.cdf(z_score))

    def window_for_failure_probability(
        self, target_ber: float, temperature_c: float
    ) -> float:
        """Return the refresh window that produces ``target_ber`` at ``temperature_c``."""
        if not 0 < target_ber < 1:
            raise ValidationError("target BER must lie strictly between 0 and 1")
        z_score = float(norm.ppf(target_ber))
        window_at_reference = math.exp(self._mu + z_score * self._sigma)
        exponent = (temperature_c - self._reference_temperature_c) / self._temperature_halving_c
        return window_at_reference / (2.0 ** exponent)

    # -- per-cell sampling ---------------------------------------------------
    def sample_retention_times(
        self, num_cells: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw one retention time (seconds at reference temperature) per cell.

        The draws are what make a simulated chip's retention errors repeatable:
        the chip keeps the sampled array for its lifetime and re-evaluates it
        against each refresh pause.
        """
        if num_cells < 0:
            raise ValidationError("number of cells must be non-negative")
        return np.exp(rng.normal(self._mu, self._sigma, size=num_cells))

    def cells_failing(
        self,
        retention_times_s: np.ndarray,
        refresh_window_s: float,
        temperature_c: float,
    ) -> np.ndarray:
        """Return a boolean mask of cells whose retention time is exceeded."""
        window = self.effective_window(refresh_window_s, temperature_c)
        return np.asarray(retention_times_s) < window
