"""k-CHARGED test patterns.

BEER writes *k-CHARGED* patterns: datawords in which exactly ``k`` data bits
are placed in the CHARGED state and every other data bit is DISCHARGED
(Section 4.2.3).  Because data-retention errors only discharge CHARGED cells,
the pattern pins down exactly which pre-correction errors can occur, and any
post-correction error observed in a DISCHARGED data bit is unambiguously a
miscorrection.

A :class:`ChargedPattern` is defined in terms of charge states rather than
data values so that it translates correctly to both true-cell and anti-cell
regions.
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, Iterable, Iterator, List, Sequence

from repro.exceptions import ProfileError
from repro.gf2 import GF2Vector
from repro.dram.cell import CellType


class ChargedPattern:
    """A dataword test pattern expressed as the set of CHARGED data bits."""

    __slots__ = ("_num_data_bits", "_charged_bits")

    def __init__(self, num_data_bits: int, charged_bits: Iterable[int]):
        if num_data_bits < 1:
            raise ProfileError("a pattern needs at least one data bit")
        charged = frozenset(int(b) for b in charged_bits)
        for bit in sorted(charged):
            if not 0 <= bit < num_data_bits:
                raise ProfileError(
                    f"charged bit {bit} out of range for a {num_data_bits}-bit dataword"
                )
        self._num_data_bits = num_data_bits
        self._charged_bits = charged

    # -- accessors ---------------------------------------------------------
    @property
    def num_data_bits(self) -> int:
        """Dataword length the pattern applies to."""
        return self._num_data_bits

    @property
    def charged_bits(self) -> FrozenSet[int]:
        """Indices of the data bits placed in the CHARGED state."""
        return self._charged_bits

    @property
    def discharged_bits(self) -> FrozenSet[int]:
        """Indices of the data bits placed in the DISCHARGED state."""
        return frozenset(range(self._num_data_bits)) - self._charged_bits

    @property
    def weight(self) -> int:
        """Number of CHARGED data bits (the ``k`` in k-CHARGED)."""
        return len(self._charged_bits)

    # -- conversion to data values ------------------------------------------
    def dataword(self, cell_type: CellType = CellType.TRUE_CELL) -> GF2Vector:
        """Return the dataword that realises this charge pattern for ``cell_type``.

        True-cells store 1 when CHARGED, anti-cells store 0 when CHARGED.
        """
        if cell_type is CellType.TRUE_CELL:
            bits = [1 if i in self._charged_bits else 0 for i in range(self._num_data_bits)]
        else:
            bits = [0 if i in self._charged_bits else 1 for i in range(self._num_data_bits)]
        return GF2Vector(bits)

    @classmethod
    def from_dataword(
        cls, dataword: GF2Vector, cell_type: CellType = CellType.TRUE_CELL
    ) -> "ChargedPattern":
        """Recover the charge pattern realised by ``dataword`` under ``cell_type``."""
        word = dataword if isinstance(dataword, GF2Vector) else GF2Vector(dataword)
        if cell_type is CellType.TRUE_CELL:
            charged = [i for i, bit in enumerate(word) if bit == 1]
        else:
            charged = [i for i, bit in enumerate(word) if bit == 0]
        return cls(len(word), charged)

    # -- protocol methods ---------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, ChargedPattern):
            return NotImplemented
        return (
            self._num_data_bits == other._num_data_bits
            and self._charged_bits == other._charged_bits
        )

    def __hash__(self) -> int:
        return hash((self._num_data_bits, self._charged_bits))

    def __repr__(self) -> str:
        charged = ",".join(str(b) for b in sorted(self._charged_bits))
        return f"ChargedPattern(k={self._num_data_bits}, charged=[{charged}])"


def one_charged_patterns(num_data_bits: int) -> List[ChargedPattern]:
    """Return all ``k`` 1-CHARGED patterns for a ``k``-bit dataword."""
    return list(charged_patterns(num_data_bits, [1]))


def charged_patterns(
    num_data_bits: int, weights: Sequence[int]
) -> Iterator[ChargedPattern]:
    """Yield every pattern whose CHARGED-bit count is in ``weights``.

    For example ``weights=[1, 2]`` yields the {1,2}-CHARGED pattern set the
    paper shows is sufficient to uniquely identify shortened codes.
    """
    for weight in weights:
        if weight < 0 or weight > num_data_bits:
            raise ProfileError(
                f"pattern weight {weight} impossible for a {num_data_bits}-bit dataword"
            )
    for weight in weights:
        for combination in itertools.combinations(range(num_data_bits), weight):
            yield ChargedPattern(num_data_bits, combination)


def pattern_count(num_data_bits: int, weights: Sequence[int]) -> int:
    """Return the number of patterns ``charged_patterns`` would yield."""
    import math

    total = 0
    for weight in weights:
        if weight < 0 or weight > num_data_bits:
            raise ProfileError(
                f"pattern weight {weight} impossible for a {num_data_bits}-bit dataword"
            )
        total += math.comb(num_data_bits, weight)
    return total
