"""Baseline: reverse engineering an ECC function with direct syndrome access.

Section 4.1 of the paper describes the prior-work approach (Cojocar et al.)
for *rank-level* ECC, where the memory controller reports error-correction
events: inject a single-bit error at each codeword position and read off the
error syndrome — each syndrome is literally one column of the parity-check
matrix.

This baseline is included for two reasons:

* it is the comparison point that motivates BEER — the approach requires
  (1) writing raw codewords (including parity bits) and (2) observing the
  syndromes, and *neither* capability exists for on-die ECC;
* systems that do expose this interface (rank-level ECC test modes, FPGA
  memory controllers) can use it directly, and its output should agree with
  what BEER recovers from miscorrections alone.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import SolverError
from repro.gf2 import GF2Vector
from repro.ecc.code import SystematicLinearCode
from repro.ecc.decoder import SyndromeDecoder


class RankLevelEccInterface:
    """A memory-controller-style ECC interface that exposes correction metadata.

    The interface wraps a known code (the simulated controller's ECC) and
    mimics what a test engineer with controller cooperation can do:

    * write an arbitrary *raw codeword* (parity bits included) to a location,
    * read it back through the decoder,
    * observe the reported error syndrome and corrected bit position.

    On-die ECC offers none of these hooks, which is exactly why BEER exists.
    """

    def __init__(self, code: SystematicLinearCode, noise_probability: float = 0.0,
                 rng: Optional[np.random.Generator] = None):
        if not 0.0 <= noise_probability <= 1.0:
            raise SolverError("noise probability must lie in [0, 1]")
        self._code = code
        self._decoder = SyndromeDecoder(code)
        self._noise_probability = noise_probability
        self._rng = rng if rng is not None else np.random.default_rng(0)

    @property
    def codeword_length(self) -> int:
        """Total codeword length (data + parity) accepted by the interface."""
        return self._code.codeword_length

    @property
    def num_data_bits(self) -> int:
        """Number of data bits per codeword."""
        return self._code.num_data_bits

    def encode(self, dataword: GF2Vector) -> GF2Vector:
        """Encode a dataword exactly as the controller would."""
        return self._code.encode(dataword)

    def inject_and_report(self, codeword: GF2Vector, error_positions) -> GF2Vector:
        """Write ``codeword`` with errors injected, decode, and report the syndrome."""
        word = codeword if isinstance(codeword, GF2Vector) else GF2Vector(codeword)
        corrupted = word
        for position in error_positions:
            corrupted = corrupted.flip(position)
        if self._noise_probability > 0:
            for position in range(self._code.codeword_length):
                if self._rng.random() < self._noise_probability:
                    corrupted = corrupted.flip(position)
        return self._decoder.decode(corrupted).syndrome


def reverse_engineer_with_syndromes(
    interface: RankLevelEccInterface,
    trials_per_position: int = 1,
) -> SystematicLinearCode:
    """Recover the parity-check matrix by injecting 1-hot errors (Section 4.1).

    Each single-bit error's reported syndrome is the corresponding column of
    ``H``; with ``trials_per_position > 1`` a majority vote over repeated
    injections tolerates occasional interface noise.
    """
    if trials_per_position < 1:
        raise SolverError("at least one trial per position is required")
    zero_dataword = GF2Vector.zeros(interface.num_data_bits)
    base_codeword = interface.encode(zero_dataword)

    columns = []
    for position in range(interface.codeword_length):
        votes = {}
        for _ in range(trials_per_position):
            syndrome = interface.inject_and_report(base_codeword, [position])
            key = syndrome.to_int()
            votes[key] = votes.get(key, 0) + 1
        winner = max(votes, key=votes.get)
        if winner == 0:
            raise SolverError(
                f"position {position} reported a zero syndrome; the interface "
                "does not behave like a single-error-correcting code"
            )
        columns.append(winner)

    num_parity_bits = interface.codeword_length - interface.num_data_bits
    parity_columns = columns[: interface.num_data_bits]
    identity_columns = columns[interface.num_data_bits :]
    expected_identity = [1 << row for row in range(num_parity_bits)]
    if identity_columns != expected_identity:
        # The interface's parity ordering differs from standard form; remap the
        # syndrome bit order so the recovered matrix is reported in standard form.
        remap = {value: row for row, value in enumerate(identity_columns)}
        if set(identity_columns) != set(expected_identity):
            raise SolverError(
                "parity-bit syndromes are not unit vectors; cannot normalise to "
                "standard form"
            )
        parity_columns = [_remap_bits(column, remap) for column in parity_columns]
    return SystematicLinearCode.from_parity_columns(parity_columns, num_parity_bits)


def _remap_bits(column: int, remap: dict) -> int:
    """Permute syndrome bits so parity position ``i`` maps to unit vector ``e_i``."""
    result = 0
    for source_value, target_row in remap.items():
        source_row = source_value.bit_length() - 1
        if (column >> source_row) & 1:
            result |= 1 << target_row
    return result


def syndromes_match_code(
    interface: RankLevelEccInterface, code: SystematicLinearCode
) -> bool:
    """Check that a candidate code (e.g. recovered by BEER) matches the interface."""
    if code.codeword_length != interface.codeword_length:
        return False
    recovered = reverse_engineer_with_syndromes(interface)
    return recovered == code or _codes_equal_up_to_parity_order(recovered, code)


def _codes_equal_up_to_parity_order(
    first: SystematicLinearCode, second: SystematicLinearCode
) -> bool:
    from repro.ecc.codespace import codes_equivalent

    return codes_equivalent(first, second)
