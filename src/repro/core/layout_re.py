"""Reverse engineering of cell encodings and ECC dataword layout.

Before BEER can craft k-CHARGED patterns it must know (paper Section 5.1):

* **which cells are true-cells and which are anti-cells** (Section 5.1.1) —
  discovered by writing all-ones and all-zeros patterns, pausing refresh long
  enough to induce retention errors, and observing which rows fail under
  which pattern (true-cells fail when storing 1, anti-cells when storing 0);
* **which addresses share an ECC dataword** (Section 5.1.2) — discovered by
  charging a single byte per region, inducing uncorrectable errors, and
  observing that miscorrections stay confined to the bytes of the same ECC
  word.

Both procedures treat the chip as a black box: they only write, pause refresh
and read, exactly like the paper's experiments on real hardware.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.dram.cell import CellType
from repro.dram.chip import SimulatedDramChip
from repro.gf2 import GF2Vector


def discover_cell_types(
    chip: SimulatedDramChip,
    refresh_pause_s: float = 1800.0,
    temperature_c: float = 80.0,
) -> Dict[int, CellType]:
    """Determine each row's cell encoding (true- vs anti-cell).

    Writes the all-ones pattern (only CHARGED true-cells can fail), then the
    all-zeros pattern (only CHARGED anti-cells can fail), pausing refresh for
    ``refresh_pause_s`` each time, and classifies each row by which pattern
    produced data-retention errors.  Rows that never fail are reported as
    true-cells (the common default), matching how a real experiment would treat
    inconclusive rows until longer pauses are tested.
    """
    ones_errors = _row_error_counts(chip, GF2Vector.ones(chip.num_data_bits), refresh_pause_s, temperature_c)
    zeros_errors = _row_error_counts(chip, GF2Vector.zeros(chip.num_data_bits), refresh_pause_s, temperature_c)

    classification: Dict[int, CellType] = {}
    for row in range(chip.geometry.num_rows):
        if zeros_errors[row] > ones_errors[row]:
            classification[row] = CellType.ANTI_CELL
        else:
            classification[row] = CellType.TRUE_CELL
    return classification


def _row_error_counts(
    chip: SimulatedDramChip,
    dataword: GF2Vector,
    refresh_pause_s: float,
    temperature_c: float,
) -> np.ndarray:
    chip.fill(dataword)
    chip.pause_refresh(refresh_pause_s, temperature_c)
    observed = chip.read_all_datawords()
    expected = np.tile(dataword.to_numpy(), (chip.num_words, 1))
    per_word_errors = (observed != expected).sum(axis=1)
    counts = np.zeros(chip.geometry.num_rows, dtype=np.int64)
    for word_index, errors in enumerate(per_word_errors):
        counts[chip.row_of_word(word_index)] += int(errors)
    return counts


def discover_dataword_layout(
    chip: SimulatedDramChip,
    region_bytes: Optional[int] = None,
    refresh_pause_s: float = 1800.0,
    temperature_c: float = 80.0,
    regions_to_test: Optional[Sequence[int]] = None,
    cell_types: Optional[Dict[int, CellType]] = None,
) -> List[List[int]]:
    """Group the byte offsets of an addressing region into ECC datawords.

    For every byte offset within a region, the procedure charges only that
    byte while every other byte in the region stays DISCHARGED, induces
    retention errors, and records which byte offsets exhibit errors.
    Miscorrections can only land inside the same ECC word as the charged byte,
    so offsets that co-fail across trials belong together.  The result is a
    partition of ``range(region_bytes)`` into ECC-word groups.

    ``cell_types`` (as produced by :func:`discover_cell_types`) selects the
    correct CHARGED byte value per row — 0xFF for true-cell rows, 0x00 for
    anti-cell rows.  Without it every row is assumed to use true-cells.
    """
    layout = chip.word_layout
    if region_bytes is None:
        region_bytes = layout.region_bytes if layout is not None else chip.row_size_bytes
    num_regions_on_chip = (chip.num_words * (chip.num_data_bits // 8)) // region_bytes
    if regions_to_test is None:
        regions_to_test = range(num_regions_on_chip)
    row_size_bytes = chip.row_size_bytes

    affinity = defaultdict(set)
    for offset in range(region_bytes):
        for region in regions_to_test:
            base = region * region_bytes
            row = base // row_size_bytes
            cell_type = (cell_types or {}).get(row, CellType.TRUE_CELL)
            charged_byte = 0xFF if cell_type is CellType.TRUE_CELL else 0x00
            discharged_byte = 0xFF ^ charged_byte
            payload = bytearray([discharged_byte] * region_bytes)
            payload[offset] = charged_byte
            chip.write_bytes(base, bytes(payload))
            chip.pause_refresh(refresh_pause_s, temperature_c)
            observed = chip.read_bytes(base, region_bytes)
            for other_offset, value in enumerate(observed):
                expected = charged_byte if other_offset == offset else discharged_byte
                if value != expected:
                    affinity[offset].add(other_offset)
                    affinity[other_offset].add(offset)

    return _connected_components(region_bytes, affinity)


def _connected_components(size: int, affinity: Dict[int, set]) -> List[List[int]]:
    """Group offsets into connected components of the co-failure graph."""
    visited = set()
    groups: List[List[int]] = []
    for start in range(size):
        if start in visited:
            continue
        stack = [start]
        component = []
        while stack:
            node = stack.pop()
            if node in visited:
                continue
            visited.add(node)
            component.append(node)
            stack.extend(affinity.get(node, ()))
        groups.append(sorted(component))
    return groups


def estimate_dataword_bits(layout_groups: Sequence[Sequence[int]]) -> int:
    """Infer the ECC dataword length in bits from discovered byte groups."""
    sizes = {len(group) for group in layout_groups}
    if len(sizes) != 1:
        # Ambiguous grouping (some words never showed co-failures); report the
        # largest consistent group, which is the best available estimate.
        return max(sizes) * 8
    return sizes.pop() * 8
