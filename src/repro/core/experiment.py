"""End-to-end BEER experimental campaign against a (simulated) DRAM chip.

This module glues the pieces of Section 5 together, treating the chip as a
black box that only supports write / pause-refresh / read:

1. (optionally) discover each row's cell encoding (Section 5.1.1);
2. write every k-CHARGED test pattern to a rotating set of ECC words, sweep
   the refresh window, and record which DISCHARGED data bits exhibit
   post-correction errors (Section 5.1.3);
3. apply the threshold filter to the resulting counts (Section 5.2);
4. run the BEER solver on the miscorrection profile and, if requested, check
   the solution's uniqueness (Section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ChipConfigurationError
from repro.dram.cell import CellType
from repro.dram.chip import SimulatedDramChip
from repro.ecc.hamming import min_parity_bits
from repro.core.beer import BeerSolution, BeerSolver
from repro.core.layout_re import discover_cell_types
from repro.core.patterns import ChargedPattern, charged_patterns
from repro.core.profile import MiscorrectionCounts, MiscorrectionProfile


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs of a BEER campaign (mirroring the paper's experimental sweep)."""

    #: Which k-CHARGED pattern weights to test ({1,2} suffices for shortened codes).
    pattern_weights: Tuple[int, ...] = (1, 2)
    #: Refresh windows (seconds) to sweep; longer windows induce more errors.
    refresh_windows_s: Tuple[float, ...] = (600.0, 1200.0, 1800.0)
    #: Ambient temperature during the refresh pauses.
    temperature_c: float = 80.0
    #: Number of write/pause/read rounds per window; the pattern-to-word
    #: assignment rotates between rounds so each pattern samples fresh cells.
    rounds_per_window: int = 4
    #: Threshold (per-word error probability) separating miscorrections from noise.
    threshold: float = 0.0
    #: Assumed number of parity bits (``None`` = minimum for the dataword length).
    num_parity_bits: Optional[int] = None
    #: Run the cell-type discovery step before the campaign.
    discover_cell_encoding: bool = True
    #: Refresh pause used for the cell-type discovery step.
    discovery_pause_s: float = 1800.0


@dataclass
class ExperimentResult:
    """Everything a BEER campaign produces."""

    counts: MiscorrectionCounts
    profile: MiscorrectionProfile
    solution: Optional[BeerSolution]
    cell_types: Dict[int, CellType] = field(default_factory=dict)

    @property
    def recovered_code(self):
        """The uniquely recovered ECC function (raises if not unique)."""
        if self.solution is None:
            raise ChipConfigurationError("the campaign was run with solving disabled")
        return self.solution.code


class BeerExperiment:
    """Runs the BEER methodology against a chip through its public interface."""

    def __init__(self, chip: SimulatedDramChip, config: Optional[ExperimentConfig] = None):
        self._chip = chip
        self._config = config if config is not None else ExperimentConfig()
        if chip.num_data_bits < 2:
            raise ChipConfigurationError("BEER needs at least two data bits per word")

    @property
    def chip(self) -> SimulatedDramChip:
        """The chip under test."""
        return self._chip

    @property
    def config(self) -> ExperimentConfig:
        """The campaign configuration."""
        return self._config

    # -- campaign steps -----------------------------------------------------------
    def discover_cell_types(self) -> Dict[int, CellType]:
        """Step 0: classify each row as true- or anti-cell (Section 5.1.1)."""
        return discover_cell_types(
            self._chip,
            refresh_pause_s=self._config.discovery_pause_s,
            temperature_c=self._config.temperature_c,
        )

    def measure_counts(
        self, cell_types: Optional[Dict[int, CellType]] = None
    ) -> MiscorrectionCounts:
        """Steps 1-2: run the pattern/refresh sweep and collect error counts."""
        num_data_bits = self._chip.num_data_bits
        patterns = list(charged_patterns(num_data_bits, list(self._config.pattern_weights)))
        counts = MiscorrectionCounts(num_data_bits)
        word_cell_types = self._cell_type_per_word(cell_types)
        # Like the paper's analysis, the campaign profiles the true-cell
        # regions; anti-cell rows would need the mirrored charge translation
        # inside the solver and are simply skipped here.
        eligible_words = [
            word_index
            for word_index in range(self._chip.num_words)
            if word_cell_types[word_index] is CellType.TRUE_CELL
        ]
        if not eligible_words:
            raise ChipConfigurationError(
                "no true-cell words available for the BEER campaign"
            )

        assignment_offset = 0
        for window in self._config.refresh_windows_s:
            for _ in range(self._config.rounds_per_window):
                assignment = self._assign_patterns_to_words(
                    patterns, eligible_words, assignment_offset
                )
                assignment_offset += 1
                self._write_assignment(assignment, word_cell_types)
                self._chip.pause_refresh(window, self._config.temperature_c)
                self._collect_observations(assignment, word_cell_types, counts)
        return counts

    def run(self, solve: bool = True, max_solutions: Optional[int] = None) -> ExperimentResult:
        """Run the full campaign and (optionally) solve for the ECC function."""
        cell_types: Dict[int, CellType] = {}
        if self._config.discover_cell_encoding:
            cell_types = self.discover_cell_types()
        counts = self.measure_counts(cell_types if cell_types else None)
        profile = counts.to_profile(self._config.threshold)
        solution = None
        if solve:
            solver = BeerSolver(
                self._chip.num_data_bits,
                self._config.num_parity_bits
                if self._config.num_parity_bits is not None
                else min_parity_bits(self._chip.num_data_bits),
            )
            solution = solver.solve(profile, max_solutions=max_solutions)
        return ExperimentResult(
            counts=counts, profile=profile, solution=solution, cell_types=cell_types
        )

    # -- helpers --------------------------------------------------------------------
    def _cell_type_per_word(
        self, cell_types: Optional[Dict[int, CellType]]
    ) -> List[CellType]:
        per_word = []
        for word_index in range(self._chip.num_words):
            row = self._chip.row_of_word(word_index)
            if cell_types is not None and row in cell_types:
                per_word.append(cell_types[row])
            else:
                per_word.append(CellType.TRUE_CELL)
        return per_word

    @staticmethod
    def _assign_patterns_to_words(
        patterns: Sequence[ChargedPattern],
        eligible_words: Sequence[int],
        offset: int,
    ) -> Dict[int, ChargedPattern]:
        """Round-robin pattern assignment, rotated by ``offset`` between rounds."""
        assignment = {}
        num_patterns = len(patterns)
        for position, word_index in enumerate(eligible_words):
            assignment[word_index] = patterns[(position + offset) % num_patterns]
        return assignment

    def _write_assignment(
        self,
        assignment: Dict[int, ChargedPattern],
        word_cell_types: Sequence[CellType],
    ) -> None:
        indices = sorted(assignment)
        datawords = np.vstack(
            [
                assignment[word_index].dataword(word_cell_types[word_index]).to_numpy()
                for word_index in indices
            ]
        )
        self._chip.write_datawords(indices, datawords)

    def _collect_observations(
        self,
        assignment: Dict[int, ChargedPattern],
        word_cell_types: Sequence[CellType],
        counts: MiscorrectionCounts,
    ) -> None:
        indices = sorted(assignment)
        observed = self._chip.read_datawords(indices)
        words_per_pattern: Dict[ChargedPattern, int] = {}
        errors_per_pattern: Dict[ChargedPattern, List[int]] = {}
        for row_index, word_index in enumerate(indices):
            pattern = assignment[word_index]
            expected = pattern.dataword(word_cell_types[word_index]).to_numpy()
            error_positions = np.flatnonzero(observed[row_index] != expected)
            words_per_pattern[pattern] = words_per_pattern.get(pattern, 0) + 1
            errors_per_pattern.setdefault(pattern, []).extend(
                int(p) for p in error_positions
            )
        for pattern, words_observed in words_per_pattern.items():
            counts.record_observations(
                pattern, errors_per_pattern.get(pattern, []), words_observed
            )
