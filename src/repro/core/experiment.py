"""End-to-end BEER experimental campaign against a (simulated) DRAM chip.

This module glues the pieces of Section 5 together, treating the chip as a
black box that only supports write / pause-refresh / read:

1. (optionally) discover each row's cell encoding (Section 5.1.1);
2. write every k-CHARGED test pattern to a rotating set of ECC words, sweep
   the refresh window, and record which DISCHARGED data bits exhibit
   post-correction errors (Section 5.1.3);
3. apply the threshold filter to the resulting counts (Section 5.2);
4. run the BEER solver on the miscorrection profile and, if requested, check
   the solution's uniqueness (Section 5.3).
"""

from __future__ import annotations

import functools
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ChipConfigurationError
from repro.dram.cell import CellType
from repro.dram.chip import SimulatedDramChip
from repro.ecc.code import SystematicLinearCode
from repro.ecc.hamming import min_parity_bits
from repro.einsim.engine import resolve_backend
from repro.einsim.simulator import EinsimSimulator, SimulationResult
from repro.core.beer import BeerSolution, BeerSolver
from repro.core.layout_re import discover_cell_types
from repro.core.patterns import ChargedPattern, charged_patterns
from repro.core.profile import MiscorrectionCounts, MiscorrectionProfile


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs of a BEER campaign (mirroring the paper's experimental sweep)."""

    #: Which k-CHARGED pattern weights to test ({1,2} suffices for shortened codes).
    pattern_weights: Tuple[int, ...] = (1, 2)
    #: Refresh windows (seconds) to sweep; longer windows induce more errors.
    refresh_windows_s: Tuple[float, ...] = (600.0, 1200.0, 1800.0)
    #: Ambient temperature during the refresh pauses.
    temperature_c: float = 80.0
    #: Number of write/pause/read rounds per window; the pattern-to-word
    #: assignment rotates between rounds so each pattern samples fresh cells.
    rounds_per_window: int = 4
    #: Threshold (per-word error probability) separating miscorrections from noise.
    threshold: float = 0.0
    #: Assumed number of parity bits (``None`` = minimum for the dataword length).
    num_parity_bits: Optional[int] = None
    #: Run the cell-type discovery step before the campaign.
    discover_cell_encoding: bool = True
    #: Refresh pause used for the cell-type discovery step.
    discovery_pause_s: float = 1800.0


@dataclass
class ExperimentResult:
    """Everything a BEER campaign produces."""

    counts: MiscorrectionCounts
    profile: MiscorrectionProfile
    solution: Optional[BeerSolution]
    cell_types: Dict[int, CellType] = field(default_factory=dict)

    @property
    def recovered_code(self):
        """The uniquely recovered ECC function (raises if not unique)."""
        if self.solution is None:
            raise ChipConfigurationError("the campaign was run with solving disabled")
        return self.solution.code


class BeerExperiment:
    """Runs the BEER methodology against a chip through its public interface."""

    def __init__(self, chip: SimulatedDramChip, config: Optional[ExperimentConfig] = None):
        self._chip = chip
        self._config = config if config is not None else ExperimentConfig()
        if chip.num_data_bits < 2:
            raise ChipConfigurationError("BEER needs at least two data bits per word")

    @property
    def chip(self) -> SimulatedDramChip:
        """The chip under test."""
        return self._chip

    @property
    def config(self) -> ExperimentConfig:
        """The campaign configuration."""
        return self._config

    # -- campaign steps -----------------------------------------------------------
    def discover_cell_types(self) -> Dict[int, CellType]:
        """Step 0: classify each row as true- or anti-cell (Section 5.1.1)."""
        return discover_cell_types(
            self._chip,
            refresh_pause_s=self._config.discovery_pause_s,
            temperature_c=self._config.temperature_c,
        )

    def measure_counts(
        self, cell_types: Optional[Dict[int, CellType]] = None
    ) -> MiscorrectionCounts:
        """Steps 1-2: run the pattern/refresh sweep and collect error counts."""
        num_data_bits = self._chip.num_data_bits
        patterns = list(charged_patterns(num_data_bits, list(self._config.pattern_weights)))
        counts = MiscorrectionCounts(num_data_bits)
        word_cell_types = self._cell_type_per_word(cell_types)
        # Like the paper's analysis, the campaign profiles the true-cell
        # regions; anti-cell rows would need the mirrored charge translation
        # inside the solver and are simply skipped here.
        eligible_words = [
            word_index
            for word_index in range(self._chip.num_words)
            if word_cell_types[word_index] is CellType.TRUE_CELL
        ]
        if not eligible_words:
            raise ChipConfigurationError(
                "no true-cell words available for the BEER campaign"
            )

        assignment_offset = 0
        for window in self._config.refresh_windows_s:
            for _ in range(self._config.rounds_per_window):
                assignment = self._assign_patterns_to_words(
                    patterns, eligible_words, assignment_offset
                )
                assignment_offset += 1
                self._write_assignment(assignment, word_cell_types)
                self._chip.pause_refresh(window, self._config.temperature_c)
                self._collect_observations(assignment, word_cell_types, counts)
        return counts

    def run(self, solve: bool = True, max_solutions: Optional[int] = None) -> ExperimentResult:
        """Run the full campaign and (optionally) solve for the ECC function."""
        cell_types: Dict[int, CellType] = {}
        if self._config.discover_cell_encoding:
            cell_types = self.discover_cell_types()
        counts = self.measure_counts(cell_types if cell_types else None)
        profile = counts.to_profile(self._config.threshold)
        solution = None
        if solve:
            solver = BeerSolver(
                self._chip.num_data_bits,
                self._config.num_parity_bits
                if self._config.num_parity_bits is not None
                else min_parity_bits(self._chip.num_data_bits),
            )
            solution = solver.solve(profile, max_solutions=max_solutions)
        return ExperimentResult(
            counts=counts, profile=profile, solution=solution, cell_types=cell_types
        )

    # -- helpers --------------------------------------------------------------------
    def _cell_type_per_word(
        self, cell_types: Optional[Dict[int, CellType]]
    ) -> List[CellType]:
        per_word = []
        for word_index in range(self._chip.num_words):
            row = self._chip.row_of_word(word_index)
            if cell_types is not None and row in cell_types:
                per_word.append(cell_types[row])
            else:
                per_word.append(CellType.TRUE_CELL)
        return per_word

    @staticmethod
    def _assign_patterns_to_words(
        patterns: Sequence[ChargedPattern],
        eligible_words: Sequence[int],
        offset: int,
    ) -> Dict[int, ChargedPattern]:
        """Round-robin pattern assignment, rotated by ``offset`` between rounds."""
        assignment = {}
        num_patterns = len(patterns)
        for position, word_index in enumerate(eligible_words):
            assignment[word_index] = patterns[(position + offset) % num_patterns]
        return assignment

    def _write_assignment(
        self,
        assignment: Dict[int, ChargedPattern],
        word_cell_types: Sequence[CellType],
    ) -> None:
        indices = sorted(assignment)
        datawords = np.vstack(
            [
                assignment[word_index].dataword(word_cell_types[word_index]).to_numpy()
                for word_index in indices
            ]
        )
        self._chip.write_datawords(indices, datawords)

    def _collect_observations(
        self,
        assignment: Dict[int, ChargedPattern],
        word_cell_types: Sequence[CellType],
        counts: MiscorrectionCounts,
    ) -> None:
        indices = sorted(assignment)
        observed = self._chip.read_datawords(indices)
        words_per_pattern: Dict[ChargedPattern, int] = {}
        errors_per_pattern: Dict[ChargedPattern, List[int]] = {}
        for row_index, word_index in enumerate(indices):
            pattern = assignment[word_index]
            expected = pattern.dataword(word_cell_types[word_index]).to_numpy()
            error_positions = np.flatnonzero(observed[row_index] != expected)
            words_per_pattern[pattern] = words_per_pattern.get(pattern, 0) + 1
            errors_per_pattern.setdefault(pattern, []).extend(
                int(p) for p in error_positions
            )
        for pattern, words_observed in words_per_pattern.items():
            counts.record_observations(
                pattern, errors_per_pattern.get(pattern, []), words_observed
            )


# ---------------------------------------------------------------------------
# Chunked / multiprocessing Monte-Carlo campaign runner
# ---------------------------------------------------------------------------

#: Per-process cache of rebuilt codes so multiprocessing workers do not pay
#: the code-construction cost for every chunk they receive.  Keyed on the
#: full code identity including family tag and decode policy: a detect-only
#: code must never be rebuilt as a correcting one.
_WORKER_CODE_CACHE: Dict[
    Tuple[Tuple[int, ...], int, str, bool], SystematicLinearCode
] = {}


def _worker_code(
    parity_columns: Tuple[int, ...],
    num_parity_bits: int,
    family: str,
    detect_only: bool,
) -> SystematicLinearCode:
    key = (parity_columns, num_parity_bits, family, detect_only)
    if key not in _WORKER_CODE_CACHE:
        _WORKER_CODE_CACHE[key] = SystematicLinearCode.from_parity_columns(
            parity_columns, num_parity_bits, family=family, detect_only=detect_only
        )
    return _WORKER_CODE_CACHE[key]


def _run_simulation_chunk(job) -> SimulationResult:
    """Simulate one chunk of ECC words (module-level so it pickles cleanly)."""
    (parity_columns, num_parity_bits, family, detect_only, dataword_bits,
     injector, chunk_words, base_seed, dataword_value, chunk_index, backend) = job
    code = _worker_code(tuple(parity_columns), num_parity_bits, family, detect_only)
    # Seeding on (base_seed, dataword content, chunk within that dataword)
    # makes each dataword's result independent of its position in a batch, so
    # simulate_many(ds)[i] == simulate(ds[i]) for every batch composition.
    simulator = EinsimSimulator(
        code, seed=[base_seed, dataword_value, chunk_index], backend=backend
    )
    return simulator.simulate(np.asarray(dataword_bits, dtype=np.uint8), chunk_words, injector)


#: Inner draw size of the fused chunk runner — must equal the default
#: ``batch_size`` of :meth:`EinsimSimulator.simulate` so the per-chunk RNG
#: streams are consumed in exactly the same blocks as a per-chunk run.
_FUSED_SIM_BATCH = 65536

#: Buffered word count at which the fused chunk runner classifies its
#: accumulated mask batches (one segmented kernel call for many chunks).
_FUSED_FLUSH_WORDS = 1 << 17


def _run_fused_chunks(jobs) -> List[SimulationResult]:
    """Run a fused campaign's chunks with cross-chunk batched classification.

    Each chunk's packed error masks are drawn from that chunk's own RNG
    stream — the same blocks, in the same order, as
    ``EinsimSimulator(backend="fused")`` would draw — but classification is
    deferred: compatible mask batches accumulate until
    :data:`_FUSED_FLUSH_WORDS` words are buffered, then one segmented kernel
    call classifies them all.  Classification is deterministic, so the
    per-chunk results are bit-identical to running every chunk separately
    (and hence to the staged backends).
    """
    from repro.gf2 import GF2Vector
    from repro.einsim.engine import bulk_encode
    from repro.einsim.fused import (
        FusedStats,
        batches_compatible,
        concat_batches,
        get_kernel,
        packed_error_batch,
    )

    if not jobs:
        return []
    parity_columns, num_parity_bits, family, detect_only = jobs[0][:4]
    code = _worker_code(tuple(parity_columns), num_parity_bits, family, detect_only)
    kernel = get_kernel(code)
    stats = [
        FusedStats.zero(code.codeword_length, code.num_data_bits) for _ in jobs
    ]
    datawords: List[np.ndarray] = []
    codeword_cache: Dict[int, np.ndarray] = {}
    pending = []  # [(job_index, PackedErrorBatch)] awaiting one classify call
    pending_words = 0

    def flush() -> None:
        nonlocal pending, pending_words
        if not pending:
            return
        batch = concat_batches([entry for _, entry in pending])
        segments = kernel.classify_segments(
            batch, [entry.num_words for _, entry in pending]
        )
        for (job_index, _), segment in zip(pending, segments):
            stats[job_index] = stats[job_index].merge(segment)
        pending = []
        pending_words = 0

    for job_index, job in enumerate(jobs):
        (_, _, _, _, dataword_bits, injector, chunk_words,
         base_seed, dataword_value, chunk_index, _backend) = job
        bits = np.asarray(dataword_bits, dtype=np.uint8)
        datawords.append(bits)
        codeword = codeword_cache.get(dataword_value)
        if codeword is None:
            codeword = bulk_encode(code, bits.reshape(1, -1), "fused")[0]
            codeword_cache[dataword_value] = codeword
        rng = np.random.default_rng([base_seed, dataword_value, chunk_index])
        remaining = chunk_words
        while remaining > 0:
            draw = min(_FUSED_SIM_BATCH, remaining)
            remaining -= draw
            batch = packed_error_batch(injector, codeword, draw, rng)
            if pending and not batches_compatible(pending[0][1], batch):
                flush()
            pending.append((job_index, batch))
            pending_words += batch.num_words
            if pending_words >= _FUSED_FLUSH_WORDS:
                flush()
    flush()

    return [
        SimulationResult(
            dataword=GF2Vector(datawords[index]),
            num_words=chunk_stats.num_words,
            post_correction_error_counts=chunk_stats.post_correction_error_counts,
            pre_correction_error_counts=chunk_stats.pre_correction_error_counts,
            uncorrectable_words=chunk_stats.uncorrectable_words,
            miscorrected_words=chunk_stats.miscorrected_words,
            miscorrection_positions=chunk_stats.miscorrection_positions,
            detected_words=chunk_stats.detected_words,
        )
        for index, chunk_stats in enumerate(stats)
    ]


class MonteCarloCampaign:
    """Chunked — and optionally multiprocessing — EINSim campaign runner.

    Splits a large word count into fixed-size chunks, simulates each chunk
    with its own deterministic seed (derived from ``base_seed`` and the chunk
    index) and merges the per-chunk :class:`SimulationResult` objects.  For a
    fixed ``chunk_size`` the result is bit-identical regardless of the number
    of worker processes, and identical across the ``reference``, ``packed``
    and ``fused`` backends (the fused in-process runner additionally batches
    classification across chunks — see :func:`_run_fused_chunks`).

    Parameters
    ----------
    code:
        The ECC function under simulation.
    chunk_size:
        Number of ECC words simulated per chunk (also the batch size handed
        to the vectorised kernels).
    processes:
        ``1`` runs every chunk inline; larger values distribute the chunks
        over a :class:`~concurrent.futures.ProcessPoolExecutor`.
    backend:
        GF(2) kernel backend: ``"reference"``, ``"packed"``, ``"fused"`` or
        ``"auto"``.
    base_seed:
        Root seed for the per-chunk RNG streams.
    """

    def __init__(
        self,
        code: SystematicLinearCode,
        chunk_size: int = 65536,
        processes: int = 1,
        backend: str = "reference",
        base_seed: int = 0,
    ):
        if chunk_size < 1:
            raise ChipConfigurationError("chunk size must be at least one word")
        if processes < 1:
            raise ChipConfigurationError("at least one process is required")
        self._code = code
        self._chunk_size = int(chunk_size)
        self._processes = int(processes)
        self._backend = resolve_backend(backend)
        self._base_seed = int(base_seed)

    @property
    def code(self) -> SystematicLinearCode:
        """The code under simulation."""
        return self._code

    @property
    def backend(self) -> str:
        """The GF(2) kernel backend in use."""
        return self._backend

    def simulate(self, dataword, injector, num_words: int) -> SimulationResult:
        """Simulate ``num_words`` ECC words storing ``dataword``, in chunks."""
        results = self.simulate_many([dataword], injector, num_words)
        return results[0]

    def simulate_many(
        self, datawords: Sequence, injector, words_per_dataword: int
    ) -> List[SimulationResult]:
        """Simulate several datawords, ``words_per_dataword`` words each.

        Every (dataword, chunk) pair becomes one job; jobs are distributed
        over the worker pool (when ``processes > 1``) and the per-dataword
        results are merged in deterministic chunk order.  Chunk RNG streams
        are seeded from (base seed, dataword content, chunk index), so each
        dataword's result is independent of its position in the batch —
        ``simulate_many(ds, ...)[i]`` equals ``simulate(ds[i], ...)``.  The
        flip side: duplicate datawords in one batch receive identical RNG
        streams, not independent samples.
        """
        if words_per_dataword < 1:
            raise ChipConfigurationError("at least one word per dataword is required")
        jobs = []
        boundaries: List[Tuple[int, int]] = []
        parity_columns = tuple(self._code.parity_column_ints)
        num_parity_bits = self._code.num_parity_bits
        family = self._code.family_name
        detect_only = self._code.detect_only
        for dataword in datawords:
            bits = self._dataword_bits(dataword)
            # LSB-first integer encoding of the dataword, used as seed entropy.
            dataword_value = sum(bit << i for i, bit in enumerate(bits))
            start = len(jobs)
            remaining = words_per_dataword
            chunk_index = 0
            while remaining > 0:
                chunk_words = min(self._chunk_size, remaining)
                remaining -= chunk_words
                jobs.append(
                    (parity_columns, num_parity_bits, family, detect_only, bits,
                     injector, chunk_words, self._base_seed, dataword_value,
                     chunk_index, self._backend)
                )
                chunk_index += 1
            boundaries.append((start, len(jobs)))

        if self._processes == 1 or len(jobs) == 1:
            if self._backend == "fused":
                # Same per-chunk RNG streams, but masks from many chunks are
                # classified together in segmented kernel calls.
                chunk_results = _run_fused_chunks(jobs)
            else:
                chunk_results = [_run_simulation_chunk(job) for job in jobs]
        else:
            with ProcessPoolExecutor(max_workers=self._processes) as pool:
                chunk_results = list(pool.map(_run_simulation_chunk, jobs))

        return [
            functools.reduce(SimulationResult.merge, chunk_results[start:stop])
            for start, stop in boundaries
        ]

    def miscorrection_profile(
        self,
        patterns: Sequence[ChargedPattern],
        bit_error_rate: float,
        words_per_pattern: int,
        cell_type: CellType = CellType.TRUE_CELL,
    ) -> MiscorrectionProfile:
        """Measure a miscorrection profile with chunked data-retention runs.

        Convenience wrapper: simulates every pattern's dataword under a
        data-retention injector and records post-correction errors observed
        at DISCHARGED data bits, exactly like
        :func:`repro.core.profile.monte_carlo_miscorrection_profile` but
        through the chunked (and optionally parallel) campaign machinery.
        """
        from repro.einsim.injectors import DataRetentionInjector

        injector = DataRetentionInjector(bit_error_rate, cell_type)
        datawords = [pattern.dataword(cell_type) for pattern in patterns]
        results = self.simulate_many(datawords, injector, words_per_pattern)
        profile = MiscorrectionProfile(self._code.num_data_bits)
        for pattern, result in zip(patterns, results):
            discharged = pattern.discharged_bits
            observed = np.flatnonzero(result.post_correction_error_counts > 0)
            profile.record(
                pattern, [int(b) for b in observed if int(b) in discharged]
            )
        return profile

    def _dataword_bits(self, dataword) -> Tuple[int, ...]:
        from repro.gf2 import GF2Vector

        if isinstance(dataword, GF2Vector):
            return tuple(dataword.to_list())
        bits = np.asarray(dataword, dtype=np.uint8) % 2
        return tuple(int(b) for b in bits)
