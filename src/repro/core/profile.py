"""Miscorrection profiles.

A *miscorrection profile* (paper Section 5.1.3, Table 2) records, for every
test pattern, the DISCHARGED data-bit positions at which the on-die ECC can
be observed to "correct" a bit that never had an error — i.e. the positions
where miscorrections are possible.  The profile is all BEER needs to recover
the ECC function.

Two representations are provided:

* :class:`MiscorrectionCounts` — raw experimental observation counts per
  pattern and bit, from which a clean profile is obtained with the threshold
  filter of Section 5.2 / Figure 4.  Counts also track per-pattern
  *detected-uncorrectable* (DUE) word observations — zero for full-length
  SEC codes, but the primary signal for SEC-DED and detect-only families;
* :class:`MiscorrectionProfile` — the boolean profile itself.

For simulation and validation, :func:`miscorrections_possible` computes the
exact profile of a *known* code: with CHARGED codeword positions ``S``, a
miscorrection can appear at DISCHARGED data bit ``j`` iff column ``H_j`` lies
in the GF(2) span of ``{H_i : i in S}`` (all subsets of CHARGED cells can
fail, and subset sums over GF(2) are exactly the span).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.exceptions import ProfileError
from repro.gf2 import in_span
from repro.ecc.code import SystematicLinearCode
from repro.dram.cell import CellType, charge_state_for_bit, ChargeState
from repro.core.patterns import ChargedPattern


def charged_codeword_positions(
    code: SystematicLinearCode,
    pattern: ChargedPattern,
    cell_type: CellType = CellType.TRUE_CELL,
) -> FrozenSet[int]:
    """Return every codeword position stored in the CHARGED state for ``pattern``.

    The data positions are given directly by the pattern; the parity positions
    depend on the encoded parity values, which the ECC function determines.
    """
    if pattern.num_data_bits != code.num_data_bits:
        raise ProfileError(
            f"pattern is for {pattern.num_data_bits}-bit datawords, "
            f"code expects {code.num_data_bits}"
        )
    codeword = code.encode(pattern.dataword(cell_type))
    charged = set(pattern.charged_bits)
    for position in code.parity_bit_positions:
        state = charge_state_for_bit(cell_type, codeword[position])
        if state is ChargeState.CHARGED:
            charged.add(position)
    return frozenset(charged)


def miscorrections_possible(
    code: SystematicLinearCode,
    pattern: ChargedPattern,
    cell_type: CellType = CellType.TRUE_CELL,
) -> FrozenSet[int]:
    """Return the DISCHARGED data bits where ``code`` can miscorrect under ``pattern``."""
    charged = charged_codeword_positions(code, pattern, cell_type)
    spanning_columns = [code.column(position) for position in charged]
    possible = set()
    for target in pattern.discharged_bits:
        if in_span(code.column(target), spanning_columns):
            possible.add(target)
    return frozenset(possible)


def expected_miscorrection_profile(
    code: SystematicLinearCode,
    patterns: Iterable[ChargedPattern],
    cell_type: CellType = CellType.TRUE_CELL,
) -> "MiscorrectionProfile":
    """Compute the exact miscorrection profile of a known code (ground truth)."""
    mapping = {
        pattern: miscorrections_possible(code, pattern, cell_type)
        for pattern in patterns
    }
    return MiscorrectionProfile(code.num_data_bits, mapping)


def monte_carlo_miscorrection_profile(
    code: SystematicLinearCode,
    patterns: Iterable[ChargedPattern],
    bit_error_rate: float,
    words_per_pattern: int,
    cell_type: CellType = CellType.TRUE_CELL,
    rng: Optional[np.random.Generator] = None,
    backend: str = "reference",
) -> "MiscorrectionProfile":
    """Measure a miscorrection profile by Monte-Carlo simulation (EINSim-style).

    This mirrors the paper's correctness evaluation (Section 6.1): for every
    test pattern, many ECC words are simulated with data-retention errors at
    ``bit_error_rate`` (CHARGED cells only), and every post-correction error
    observed at a DISCHARGED data bit is recorded as a miscorrection.  With
    enough words per pattern the measured profile converges to the exact
    profile of :func:`expected_miscorrection_profile`.

    Thin wrapper over :func:`monte_carlo_observation_counts` (one shared
    simulation loop, identical rng draw order): the zero-threshold filter of
    :meth:`MiscorrectionCounts.to_profile` reproduces the historical
    any-occurrence-at-a-DISCHARGED-bit semantics exactly.
    """
    counts = monte_carlo_observation_counts(
        code,
        patterns,
        bit_error_rate,
        words_per_pattern,
        cell_type=cell_type,
        rng=rng,
        backend=backend,
    )
    return counts.to_profile()


def monte_carlo_observation_counts(
    code: SystematicLinearCode,
    patterns: Iterable[ChargedPattern],
    bit_error_rate: float,
    words_per_pattern: int,
    cell_type: CellType = CellType.TRUE_CELL,
    rng: Optional[np.random.Generator] = None,
    backend: str = "reference",
) -> "MiscorrectionCounts":
    """Measure raw observation counts — miscorrections *and* DUEs — per pattern.

    Detection-aware sibling of :func:`monte_carlo_miscorrection_profile`:
    every post-correction data-bit error is counted per bit, and every word
    the decoder flags as detected-uncorrectable is tallied, giving the full
    miscorrection+DUE picture a detection-capable family (SEC-DED, parity,
    duplication) produces.  ``counts.to_profile()`` recovers the
    threshold-filtered miscorrection profile BEER consumes.
    """
    from repro.einsim.engine import bulk_decode_outcomes, bulk_encode, resolve_backend

    backend = resolve_backend(backend)
    if words_per_pattern < 1:
        raise ProfileError("at least one word per pattern is required")
    if not 0.0 <= bit_error_rate <= 1.0:
        raise ProfileError("bit error rate must lie in [0, 1]")
    generator = rng if rng is not None else np.random.default_rng(0)
    charged_value = 1 if cell_type is CellType.TRUE_CELL else 0

    if backend == "fused":
        return _fused_observation_counts(
            code,
            list(patterns),
            bit_error_rate,
            words_per_pattern,
            cell_type,
            generator,
            charged_value,
        )

    counts = MiscorrectionCounts(code.num_data_bits)
    for pattern in patterns:
        dataword = pattern.dataword(cell_type)
        codeword = bulk_encode(code, dataword.to_numpy().reshape(1, -1), backend)[0]
        stored = np.tile(codeword, (words_per_pattern, 1))
        charged_cells = stored == charged_value
        failures = charged_cells & (generator.random(stored.shape) < bit_error_rate)
        received = np.where(failures, stored ^ 1, stored).astype(np.uint8)
        corrected, due = bulk_decode_outcomes(code, received, backend)
        data_errors = corrected[:, : code.num_data_bits] != stored[:, : code.num_data_bits]
        counts.record_observations(
            pattern,
            [int(bit) for bit in np.nonzero(data_errors)[1]],
            words_observed=words_per_pattern,
            due_words=int(due.sum()),
        )
    return counts


#: Element cap (patterns x words x codeword bits) on one fused profile group:
#: the single RNG block drawn per group stays comfortably inside cache-friendly
#: territory while still batching the whole pattern schedule for typical sizes.
_FUSED_GROUP_ELEMENTS = 1 << 24


def _fused_observation_counts(
    code: SystematicLinearCode,
    patterns: List[ChargedPattern],
    bit_error_rate: float,
    words_per_pattern: int,
    cell_type: CellType,
    generator: np.random.Generator,
    charged_value: int,
) -> "MiscorrectionCounts":
    """Fused-backend profile measurement: one kernel call per pattern *group*.

    Instead of tiling, injecting and decoding each pattern separately, this
    groups as many patterns as fit under :data:`_FUSED_GROUP_ELEMENTS`, draws
    one RNG block for the whole group and classifies every pattern as a
    segment of one packed batch.  Because the RNG stream fills row-major, one
    ``(g*m, n)`` draw yields exactly the values ``g`` consecutive ``(m, n)``
    draws would have — the observation counts are bit-identical to the staged
    backends for the same generator state.
    """
    from repro.einsim.engine import bulk_encode
    from repro.einsim.fused import PackedErrorBatch, get_kernel

    kernel = get_kernel(code)
    num_bits = code.codeword_length
    num_data_bits = code.num_data_bits
    counts = MiscorrectionCounts(num_data_bits)
    per_pattern_elements = max(words_per_pattern * num_bits, 1)
    group_size = max(1, _FUSED_GROUP_ELEMENTS // per_pattern_elements)
    data_positions = np.arange(num_data_bits)
    for start in range(0, len(patterns), group_size):
        group = patterns[start : start + group_size]
        datawords = np.vstack(
            [pattern.dataword(cell_type).to_numpy() for pattern in group]
        )
        codewords = bulk_encode(code, datawords, "fused")
        charged_rows = codewords == charged_value
        mask = generator.random((len(group) * words_per_pattern, num_bits))
        mask = mask < bit_error_rate
        mask &= np.repeat(charged_rows, words_per_pattern, axis=0)
        batch = PackedErrorBatch.from_bool_mask(mask)
        segment_stats = kernel.classify_segments(
            batch, [words_per_pattern] * len(group)
        )
        for pattern, stats in zip(group, segment_stats):
            positions = np.repeat(
                data_positions, stats.post_correction_error_counts
            )
            counts.record_observations(
                pattern,
                [int(bit) for bit in positions],
                words_observed=words_per_pattern,
                due_words=stats.detected_words,
            )
    return counts


class MiscorrectionProfile:
    """Mapping from test pattern to the set of miscorrection-susceptible data bits."""

    def __init__(
        self,
        num_data_bits: int,
        mapping: Optional[Mapping[ChargedPattern, Iterable[int]]] = None,
    ):
        if num_data_bits < 1:
            raise ProfileError("a profile needs at least one data bit")
        self._num_data_bits = num_data_bits
        self._mapping: Dict[ChargedPattern, FrozenSet[int]] = {}
        if mapping:
            for pattern, positions in mapping.items():
                self.record(pattern, positions)

    # -- construction -------------------------------------------------------
    def record(self, pattern: ChargedPattern, positions: Iterable[int]) -> None:
        """Record (or extend) the miscorrection positions observed for a pattern."""
        self._validate_pattern(pattern)
        cleaned = frozenset(int(p) for p in positions)
        for position in sorted(cleaned):
            if not 0 <= position < self._num_data_bits:
                raise ProfileError(f"miscorrection position {position} out of range")
            if position in pattern.charged_bits:
                raise ProfileError(
                    f"bit {position} is CHARGED in the pattern; errors there are "
                    "ambiguous and cannot be recorded as miscorrections"
                )
        existing = self._mapping.get(pattern, frozenset())
        self._mapping[pattern] = existing | cleaned

    def merge(self, other: "MiscorrectionProfile") -> "MiscorrectionProfile":
        """Return the union of two profiles (same dataword length required)."""
        if other.num_data_bits != self._num_data_bits:
            raise ProfileError("cannot merge profiles with different dataword lengths")
        merged = MiscorrectionProfile(self._num_data_bits, self._mapping)
        for pattern in other.patterns:
            merged.record(pattern, other.miscorrections(pattern))
        return merged

    # -- accessors ----------------------------------------------------------
    @property
    def num_data_bits(self) -> int:
        """Dataword length the profile applies to."""
        return self._num_data_bits

    @property
    def patterns(self) -> List[ChargedPattern]:
        """Patterns with a recorded entry, in insertion order."""
        return list(self._mapping.keys())

    def miscorrections(self, pattern: ChargedPattern) -> FrozenSet[int]:
        """Return the miscorrection positions recorded for ``pattern``."""
        self._validate_pattern(pattern)
        if pattern not in self._mapping:
            raise ProfileError(f"pattern {pattern!r} has no recorded entry")
        return self._mapping[pattern]

    def __contains__(self, pattern: ChargedPattern) -> bool:
        return pattern in self._mapping

    def items(self):
        """Iterate over ``(pattern, miscorrection_positions)`` pairs."""
        return self._mapping.items()

    def restricted_to_weights(self, weights: Sequence[int]) -> "MiscorrectionProfile":
        """Return a sub-profile containing only patterns of the given weights."""
        allowed = set(weights)
        mapping = {
            pattern: positions
            for pattern, positions in self._mapping.items()
            if pattern.weight in allowed
        }
        return MiscorrectionProfile(self._num_data_bits, mapping)

    @property
    def total_miscorrections(self) -> int:
        """Total number of (pattern, position) miscorrection entries."""
        return sum(len(positions) for positions in self._mapping.values())

    # -- serialisation -----------------------------------------------------------
    def to_dict(self) -> dict:
        """Serialise to plain Python types (JSON compatible)."""
        return {
            "num_data_bits": self._num_data_bits,
            "entries": [
                {
                    "charged_bits": sorted(pattern.charged_bits),
                    "miscorrections": sorted(positions),
                }
                for pattern, positions in self._mapping.items()
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MiscorrectionProfile":
        """Deserialise a profile produced by :meth:`to_dict`."""
        try:
            num_data_bits = int(payload["num_data_bits"])
            entries = payload["entries"]
        except (KeyError, TypeError) as error:
            raise ProfileError(f"malformed profile payload: {error}") from error
        profile = cls(num_data_bits)
        for entry in entries:
            pattern = ChargedPattern(num_data_bits, entry["charged_bits"])
            profile.record(pattern, entry["miscorrections"])
        return profile

    # -- protocol methods -----------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, MiscorrectionProfile):
            return NotImplemented
        return (
            self._num_data_bits == other._num_data_bits
            and self._mapping == other._mapping
        )

    def __repr__(self) -> str:
        return (
            f"MiscorrectionProfile(k={self._num_data_bits}, "
            f"patterns={len(self._mapping)}, entries={self.total_miscorrections})"
        )

    def _validate_pattern(self, pattern: ChargedPattern) -> None:
        if pattern.num_data_bits != self._num_data_bits:
            raise ProfileError(
                f"pattern is for {pattern.num_data_bits}-bit datawords, "
                f"profile expects {self._num_data_bits}"
            )


class MiscorrectionCounts:
    """Raw per-bit post-correction error counts gathered during experiments.

    Counts at CHARGED bits are kept (they show up in Figure 3 as the diagonal)
    but are never interpreted as miscorrections — only DISCHARGED-bit counts
    survive the conversion to a :class:`MiscorrectionProfile`.
    """

    def __init__(self, num_data_bits: int):
        if num_data_bits < 1:
            raise ProfileError("counts need at least one data bit")
        self._num_data_bits = num_data_bits
        self._counts: Dict[ChargedPattern, np.ndarray] = {}
        self._words_observed: Dict[ChargedPattern, int] = {}
        self._due_words: Dict[ChargedPattern, int] = {}

    @property
    def num_data_bits(self) -> int:
        """Dataword length the counts apply to."""
        return self._num_data_bits

    @property
    def patterns(self) -> List[ChargedPattern]:
        """Patterns with at least one recorded observation."""
        return list(self._counts.keys())

    def record_observations(
        self,
        pattern: ChargedPattern,
        error_positions: Iterable[int],
        words_observed: int,
        due_words: int = 0,
    ) -> None:
        """Record post-correction error positions seen over ``words_observed`` words.

        ``due_words`` counts how many of those words the decoder flagged as
        detected-uncorrectable (non-zero syndrome, nothing corrected) —
        recorded alongside miscorrections so detection-aware families keep
        their primary signal.
        """
        if pattern.num_data_bits != self._num_data_bits:
            raise ProfileError("pattern dataword length does not match the counts")
        if words_observed < 0:
            raise ProfileError("words observed cannot be negative")
        if not 0 <= due_words <= words_observed:
            raise ProfileError(
                f"due_words={due_words} must lie in [0, words_observed="
                f"{words_observed}]"
            )
        positions = list(error_positions)
        if words_observed == 0:
            if positions:
                raise ProfileError(
                    f"{len(positions)} error position(s) supplied with zero "
                    "words observed; errors cannot come from words that were "
                    "never read"
                )
            # Nothing observed: do not register the pattern at all, so that
            # ``patterns`` (and hence ``to_profile``) only ever sees patterns
            # with defined probabilities.
            return
        counts = self._counts.setdefault(pattern, np.zeros(self._num_data_bits, dtype=np.int64))
        for position in positions:
            if not 0 <= position < self._num_data_bits:
                raise ProfileError(f"error position {position} out of range")
            counts[position] += 1
        self._words_observed[pattern] = self._words_observed.get(pattern, 0) + words_observed
        self._due_words[pattern] = self._due_words.get(pattern, 0) + int(due_words)

    def counts_for(self, pattern: ChargedPattern) -> np.ndarray:
        """Return the per-bit error counts recorded for ``pattern``."""
        if pattern not in self._counts:
            raise ProfileError(f"pattern {pattern!r} has no recorded observations")
        return self._counts[pattern].copy()

    def words_observed(self, pattern: ChargedPattern) -> int:
        """Return the number of word observations recorded for ``pattern``."""
        return self._words_observed.get(pattern, 0)

    def due_words_observed(self, pattern: ChargedPattern) -> int:
        """Return how many observed words were flagged detected-uncorrectable."""
        return self._due_words.get(pattern, 0)

    @property
    def total_due_words(self) -> int:
        """Total DUE word observations across every pattern."""
        return sum(self._due_words.values())

    def due_probability(self, pattern: ChargedPattern) -> float:
        """Per-word DUE probability for ``pattern`` (raises on zero words)."""
        words = self._words_observed.get(pattern, 0)
        if words == 0:
            raise ProfileError(
                f"pattern {pattern!r} has zero observed words; its DUE "
                "probability is undefined"
            )
        return self._due_words.get(pattern, 0) / words

    def error_probabilities(self, pattern: ChargedPattern) -> np.ndarray:
        """Return per-bit post-correction error probabilities for ``pattern``.

        Raises :class:`ProfileError` when no words were observed — raw counts
        over zero observations are not probabilities, and silently reporting
        them as such used to poison threshold filtering downstream.
        """
        counts = self.counts_for(pattern)
        words = self._words_observed.get(pattern, 0)
        if words == 0:
            raise ProfileError(
                f"pattern {pattern!r} has zero observed words; its error "
                "probabilities are undefined"
            )
        return counts / words

    def merge(self, other: "MiscorrectionCounts") -> "MiscorrectionCounts":
        """Combine observation counts from two experiments."""
        if other.num_data_bits != self._num_data_bits:
            raise ProfileError("cannot merge counts with different dataword lengths")
        merged = MiscorrectionCounts(self._num_data_bits)
        for source in (self, other):
            for pattern in source.patterns:
                merged._counts.setdefault(
                    pattern, np.zeros(self._num_data_bits, dtype=np.int64)
                )
                merged._counts[pattern] += source._counts[pattern]
                merged._words_observed[pattern] = (
                    merged._words_observed.get(pattern, 0) + source._words_observed[pattern]
                )
                merged._due_words[pattern] = (
                    merged._due_words.get(pattern, 0)
                    + source._due_words.get(pattern, 0)
                )
        return merged

    def to_profile(self, threshold: float = 0.0) -> MiscorrectionProfile:
        """Apply the threshold filter and return the resulting miscorrection profile.

        A DISCHARGED data bit is accepted as miscorrection-susceptible when its
        per-word error probability strictly exceeds ``threshold``; CHARGED
        bits are always excluded because their errors are ambiguous.
        """
        if threshold < 0:
            raise ProfileError("threshold must be non-negative")
        profile = MiscorrectionProfile(self._num_data_bits)
        for pattern in self.patterns:
            probabilities = self.error_probabilities(pattern)
            positions = [
                position
                for position in pattern.discharged_bits
                if probabilities[position] > threshold
            ]
            profile.record(pattern, positions)
        return profile
