"""BEER's CNF/SAT formulation (the paper's Z3-style encoding).

The unknown is the parity submatrix ``P`` of the standard-form parity-check
matrix ``H = [P | I]``: one Boolean variable per (data column, parity row)
entry.  The constraints mirror Section 5.3 of the paper:

1. basic linear-code properties — every data column is non-zero, has weight at
   least two (so it cannot collide with the identity columns), and all data
   columns are pairwise distinct;
2. standard form — implicit in solving only for ``P``;
3. the miscorrection profile — for every (pattern, DISCHARGED bit) entry the
   encoded "miscorrection possible" condition must match the observation.

The profile conditions have closed forms for the pattern weights BEER uses
(Section 4.2.3):

* 1-CHARGED pattern ``{c}``: possible at ``j`` iff ``supp(P_j) ⊆ supp(P_c)``;
* 2-CHARGED pattern ``{a, b}``: possible at ``j`` iff ``supp(P_j) ⊆ U`` or
  ``supp(P_j ⊕ P_a) ⊆ U`` where ``U = supp(P_a ⊕ P_b)``.

Solving and model enumeration use the library's own CDCL solver
(:mod:`repro.sat`).  Enumeration runs on one *persistent* incremental solver:
learned clauses, watch lists, activities, and saved phases survive across the
blocking-clause iterations, so the n-th model costs incremental work instead
of a full re-propagation (pass ``incremental=False`` to
:meth:`SatBeerSolver.solve` for the historical one-shot oracle).  This backend
is the reference implementation used to cross-validate the faster specialised
solver in :mod:`repro.core.beer`; it is practical for the small-to-moderate
code sizes used in tests.
"""

from __future__ import annotations

import time
from typing import Dict, List, Mapping, Optional, Tuple

from repro.exceptions import CodeConstructionError, ProfileError, SolverError
from repro.ecc.code import SystematicLinearCode
from repro.ecc.codespace import canonical_parity_columns
from repro.ecc.family import CodeFamily, get_family
from repro.sat import CNF, CDCLSolver, iterate_models
from repro.sat.encoders import encode_column_design_space, encode_xor
from repro.core.beer import BeerSolution
from repro.core.profile import MiscorrectionProfile


class SatBeerSolver:
    """BEER solver backed by the CNF encoding and the CDCL SAT solver.

    ``family`` selects the column design space encoded as CNF, exactly
    mirroring the backtracking backend: ``"sec-hamming"`` columns are
    non-zero with weight ≥ 2; ``"secded-extended-hamming"`` columns are
    odd-weight with weight ≥ 3 (encoded with an XOR parity chain).
    """

    def __init__(
        self,
        num_data_bits: int,
        num_parity_bits: Optional[int] = None,
        family: str = "sec-hamming",
    ):
        if num_data_bits < 1:
            raise SolverError("the code must have at least one data bit")
        self._family: CodeFamily = (
            family if isinstance(family, CodeFamily) else get_family(family)
        )
        if not self._family.supports_beer:
            raise SolverError(
                f"code family {self._family.name!r} has a fixed structure; "
                "there is no column design space for BEER to search"
            )
        self._num_data_bits = num_data_bits
        try:
            self._num_parity_bits = (
                num_parity_bits
                if num_parity_bits is not None
                else self._family.min_parity_bits(num_data_bits)
            )
        except CodeConstructionError as error:
            raise SolverError(str(error)) from error

    @property
    def num_data_bits(self) -> int:
        """Dataword length ``k`` of the code being recovered."""
        return self._num_data_bits

    @property
    def num_parity_bits(self) -> int:
        """Number of parity bits ``r`` assumed for the code."""
        return self._num_parity_bits

    @property
    def family(self) -> CodeFamily:
        """The code family whose design space is encoded."""
        return self._family

    # -- public API ---------------------------------------------------------
    def solve(
        self,
        profile: MiscorrectionProfile,
        max_solutions: Optional[int] = None,
        incremental: bool = True,
        known_columns: Optional[Mapping[int, int]] = None,
    ) -> BeerSolution:
        """Enumerate the ECC functions consistent with ``profile`` (up to equivalence).

        ``incremental=True`` (the default) enumerates on one persistent CDCL
        solver and reports its statistics in ``BeerSolution.solver_stats``;
        ``incremental=False`` is the historical one-shot oracle (fresh solver
        per model) kept for differential validation and benchmarking.

        ``known_columns`` optionally fixes parity-check columns that are
        already known (``{data column index: column integer, ...}``, LSB =
        parity row 0) — the partial-knowledge scenario where a datasheet or a
        previous BEER run pins part of ``P``; it also collapses the
        row-permutation symmetry of the remaining search space.
        """
        if profile.num_data_bits != self._num_data_bits:
            raise ProfileError(
                f"profile is for k={profile.num_data_bits}, solver expects "
                f"k={self._num_data_bits}"
            )
        start_time = time.perf_counter()
        formula, column_variables = self._build_formula(profile)
        if known_columns:
            self._pin_known_columns(formula, column_variables, known_columns)
        flat_variables = [v for column in column_variables for v in column]

        solver: Optional[CDCLSolver] = CDCLSolver(formula) if incremental else None
        models = iterate_models(
            formula,
            over_variables=flat_variables,
            incremental=incremental,
            solver=solver,
        )

        codes: List[SystematicLinearCode] = []
        seen_canonical = set()
        truncated = False
        models_examined = 0
        for model in models:
            models_examined += 1
            columns = self._columns_from_model(model, column_variables)
            canonical = canonical_parity_columns(columns, self._num_parity_bits)
            if canonical not in seen_canonical:
                seen_canonical.add(canonical)
                codes.append(
                    SystematicLinearCode.from_parity_columns(
                        columns, self._num_parity_bits, family=self._family.name,
                        detect_only=not self._family.corrects,
                    )
                )
                if max_solutions is not None and len(codes) >= max_solutions:
                    truncated = True
                    break
        models.close()
        runtime = time.perf_counter() - start_time
        return BeerSolution(
            codes=codes,
            nodes_visited=models_examined,
            runtime_seconds=runtime,
            truncated=truncated,
            solver_stats=solver.stats().as_dict() if solver is not None else None,
            family=self._family.name,
            design_space_columns=self._family.num_candidate_columns(
                self._num_parity_bits
            ),
        )

    def _pin_known_columns(
        self,
        formula: CNF,
        column_variables: List[List[int]],
        known_columns: Mapping[int, int],
    ) -> None:
        """Fix already-known parity-check columns with unit clauses."""
        for column_index, value in known_columns.items():
            if not 0 <= column_index < self._num_data_bits:
                raise SolverError(
                    f"known column {column_index} out of range for k={self._num_data_bits}"
                )
            if not 0 <= value < (1 << self._num_parity_bits):
                raise SolverError(
                    f"known column value {value} does not fit in "
                    f"{self._num_parity_bits} parity bits"
                )
            for row, variable in enumerate(column_variables[column_index]):
                formula.add_unit(variable if (value >> row) & 1 else -variable)

    # -- CNF construction -----------------------------------------------------
    def _build_formula(self, profile: MiscorrectionProfile) -> Tuple[CNF, List[List[int]]]:
        formula = CNF()
        column_variables = [
            formula.new_variables(self._num_parity_bits) for _ in range(self._num_data_bits)
        ]
        self._encode_code_validity(formula, column_variables)
        xor_cache: Dict[Tuple[int, int], List[int]] = {}
        for pattern, observed_positions in profile.items():
            charged = tuple(sorted(pattern.charged_bits))
            if len(charged) == 0:
                continue
            if len(charged) > 2:
                raise SolverError(
                    "the SAT backend supports 1- and 2-CHARGED patterns only; "
                    "use BeerSolver for higher-weight patterns"
                )
            for target in pattern.discharged_bits:
                observed = target in observed_positions
                if len(charged) == 1:
                    self._encode_one_charged(
                        formula, column_variables, charged[0], target, observed
                    )
                else:
                    self._encode_two_charged(
                        formula,
                        column_variables,
                        charged[0],
                        charged[1],
                        target,
                        observed,
                        xor_cache,
                    )
        return formula, column_variables

    def _encode_code_validity(self, formula: CNF, column_variables: List[List[int]]) -> None:
        """Columns satisfy the family's design-space predicates and are distinct."""
        constraints = self._family.column_constraints()
        for column in column_variables:
            encode_column_design_space(
                formula, column, constraints.min_weight, constraints.odd_weight
            )
        for first in range(self._num_data_bits):
            for second in range(first + 1, self._num_data_bits):
                difference_bits = []
                for row in range(self._num_parity_bits):
                    diff = formula.new_variable()
                    self._encode_xor_pair(
                        formula,
                        column_variables[first][row],
                        column_variables[second][row],
                        diff,
                    )
                    difference_bits.append(diff)
                formula.add_clause(difference_bits)

    def _encode_one_charged(
        self,
        formula: CNF,
        column_variables: List[List[int]],
        charged_bit: int,
        target_bit: int,
        observed: bool,
    ) -> None:
        """Encode ``supp(P_target) ⊆ supp(P_charged)`` equal to ``observed``."""
        target = column_variables[target_bit]
        charged = column_variables[charged_bit]
        if observed:
            for row in range(self._num_parity_bits):
                formula.add_clause([-target[row], charged[row]])
        else:
            witnesses = []
            for row in range(self._num_parity_bits):
                witness = formula.new_variable()
                formula.add_clause([-witness, target[row]])
                formula.add_clause([-witness, -charged[row]])
                witnesses.append(witness)
            formula.add_clause(witnesses)

    def _encode_two_charged(
        self,
        formula: CNF,
        column_variables: List[List[int]],
        first_bit: int,
        second_bit: int,
        target_bit: int,
        observed: bool,
        xor_cache: Dict[Tuple[int, int], List[int]],
    ) -> None:
        """Encode the 2-CHARGED miscorrection condition equal to ``observed``."""
        union_bits = self._cached_xor(formula, column_variables, first_bit, second_bit, xor_cache)
        shifted_bits = self._cached_xor(formula, column_variables, first_bit, target_bit, xor_cache)
        target = column_variables[target_bit]

        if observed:
            # (forall row: target -> union) OR (forall row: shifted -> union)
            case_direct = formula.new_variable()
            case_shifted = formula.new_variable()
            for row in range(self._num_parity_bits):
                formula.add_clause([-case_direct, -target[row], union_bits[row]])
                formula.add_clause([-case_shifted, -shifted_bits[row], union_bits[row]])
            formula.add_clause([case_direct, case_shifted])
        else:
            # (exists row: target and not union) AND (exists row: shifted and not union)
            direct_witnesses = []
            shifted_witnesses = []
            for row in range(self._num_parity_bits):
                direct = formula.new_variable()
                formula.add_clause([-direct, target[row]])
                formula.add_clause([-direct, -union_bits[row]])
                direct_witnesses.append(direct)
                shifted = formula.new_variable()
                formula.add_clause([-shifted, shifted_bits[row]])
                formula.add_clause([-shifted, -union_bits[row]])
                shifted_witnesses.append(shifted)
            formula.add_clause(direct_witnesses)
            formula.add_clause(shifted_witnesses)

    def _cached_xor(
        self,
        formula: CNF,
        column_variables: List[List[int]],
        first_bit: int,
        second_bit: int,
        xor_cache: Dict[Tuple[int, int], List[int]],
    ) -> List[int]:
        """Return variables representing ``P_first ⊕ P_second`` (memoised)."""
        key = (min(first_bit, second_bit), max(first_bit, second_bit))
        if key not in xor_cache:
            result_bits = []
            for row in range(self._num_parity_bits):
                result = formula.new_variable()
                self._encode_xor_pair(
                    formula,
                    column_variables[key[0]][row],
                    column_variables[key[1]][row],
                    result,
                )
                result_bits.append(result)
            xor_cache[key] = result_bits
        return xor_cache[key]

    @staticmethod
    def _encode_xor_pair(formula: CNF, left: int, right: int, result: int) -> None:
        """Constrain ``result = left XOR right`` with the full biconditional."""
        formula.add_clauses(
            [
                [-left, -right, -result],
                [left, right, -result],
                [-left, right, result],
                [left, -right, result],
            ]
        )

    def _columns_from_model(
        self, model: Dict[int, bool], column_variables: List[List[int]]
    ) -> Tuple[int, ...]:
        columns = []
        for column in column_variables:
            value = 0
            for row, variable in enumerate(column):
                if model[variable]:
                    value |= 1 << row
            columns.append(value)
        return tuple(columns)


# Re-export encode_xor so the module is self-contained for external users who
# want to extend the encoding (e.g. to higher-weight patterns).
__all__ = ["SatBeerSolver", "encode_xor"]
