"""BEEP: Bit-Exact Error Profiling (paper Section 7.1).

BEEP uses the ECC function recovered by BEER to identify the number and
bit-exact locations of *pre-correction* error-prone cells — including cells in
the invisible parity bits — purely from observed post-correction errors.

The three phases of Figure 7:

1. **Craft a test pattern** for the codeword bit under test: the bit is placed
   in the CHARGED state, its physical neighbours DISCHARGED (worst-case
   coupling), and the remaining bits are chosen so that a miscorrection
   becomes observable if the bit fails together with already-identified
   error-prone cells.  Because every charge constraint is affine over the
   dataword (``c = G · d``), patterns are crafted by solving small GF(2)
   systems rather than by an opaque SAT query.
2. **Run the experiment**: write the pattern, induce retention errors, read
   back the post-correction dataword.
3. **Infer pre-correction errors**: an observed miscorrection at DISCHARGED
   data bit ``j`` reveals the syndrome ``H_j`` of the unknown pre-correction
   codeword ``c'``; since the data part of ``c'`` is known, the parity part
   follows uniquely (Equation 4) and ``c ⊕ c'`` pinpoints the raw errors.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.exceptions import DimensionError, PatternCraftingError
from repro.gf2 import GF2Matrix, GF2Vector, gf2_solve
from repro.exceptions import SingularMatrixError
from repro.ecc.code import SystematicLinearCode
from repro.ecc.decoder import SyndromeDecoder
from repro.dram.cell import CellType
from repro.sat import CNF, CDCLSolver
from repro.sat.encoders import encode_xor


@dataclass(frozen=True)
class CraftedPattern:
    """A BEEP test pattern plus the bookkeeping needed to interpret results."""

    #: The dataword to write.
    dataword: GF2Vector
    #: The codeword the chip will store (assuming the recovered ECC function).
    codeword: GF2Vector
    #: The codeword bit this pattern targets.
    target_bit: int
    #: True when the miscorrection-possibility constraint could be satisfied.
    miscorrection_armed: bool


@dataclass
class BeepResult:
    """Outcome of profiling one ECC word with BEEP."""

    identified_errors: Tuple[int, ...]
    passes_used: int
    patterns_tested: int
    miscorrections_observed: int

    def identified_set(self) -> FrozenSet[int]:
        """The identified pre-correction error positions as a set."""
        return frozenset(self.identified_errors)


class WordUnderTest:
    """Interface BEEP needs from a device: write a dataword, stress, read back."""

    def test(self, dataword: GF2Vector) -> GF2Vector:  # pragma: no cover - interface
        """Write ``dataword``, induce retention errors, and return the read dataword."""
        raise NotImplementedError


class SimulatedWordUnderTest(WordUnderTest):
    """A standalone simulated ECC word with a fixed set of error-prone cells.

    Each error-prone cell fails with probability ``per_bit_probability``
    whenever it is CHARGED during a test — the model behind the paper's
    Figures 8 and 9.
    """

    def __init__(
        self,
        code: SystematicLinearCode,
        error_prone_positions: Iterable[int],
        per_bit_probability: float = 1.0,
        cell_type: CellType = CellType.TRUE_CELL,
        rng: Optional[np.random.Generator] = None,
    ):
        self._code = code
        self._decoder = SyndromeDecoder(code)
        positions = sorted(set(int(p) for p in error_prone_positions))
        for position in positions:
            if not 0 <= position < code.codeword_length:
                raise DimensionError(
                    f"error-prone position {position} out of range for n={code.codeword_length}"
                )
        if not 0.0 <= per_bit_probability <= 1.0:
            raise DimensionError("per-bit error probability must lie in [0, 1]")
        self._error_prone = positions
        self._per_bit_probability = per_bit_probability
        self._cell_type = cell_type
        self._rng = rng if rng is not None else np.random.default_rng(0)

    @property
    def error_prone_positions(self) -> Tuple[int, ...]:
        """Ground-truth error-prone cell positions (used only for evaluation)."""
        return tuple(self._error_prone)

    @property
    def code(self) -> SystematicLinearCode:
        """The on-die ECC function of the simulated word."""
        return self._code

    def test(self, dataword: GF2Vector) -> GF2Vector:
        """Encode, decay error-prone CHARGED cells probabilistically, decode."""
        codeword = self._code.encode(dataword).to_numpy()
        charged_value = 1 if self._cell_type is CellType.TRUE_CELL else 0
        for position in self._error_prone:
            if codeword[position] != charged_value:
                continue
            if self._rng.random() < self._per_bit_probability:
                codeword[position] ^= 1
        return self._decoder.decode_dataword(GF2Vector(codeword))


class ChipWordUnderTest(WordUnderTest):
    """Adapter that exposes one word of a :class:`SimulatedDramChip` to BEEP."""

    def __init__(self, chip, word_index: int, refresh_pause_s: float, temperature_c: float = 80.0):
        self._chip = chip
        self._word_index = word_index
        self._refresh_pause_s = refresh_pause_s
        self._temperature_c = temperature_c

    def test(self, dataword: GF2Vector) -> GF2Vector:
        """Write, pause refresh, read back the post-correction dataword."""
        self._chip.write_dataword(self._word_index, dataword)
        self._chip.pause_refresh(self._refresh_pause_s, self._temperature_c)
        return self._chip.read_dataword(self._word_index)


class IncrementalChargeSolver:
    """Charge-constraint solving on the persistent, incremental CDCL solver.

    BEEP crafts each test pattern by solving a small affine system over the
    dataword (every codeword bit is a GF(2) linear function of the data
    bits).  This backend keeps ONE persistent :class:`CDCLSolver` for the
    lifetime of a profiler: dataword bits are SAT variables ``1..k``, each
    codeword position gets a lazily-encoded auxiliary literal equal (mod 2)
    to its generator row, and each craft query is then a single assumption
    solve — learned clauses, activities, and saved phases carry over between
    the hundreds of queries one profiling pass makes, with no CNF copying.
    """

    def __init__(self, code: SystematicLinearCode):
        self._code = code
        self._formula = CNF(code.num_data_bits)
        self._solver = CDCLSolver(self._formula)
        self._fed_clauses = self._formula.num_clauses
        #: codeword position -> defining literal (None for a constant-zero bit)
        self._position_literals: Dict[int, Optional[int]] = {}

    def solve_bits(self, bit_by_position: Dict[int, int]) -> Optional[GF2Vector]:
        """Return a dataword whose codeword matches ``bit_by_position``, or None."""
        assumptions: List[int] = []
        for position, bit_value in bit_by_position.items():
            literal = self._position_literal(position)
            if literal is None:  # codeword bit is constant zero
                if bit_value:
                    return None
                continue
            assumptions.append(literal if bit_value else -literal)
        result = self._solver.solve(assumptions=assumptions)
        if not result.satisfiable:
            return None
        return GF2Vector(
            [
                1 if result.assignment[variable] else 0
                for variable in range(1, self._code.num_data_bits + 1)
            ]
        )

    def stats(self) -> Dict[str, int]:
        """Cumulative statistics of the underlying incremental solver."""
        return self._solver.stats().as_dict()

    def _position_literal(self, position: int) -> Optional[int]:
        if position not in self._position_literals:
            support = self._code.generator_matrix.row(position).support
            if not support:
                literal: Optional[int] = None
            elif len(support) == 1:
                literal = support[0] + 1
            else:
                literal = self._formula.new_variable()
                # literal <-> XOR of the row's data bits (even overall parity).
                encode_xor(
                    self._formula,
                    [data_bit + 1 for data_bit in support] + [literal],
                    False,
                )
                self._feed_new_clauses()
            self._position_literals[position] = literal
        return self._position_literals[position]

    def _feed_new_clauses(self) -> None:
        clauses = self._formula.clauses
        for clause in clauses[self._fed_clauses :]:
            self._solver.add_clause(clause)
        self._fed_clauses = len(clauses)


class BeepProfiler:
    """Infers pre-correction error locations using a known ECC function."""

    def __init__(
        self,
        code: SystematicLinearCode,
        cell_type: CellType = CellType.TRUE_CELL,
        max_combination_size: int = 2,
        pattern_backend: str = "gf2",
    ):
        self._code = code
        self._cell_type = cell_type
        self._charged_value = 1 if cell_type is CellType.TRUE_CELL else 0
        if max_combination_size < 1:
            raise PatternCraftingError("combination size must be at least 1")
        self._max_combination_size = max_combination_size
        if pattern_backend not in ("gf2", "sat"):
            raise PatternCraftingError(
                f"unknown pattern backend {pattern_backend!r} (expected 'gf2' or 'sat')"
            )
        self._pattern_backend = pattern_backend
        self._charge_solver: Optional[IncrementalChargeSolver] = (
            IncrementalChargeSolver(code) if pattern_backend == "sat" else None
        )

    @property
    def pattern_backend(self) -> str:
        """The charge-constraint backend: 'gf2' (elimination) or 'sat' (incremental CDCL)."""
        return self._pattern_backend

    def sat_solver_stats(self) -> Optional[Dict[str, int]]:
        """Statistics of the incremental SAT crafter (None for the gf2 backend)."""
        return self._charge_solver.stats() if self._charge_solver is not None else None

    @property
    def code(self) -> SystematicLinearCode:
        """The ECC function BEEP reasons with (typically recovered by BEER)."""
        return self._code

    # -- phase 1: pattern crafting ------------------------------------------------
    def craft_pattern(
        self, target_bit: int, known_errors: Iterable[int] = (), phase: int = 0
    ) -> CraftedPattern:
        """Craft a test pattern for ``target_bit`` given already-known error cells.

        The pattern satisfies, in priority order:

        1. the target is CHARGED and its neighbours DISCHARGED, and the target
           failing together with a subset of known errors produces an
           observable miscorrection;
        2. failing that, constraint (1) without the neighbour requirement;
        3. failing that, the bootstrap pattern: target CHARGED, neighbours
           DISCHARGED, and the remaining data bits alternating
           CHARGED/DISCHARGED so coincident failures of unknown error-prone
           cells stay observable.  ``phase`` flips which half of the bits is
           CHARGED, so successive passes charge complementary cell sets.
        """
        if not 0 <= target_bit < self._code.codeword_length:
            raise PatternCraftingError(
                f"target bit {target_bit} out of range for n={self._code.codeword_length}"
            )
        known = sorted(set(int(e) for e in known_errors) - {target_bit})

        for require_adjacency in (True, False):
            dataword = self._craft_miscorrection_prone(target_bit, known, require_adjacency)
            if dataword is not None:
                return CraftedPattern(
                    dataword=dataword,
                    codeword=self._code.encode(dataword),
                    target_bit=target_bit,
                    miscorrection_armed=True,
                )
        dataword = self._bootstrap_pattern(target_bit, phase)
        return CraftedPattern(
            dataword=dataword,
            codeword=self._code.encode(dataword),
            target_bit=target_bit,
            miscorrection_armed=False,
        )

    def _craft_miscorrection_prone(
        self, target_bit: int, known_errors: Sequence[int], require_adjacency: bool
    ) -> Optional[GF2Vector]:
        max_size = min(self._max_combination_size, len(known_errors))
        for combination_size in range(1, max_size + 1):
            for combination in itertools.combinations(known_errors, combination_size):
                syndrome_value = self._code.column_int(target_bit)
                for error in combination:
                    syndrome_value ^= self._code.column_int(error)
                miscorrection_target = self._syndrome_to_data_bit(syndrome_value)
                if miscorrection_target is None:
                    continue
                if miscorrection_target == target_bit or miscorrection_target in combination:
                    continue
                charge_constraints = {target_bit: 1}
                for error in combination:
                    charge_constraints[error] = 1
                charge_constraints[miscorrection_target] = 0
                if require_adjacency:
                    for neighbour in self._neighbours(target_bit):
                        charge_constraints.setdefault(neighbour, 0)
                dataword = self._solve_charge_constraints(charge_constraints)
                if dataword is not None:
                    return dataword
        return None

    def _bootstrap_pattern(self, target_bit: int, phase: int = 0) -> GF2Vector:
        """Pattern used while no error cells are known yet.

        The target is CHARGED, its neighbours DISCHARGED, and the remaining
        data bits alternate CHARGED/DISCHARGED.  Charging roughly half of the
        word gives unknown error-prone cells a chance to fail together, while
        keeping roughly half of the data bits DISCHARGED so that the resulting
        miscorrections stay observable.  ``phase`` selects which half is
        CHARGED so repeated passes cover complementary cell sets.
        """
        num_data_bits = self._code.num_data_bits
        parity = phase % 2
        if target_bit < num_data_bits:
            charges = []
            for index in range(num_data_bits):
                if index == target_bit:
                    charges.append(1)
                elif abs(index - target_bit) == 1:
                    charges.append(0)
                else:
                    charges.append(1 if index % 2 == parity else 0)
            bits = [
                charge if self._charged_value == 1 else 1 - charge for charge in charges
            ]
            return GF2Vector(bits)

        # Parity-bit target: its charge is an affine function of the dataword.
        # Start from the alternating pattern and, if the target parity cell is
        # not CHARGED, toggle one data bit in that parity row's support.
        charges = [1 if index % 2 == parity else 0 for index in range(num_data_bits)]
        bits = [charge if self._charged_value == 1 else 1 - charge for charge in charges]
        dataword = GF2Vector(bits)
        codeword = self._code.encode(dataword)
        if codeword[target_bit] != self._charged_value:
            parity_row = self._code.parity_submatrix.row(target_bit - num_data_bits)
            support = parity_row.support
            if not support:
                raise PatternCraftingError(
                    f"parity bit {target_bit} does not depend on any data bit"
                )
            dataword = dataword.flip(support[0])
        return dataword

    def _neighbours(self, position: int) -> List[int]:
        neighbours = []
        if position > 0:
            neighbours.append(position - 1)
        if position < self._code.codeword_length - 1:
            neighbours.append(position + 1)
        return neighbours

    def _solve_charge_constraints(
        self, charge_by_position: dict, fill_charged: bool = False
    ) -> Optional[GF2Vector]:
        """Solve for a dataword whose codeword has the requested charge states.

        Charge states translate into bit values through the cell convention;
        each codeword bit is an affine (linear) function of the dataword, so
        the constraints form a GF(2) linear system ``A d = b``.  The system is
        solved either by Gaussian elimination ('gf2' backend) or by an
        assumption query against the persistent incremental CDCL solver
        ('sat' backend); both return a valid dataword or None if infeasible.
        """
        bit_by_position: Dict[int, int] = {}
        for position, charge in charge_by_position.items():
            bit_by_position[position] = charge if self._charged_value == 1 else 1 - charge
        if fill_charged:
            constrained = set(charge_by_position)
            for data_bit in self._code.data_bit_positions:
                if data_bit not in constrained:
                    bit_by_position[data_bit] = self._charged_value
        if self._charge_solver is not None:
            return self._charge_solver.solve_bits(bit_by_position)
        generator = self._code.generator_matrix
        rows = [generator.row(position).to_list() for position in bit_by_position]
        rhs = list(bit_by_position.values())
        try:
            solution = gf2_solve(GF2Matrix(rows), GF2Vector(rhs))
        except SingularMatrixError:
            return None
        return solution

    def _syndrome_to_data_bit(self, syndrome_value: int) -> Optional[int]:
        position = self._code.syndrome_to_position(
            GF2Vector.from_int(syndrome_value, self._code.num_parity_bits)
        )
        if position is None or position >= self._code.num_data_bits:
            return None
        return position

    # -- phase 3: inference ------------------------------------------------------
    def infer_errors_from_observation(
        self, pattern: CraftedPattern, observed_dataword: GF2Vector
    ) -> FrozenSet[int]:
        """Translate one observed read into pre-correction error positions.

        Every post-correction error at a DISCHARGED data bit is a
        miscorrection; its position reveals the syndrome of the pre-correction
        codeword, from which the full pre-correction error pattern follows.
        """
        observed = (
            observed_dataword
            if isinstance(observed_dataword, GF2Vector)
            else GF2Vector(observed_dataword)
        )
        if len(observed) != self._code.num_data_bits:
            raise DimensionError(
                f"observed dataword has {len(observed)} bits, expected "
                f"{self._code.num_data_bits}"
            )
        written_data = pattern.dataword
        written_codeword = pattern.codeword
        discharged_value = 1 - self._charged_value

        errors: Set[int] = set()
        difference = (observed + written_data).support
        for position in difference:
            if written_data[position] != discharged_value:
                continue  # ambiguous: could be an uncorrected retention error
            syndrome = self._code.column(position)
            pre_correction_data = observed.flip(position)
            parity_from_data = self._code.parity_submatrix @ pre_correction_data
            pre_correction_parity = parity_from_data + syndrome
            pre_correction_codeword = GF2Vector(
                list(pre_correction_data) + list(pre_correction_parity)
            )
            error_pattern = pre_correction_codeword + written_codeword
            errors.update(error_pattern.support)
        return frozenset(errors)

    # -- full profiling loop -------------------------------------------------------
    def profile(
        self,
        word: WordUnderTest,
        num_passes: int = 1,
        trials_per_pattern: int = 1,
    ) -> BeepResult:
        """Profile one ECC word: iterate over codeword bits, craft, test, infer."""
        if num_passes < 1 or trials_per_pattern < 1:
            raise PatternCraftingError("passes and trials must be at least 1")
        known_errors: Set[int] = set()
        patterns_tested = 0
        miscorrections_observed = 0
        for pass_index in range(num_passes):
            for target_bit in range(self._code.codeword_length):
                pattern = self.craft_pattern(target_bit, known_errors, phase=pass_index)
                for _ in range(trials_per_pattern):
                    patterns_tested += 1
                    observed = word.test(pattern.dataword)
                    inferred = self.infer_errors_from_observation(pattern, observed)
                    if inferred:
                        miscorrections_observed += 1
                        known_errors.update(inferred)
        return BeepResult(
            identified_errors=tuple(sorted(known_errors)),
            passes_used=num_passes,
            patterns_tested=patterns_tested,
            miscorrections_observed=miscorrections_observed,
        )
