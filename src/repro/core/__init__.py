"""BEER and BEEP — the paper's primary contributions.

* :mod:`repro.core.patterns` — the k-CHARGED test patterns BEER writes into a
  chip to restrict where data-retention errors can occur.
* :mod:`repro.core.profile` — miscorrection profiles: which DISCHARGED data
  bits can exhibit miscorrections for each test pattern, plus the threshold
  filtering used on noisy experimental counts, plus the exact (ground-truth)
  profile computation used in simulation.
* :mod:`repro.core.beer` — the BEER solver that recovers the on-die ECC
  function (parity-check matrix) from a miscorrection profile, with
  uniqueness checking (specialised GF(2) constraint-propagation backend).
* :mod:`repro.core.beer_sat` — the same problem encoded to CNF and solved with
  the :mod:`repro.sat` CDCL solver, mirroring the paper's Z3 formulation.
* :mod:`repro.core.beep` — BEEP, the profiling methodology that uses the
  recovered ECC function to locate pre-correction errors bit-exactly.
* :mod:`repro.core.experiment` — the experimental campaign that runs BEER
  against a (simulated) DRAM chip end to end.
* :mod:`repro.core.layout_re` — reverse engineering of cell encodings and
  dataword layout (paper Sections 5.1.1 and 5.1.2).
"""

from repro.core.patterns import ChargedPattern, charged_patterns, one_charged_patterns
from repro.core.profile import (
    MiscorrectionCounts,
    MiscorrectionProfile,
    expected_miscorrection_profile,
    miscorrections_possible,
    monte_carlo_miscorrection_profile,
    monte_carlo_observation_counts,
)
from repro.core.beer import BeerSolver, BeerSolution
from repro.core.beer_sat import SatBeerSolver
from repro.core.beep import BeepProfiler, BeepResult
from repro.core.experiment import BeerExperiment, ExperimentConfig, MonteCarloCampaign
from repro.core.layout_re import (
    discover_cell_types,
    discover_dataword_layout,
)

__all__ = [
    "ChargedPattern",
    "charged_patterns",
    "one_charged_patterns",
    "MiscorrectionCounts",
    "MiscorrectionProfile",
    "expected_miscorrection_profile",
    "miscorrections_possible",
    "monte_carlo_miscorrection_profile",
    "monte_carlo_observation_counts",
    "BeerSolver",
    "BeerSolution",
    "SatBeerSolver",
    "BeepProfiler",
    "BeepResult",
    "BeerExperiment",
    "ExperimentConfig",
    "MonteCarloCampaign",
    "discover_cell_types",
    "discover_dataword_layout",
]
