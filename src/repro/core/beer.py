"""BEER: recovering the on-die ECC function from a miscorrection profile.

Section 5.3 of the paper solves for the parity-check matrix with a SAT solver
constrained by (1) basic linear-code properties, (2) standard form, and (3)
the miscorrection profile.  This module implements the same search as a
specialised backtracking solver over the unknown columns of ``P`` (the data
portion of ``H = [P | I]``) with constraint propagation, which exploits the
closed-form structure of the constraints:

* a test pattern whose CHARGED codeword positions are ``S`` can miscorrect
  DISCHARGED data bit ``j`` iff ``H_j ∈ span{H_i : i ∈ S}``;
* ``S`` itself depends only on the columns of the pattern's CHARGED data bits
  (the CHARGED parity positions are the support of their XOR), so every
  constraint touches only the pattern's columns plus the target column.

Solutions are reported up to *code equivalence* (relabelling of parity bits,
Section 4.2.1); the search breaks that symmetry by requiring parity rows to be
introduced in increasing order along the assignment order, so each equivalence
class is visited exactly once.

The CNF/SAT formulation that mirrors the paper's Z3 encoding lives in
:mod:`repro.core.beer_sat` and is cross-checked against this solver in tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import CodeConstructionError, ProfileError, SolverError
from repro.ecc.code import SystematicLinearCode
from repro.ecc.codespace import canonical_parity_columns
from repro.ecc.family import CodeFamily, get_family
from repro.core.profile import MiscorrectionProfile, expected_miscorrection_profile


@dataclass
class BeerSolution:
    """Result of one BEER solve.

    Attributes
    ----------
    codes:
        Candidate ECC functions consistent with the profile, one representative
        per equivalence class, in the order found.
    nodes_visited:
        Number of partial assignments explored by the backtracking search
        (for the SAT backend: number of models examined).
    runtime_seconds:
        Wall-clock time spent searching.
    truncated:
        True if the search stopped at ``max_solutions`` rather than exhausting
        the space (the count is then a lower bound).
    solver_stats:
        CDCL solver statistics (conflicts, decisions, propagations, restarts,
        learned/deleted clauses, ...) when produced by the SAT backend's
        incremental path; None otherwise.
    family:
        Name of the code family whose design space was searched.
    design_space_columns:
        Number of legal per-column values in that family's design space for
        the assumed parity-bit count — e.g. SECDED's odd-weight constraint
        shrinks this well below SEC's ``2**r - r - 1``.
    """

    codes: List[SystematicLinearCode]
    nodes_visited: int
    runtime_seconds: float
    truncated: bool = False
    solver_stats: Optional[Dict[str, int]] = None
    family: str = "sec-hamming"
    design_space_columns: Optional[int] = None

    @property
    def num_solutions(self) -> int:
        """Number of (equivalence classes of) candidate functions found."""
        return len(self.codes)

    @property
    def unique(self) -> bool:
        """True if exactly one candidate function explains the profile."""
        return len(self.codes) == 1 and not self.truncated

    @property
    def code(self) -> SystematicLinearCode:
        """The unique solution (raises if the solution is not unique)."""
        if not self.codes:
            raise SolverError("no ECC function is consistent with the profile")
        if len(self.codes) > 1:
            raise SolverError(
                f"{len(self.codes)} ECC functions are consistent with the profile; "
                "use .codes to inspect them all"
            )
        return self.codes[0]


@dataclass
class _Constraint:
    """One (pattern, target-bit) entry of the miscorrection profile."""

    pattern_bits: Tuple[int, ...]
    target_bit: int
    observed: bool
    #: Position (in assignment order) after which all involved columns are known.
    ready_depth: int = field(default=0)


class BeerSolver:
    """Backtracking BEER solver over a family's standard-form parity-check columns.

    ``family`` selects the design space searched: ``"sec-hamming"`` (the
    paper's weight-≥2 columns, the default) or any registered correcting
    family with a searchable column space such as
    ``"secded-extended-hamming"`` (odd-weight-≥3 columns).
    """

    def __init__(
        self,
        num_data_bits: int,
        num_parity_bits: Optional[int] = None,
        family: str = "sec-hamming",
    ):
        if num_data_bits < 1:
            raise SolverError("the code must have at least one data bit")
        self._family: CodeFamily = (
            family if isinstance(family, CodeFamily) else get_family(family)
        )
        if not self._family.supports_beer:
            raise SolverError(
                f"code family {self._family.name!r} has a fixed structure; "
                "there is no column design space for BEER to search"
            )
        self._num_data_bits = num_data_bits
        try:
            self._num_parity_bits = (
                num_parity_bits
                if num_parity_bits is not None
                else self._family.min_parity_bits(num_data_bits)
            )
            self._candidates = self._family.candidate_columns(self._num_parity_bits)
        except CodeConstructionError as error:
            raise SolverError(str(error)) from error
        if num_data_bits > len(self._candidates):
            raise SolverError(
                f"k={num_data_bits} does not fit in r={self._num_parity_bits} "
                f"parity bits for family {self._family.name!r}"
            )

    # -- public API -----------------------------------------------------------
    @property
    def num_data_bits(self) -> int:
        """Dataword length ``k`` of the code being recovered."""
        return self._num_data_bits

    @property
    def num_parity_bits(self) -> int:
        """Number of parity bits ``r`` assumed for the code."""
        return self._num_parity_bits

    @property
    def family(self) -> CodeFamily:
        """The code family whose design space is searched."""
        return self._family

    def solve(
        self,
        profile: MiscorrectionProfile,
        max_solutions: Optional[int] = None,
        max_nodes: Optional[int] = None,
    ) -> BeerSolution:
        """Search for every ECC function consistent with ``profile``.

        ``max_solutions`` truncates the search after that many equivalence
        classes have been found (``None`` = exhaustive, which is what the
        uniqueness check requires).  ``max_nodes`` bounds the search effort and
        raises :class:`~repro.exceptions.SolverError` when exceeded.
        """
        if profile.num_data_bits != self._num_data_bits:
            raise ProfileError(
                f"profile is for k={profile.num_data_bits}, solver expects "
                f"k={self._num_data_bits}"
            )
        start_time = time.perf_counter()
        order = self._assignment_order(profile)
        order_position = {column: depth for depth, column in enumerate(order)}
        constraints = self._build_constraints(profile, order_position)
        constraints_by_depth: Dict[int, List[_Constraint]] = {}
        for constraint in constraints:
            constraints_by_depth.setdefault(constraint.ready_depth, []).append(constraint)

        state = _SearchState(
            num_data_bits=self._num_data_bits,
            num_parity_bits=self._num_parity_bits,
            candidates=self._candidates,
            order=order,
            constraints_by_depth=constraints_by_depth,
            max_solutions=max_solutions,
            max_nodes=max_nodes,
            candidates_per_column=self._prefilter_candidates(profile),
        )
        state.search()
        runtime = time.perf_counter() - start_time

        codes = [
            SystematicLinearCode.from_parity_columns(
                columns, self._num_parity_bits, family=self._family.name,
                detect_only=not self._family.corrects,
            )
            for columns in state.solutions
        ]
        return BeerSolution(
            codes=codes,
            nodes_visited=state.nodes_visited,
            runtime_seconds=runtime,
            truncated=state.truncated,
            family=self._family.name,
            design_space_columns=len(self._candidates),
        )

    def check_uniqueness(self, profile: MiscorrectionProfile) -> BeerSolution:
        """Exhaustively search for *all* consistent functions (paper's uniqueness check)."""
        return self.solve(profile, max_solutions=None)

    @staticmethod
    def verify(code: SystematicLinearCode, profile: MiscorrectionProfile) -> bool:
        """Return True if ``code`` reproduces every entry of ``profile`` exactly."""
        expected = expected_miscorrection_profile(code, profile.patterns)
        for pattern in profile.patterns:
            if expected.miscorrections(pattern) != profile.miscorrections(pattern):
                return False
        return True

    # -- internals ------------------------------------------------------------
    def _assignment_order(self, profile: MiscorrectionProfile) -> List[int]:
        """Choose a static column assignment order (most-constrained first).

        Columns that appear in many *observed* miscorrection relations are the
        most constrained, so assigning them early maximises pruning.
        """
        scores = [0] * self._num_data_bits
        for pattern, positions in profile.items():
            for bit in pattern.charged_bits:
                scores[bit] += len(positions) + 1
            for bit in positions:
                scores[bit] += 1
        return sorted(range(self._num_data_bits), key=lambda bit: -scores[bit])

    def _prefilter_candidates(self, profile: MiscorrectionProfile) -> Dict[int, List[int]]:
        """Derive per-column candidate lists from cheap 1-CHARGED counting bounds.

        If the 1-CHARGED pattern charging data bit ``c`` can miscorrect ``m``
        other data bits, then those ``m`` columns are distinct *legal* subsets
        of ``supp(P_c)`` other than ``P_c`` itself, so the family's
        ``legal_subset_count(w) - 1 >= m`` where ``w`` is the weight of
        ``P_c`` (for SEC Hamming: ``2**w - w - 2 >= m``).  This bounds the
        weight of each column from below and substantially narrows the value
        choices for heavily-covering columns before the search starts.
        """
        cover_counts: Dict[int, int] = {}
        for pattern, positions in profile.items():
            if pattern.weight != 1:
                continue
            (charged_bit,) = tuple(pattern.charged_bits)
            cover_counts[charged_bit] = len(positions)

        def capacity(value: int) -> int:
            return self._family.legal_subset_count(bin(value).count("1")) - 1

        candidates_per_column: Dict[int, List[int]] = {}
        for column in range(self._num_data_bits):
            cover = cover_counts.get(column)
            if cover is None:
                candidates_per_column[column] = list(self._candidates)
                continue
            allowed = [value for value in self._candidates if capacity(value) >= cover]
            # Try tightly-fitting weights first: columns that cover many bits
            # are almost certainly high weight, and vice versa.
            allowed.sort(key=lambda value: (capacity(value) - cover, value))
            candidates_per_column[column] = allowed
        return candidates_per_column

    def _build_constraints(
        self,
        profile: MiscorrectionProfile,
        order_position: Dict[int, int],
    ) -> List[_Constraint]:
        constraints: List[_Constraint] = []
        for pattern, observed_positions in profile.items():
            charged = tuple(sorted(pattern.charged_bits))
            if not charged:
                # The 0-CHARGED pattern cannot produce any retention errors and
                # therefore carries no information.
                continue
            for target in pattern.discharged_bits:
                involved = charged + (target,)
                ready_depth = max(order_position[bit] for bit in involved)
                constraints.append(
                    _Constraint(
                        pattern_bits=charged,
                        target_bit=target,
                        observed=target in observed_positions,
                        ready_depth=ready_depth,
                    )
                )
        return constraints


class _SearchState:
    """Mutable state of the backtracking search (kept out of the public API)."""

    def __init__(
        self,
        num_data_bits: int,
        num_parity_bits: int,
        candidates: Sequence[int],
        order: Sequence[int],
        constraints_by_depth: Dict[int, List[_Constraint]],
        max_solutions: Optional[int],
        max_nodes: Optional[int],
        candidates_per_column: Optional[Dict[int, List[int]]] = None,
    ):
        self.num_data_bits = num_data_bits
        self.num_parity_bits = num_parity_bits
        self.candidates = list(candidates)
        self.candidates_per_column = candidates_per_column or {}
        self.order = list(order)
        self.constraints_by_depth = constraints_by_depth
        self.max_solutions = max_solutions
        self.max_nodes = max_nodes

        self.assignment: Dict[int, int] = {}
        self.used_values: set = set()
        self.solutions: List[Tuple[int, ...]] = []
        self.seen_canonical: set = set()
        self.nodes_visited = 0
        self.truncated = False

    # -- search ------------------------------------------------------------------
    def search(self) -> None:
        self._search_depth(0, used_row_mask=0, rows_used=0)

    def _search_depth(self, depth: int, used_row_mask: int, rows_used: int) -> bool:
        """Depth-first search; returns False when the search should stop entirely."""
        if self.max_solutions is not None and len(self.solutions) >= self.max_solutions:
            self.truncated = True
            return False
        if depth == self.num_data_bits:
            self._record_solution()
            if self.max_solutions is not None and len(self.solutions) >= self.max_solutions:
                self.truncated = True
                return False
            return True
        column = self.order[depth]
        for value in self.candidates_per_column.get(column, self.candidates):
            if value in self.used_values:
                continue
            new_rows = value & ~used_row_mask
            if new_rows and not self._introduces_rows_in_order(new_rows, rows_used):
                continue
            self.nodes_visited += 1
            if self.max_nodes is not None and self.nodes_visited > self.max_nodes:
                raise SolverError("BEER search exceeded the node budget")
            self.assignment[column] = value
            self.used_values.add(value)
            if self._constraints_hold(depth):
                next_mask = used_row_mask | value
                next_rows_used = rows_used + bin(new_rows).count("1")
                keep_going = self._search_depth(depth + 1, next_mask, next_rows_used)
            else:
                keep_going = True
            del self.assignment[column]
            self.used_values.discard(value)
            if not keep_going:
                return False
        return True

    def _introduces_rows_in_order(self, new_rows: int, rows_used: int) -> bool:
        """Symmetry break: new parity rows must be the next consecutive indices."""
        count = bin(new_rows).count("1")
        expected = ((1 << count) - 1) << rows_used
        return new_rows == expected

    def _constraints_hold(self, depth: int) -> bool:
        for constraint in self.constraints_by_depth.get(depth, []):
            if self._evaluate(constraint) != constraint.observed:
                return False
        return True

    def _evaluate(self, constraint: _Constraint) -> bool:
        """Evaluate whether a miscorrection is possible under the current assignment."""
        pattern_columns = [self.assignment[bit] for bit in constraint.pattern_bits]
        parity_value = 0
        for column in pattern_columns:
            parity_value ^= column
        spanning = list(pattern_columns)
        row = 0
        remaining = parity_value
        while remaining:
            if remaining & 1:
                spanning.append(1 << row)
            remaining >>= 1
            row += 1
        target = self.assignment[constraint.target_bit]
        return _int_in_span(target, spanning)

    def _record_solution(self) -> None:
        columns = tuple(self.assignment[bit] for bit in range(self.num_data_bits))
        canonical = canonical_parity_columns(columns, self.num_parity_bits)
        if canonical in self.seen_canonical:
            return
        self.seen_canonical.add(canonical)
        self.solutions.append(columns)


def _int_in_span(target: int, vectors: Sequence[int]) -> bool:
    """Return True if ``target`` is a GF(2) combination of integer-encoded vectors."""
    basis: List[int] = []
    for vector in vectors:
        value = vector
        for pivot in basis:
            value = min(value, value ^ pivot)
        if value:
            basis.append(value)
            basis.sort(reverse=True)
    value = target
    for pivot in basis:
        value = min(value, value ^ pivot)
    return value == 0
