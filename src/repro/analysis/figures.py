"""Data generators for every table and figure in the paper's evaluation.

The generators are deliberately parameterised (code sizes, word counts, trial
counts) so that the benchmark suite can run them at laptop-friendly scales
while examples and ad-hoc studies can crank the parameters up.  Each function
documents which paper artefact it reproduces and what the expected *shape* of
the result is; EXPERIMENTS.md records the measured outcomes.
"""

from __future__ import annotations

import itertools
import time
import tracemalloc
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ValidationError
from repro.gf2 import GF2Vector
from repro.ecc import SystematicLinearCode, example_7_4_code, random_hamming_code
from repro.ecc.hamming import min_parity_bits
from repro.dram import ChipGeometry, DataRetentionModel, VENDOR_A, VENDOR_B, VENDOR_C
from repro.dram.retention import RetentionCalibration
from repro.einsim import (
    EinsimSimulator,
    UniformRandomInjector,
    bootstrap_confidence_interval,
    relative_probabilities,
)
from repro.core import (
    BeerExperiment,
    BeerSolver,
    ExperimentConfig,
    charged_patterns,
    expected_miscorrection_profile,
    one_charged_patterns,
)
from repro.core.beep import BeepProfiler, SimulatedWordUnderTest


#: Retention calibration used by figure generators that drive simulated chips;
#: it compresses the paper's minutes-long refresh windows into seconds so the
#: scaled-down chips produce comparable error rates quickly.
FAST_CHIP_RETENTION = DataRetentionModel(RetentionCalibration(1.0, 0.02, 60.0, 0.5))


# ---------------------------------------------------------------------------
# Figure 1 — per-bit post-correction error probability for different functions
# ---------------------------------------------------------------------------
def figure1_error_probability_data(
    num_data_bits: int = 32,
    num_functions: int = 3,
    bit_error_rate: float = 1e-4,
    num_words: int = 200_000,
    num_bootstrap: int = 200,
    seed: int = 0,
) -> Dict:
    """Reproduce Figure 1: relative per-bit post-correction error probability.

    Uniform-random pre-correction errors at ``bit_error_rate`` are pushed
    through ``num_functions`` different SEC Hamming functions of the same
    (n, k); the paper's point is that the post-correction distributions differ
    between functions even though the pre-correction distribution is flat.
    """
    rng = np.random.default_rng(seed)
    injector = UniformRandomInjector(bit_error_rate)
    dataword = GF2Vector.ones(num_data_bits)

    functions = [
        random_hamming_code(num_data_bits, rng=rng) for _ in range(num_functions)
    ]
    per_function = []
    for index, code in enumerate(functions):
        simulator = EinsimSimulator(code, seed=seed + index + 1)
        result = simulator.simulate(dataword, num_words, injector)
        counts = result.post_correction_error_counts.astype(float)
        relative = relative_probabilities(counts)
        intervals = [
            bootstrap_confidence_interval(
                _bernoulli_samples(counts[bit], num_words, rng),
                statistic=np.mean,
                num_resamples=num_bootstrap,
                rng=rng,
            )
            if counts[bit] > 0
            else None
            for bit in range(num_data_bits)
        ]
        per_function.append(
            {
                "function_index": index,
                "parity_columns": list(code.parity_column_ints),
                "relative_error_probability": relative.tolist(),
                "confidence_intervals": intervals,
            }
        )

    pre_correction = np.full(num_data_bits, 1.0 / num_data_bits)
    return {
        "num_data_bits": num_data_bits,
        "bit_error_rate": bit_error_rate,
        "num_words": num_words,
        "pre_correction_relative_probability": pre_correction.tolist(),
        "post_correction": per_function,
    }


def _bernoulli_samples(successes: float, trials: int, rng: np.random.Generator) -> np.ndarray:
    """A compact 0/1 sample vector with the observed success count (for bootstrap)."""
    del rng
    sample_size = min(trials, 2000)
    count = int(round(successes * sample_size / trials))
    samples = np.zeros(sample_size)
    samples[:count] = 1.0
    return samples


# ---------------------------------------------------------------------------
# Table 1 — error patterns / syndromes / outcomes for the Equation 3 codeword
# ---------------------------------------------------------------------------
def table1_outcome_data(
    code: Optional[SystematicLinearCode] = None,
    charged_positions: Sequence[int] = (2, 5, 6),
) -> List[Dict]:
    """Reproduce Table 1: all retention-error patterns of one stored codeword.

    ``charged_positions`` are the CHARGED codeword cells (the paper's
    Equation 3 example charges data bit 2 and parity bits 5 and 6).  For every
    subset of CHARGED cells that may fail, the entry lists the syndrome (as a
    combination of parity-check columns) and the decode outcome.
    """
    ecc = code if code is not None else example_7_4_code()
    rows = []
    for subset_size in range(len(charged_positions) + 1):
        for subset in itertools.combinations(sorted(charged_positions), subset_size):
            syndrome = ecc.syndrome_of_error_positions(subset)
            syndrome_position = ecc.syndrome_to_position(syndrome)
            if not subset:
                outcome = "no error"
            elif len(subset) == 1:
                outcome = "correctable"
            else:
                outcome = "uncorrectable"
            rows.append(
                {
                    "error_positions": list(subset),
                    "syndrome": syndrome.to_list(),
                    "syndrome_column_combination": [f"H*,{p}" for p in subset],
                    "syndrome_points_to": syndrome_position,
                    "outcome": outcome,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Table 2 — miscorrection profile of the Equation 1 example code
# ---------------------------------------------------------------------------
def table2_miscorrection_profile_data(
    code: Optional[SystematicLinearCode] = None,
) -> List[Dict]:
    """Reproduce Table 2: possible miscorrections per 1-CHARGED pattern."""
    ecc = code if code is not None else example_7_4_code()
    rows = []
    for pattern in one_charged_patterns(ecc.num_data_bits):
        (charged_bit,) = tuple(pattern.charged_bits)
        from repro.core import miscorrections_possible

        possible = miscorrections_possible(ecc, pattern)
        cells = []
        for bit in range(ecc.num_data_bits):
            if bit == charged_bit:
                cells.append("?")
            elif bit in possible:
                cells.append("1")
            else:
                cells.append("-")
        rows.append(
            {
                "pattern_id": charged_bit,
                "charged_bit": charged_bit,
                "possible_miscorrections": sorted(possible),
                "row_cells": cells,
            }
        )
    return sorted(rows, key=lambda row: -row["pattern_id"])


# ---------------------------------------------------------------------------
# Figure 3 — per-bit error maps per manufacturer
# ---------------------------------------------------------------------------
def figure3_manufacturer_profile_data(
    num_data_bits: int = 16,
    geometry: Optional[ChipGeometry] = None,
    refresh_windows_s: Sequence[float] = (30.0, 45.0, 60.0),
    rounds_per_window: int = 6,
    seed: int = 0,
) -> Dict[str, Dict]:
    """Reproduce Figure 3: 1-CHARGED error maps for one chip per manufacturer.

    Returns, per vendor, a (num_patterns x num_data_bits) matrix of observed
    post-correction error counts plus the ground-truth and recovered parity
    columns.  The expected shape: the three maps differ (different ECC
    functions), vendor A's looks unstructured while B's and C's show regular
    patterns.
    """
    chip_geometry = geometry if geometry is not None else ChipGeometry(32, 8)
    results: Dict[str, Dict] = {}
    for vendor in (VENDOR_A, VENDOR_B, VENDOR_C):
        chip = vendor.make_chip(
            num_data_bits=num_data_bits,
            geometry=chip_geometry,
            seed=seed,
            retention_model=FAST_CHIP_RETENTION,
        )
        config = ExperimentConfig(
            pattern_weights=(1,),
            refresh_windows_s=tuple(refresh_windows_s),
            rounds_per_window=rounds_per_window,
            threshold=0.0,
            discover_cell_encoding=vendor is VENDOR_C,
            discovery_pause_s=max(refresh_windows_s),
        )
        experiment = BeerExperiment(chip, config)
        cell_types = experiment.discover_cell_types() if config.discover_cell_encoding else {}
        counts = experiment.measure_counts(cell_types if cell_types else None)
        matrix = np.zeros((num_data_bits, num_data_bits), dtype=np.int64)
        for pattern in counts.patterns:
            (charged_bit,) = tuple(pattern.charged_bits)
            matrix[charged_bit] = counts.counts_for(pattern)
        results[vendor.name] = {
            "error_count_matrix": matrix,
            "ground_truth_columns": list(chip.code.parity_column_ints),
            "num_words_per_pattern": {
                str(sorted(p.charged_bits)): counts.words_observed(p) for p in counts.patterns
            },
        }
    return results


# ---------------------------------------------------------------------------
# Figure 4 — threshold filter separating miscorrections from noise
# ---------------------------------------------------------------------------
def figure4_threshold_data(
    num_data_bits: int = 16,
    refresh_windows_s: Sequence[float] = (20.0, 30.0, 40.0, 50.0, 60.0),
    rounds_per_window: int = 4,
    transient_fault_probability: float = 2e-4,
    seed: int = 1,
) -> Dict:
    """Reproduce Figure 4: per-bit miscorrection probability across windows.

    For a vendor-B style chip, every refresh window yields one per-bit
    miscorrection probability estimate (aggregated over all 1-CHARGED
    patterns).  The expected shape: bit positions split into a zero/near-zero
    group and a clearly non-zero group, with a threshold cleanly separating
    the two — which is what makes the threshold filter of Section 5.2 work.
    """
    chip = VENDOR_B.make_chip(
        num_data_bits=num_data_bits,
        geometry=ChipGeometry(32, 8),
        seed=seed,
        retention_model=FAST_CHIP_RETENTION,
        transient_fault_probability=transient_fault_probability,
    )
    per_window_probabilities = []
    for window in refresh_windows_s:
        config = ExperimentConfig(
            pattern_weights=(1,),
            refresh_windows_s=(window,),
            rounds_per_window=rounds_per_window,
            threshold=0.0,
            discover_cell_encoding=False,
        )
        counts = BeerExperiment(chip, config).measure_counts()
        numerator = np.zeros(num_data_bits)
        denominator = 0
        for pattern in counts.patterns:
            (charged_bit,) = tuple(pattern.charged_bits)
            raw = counts.counts_for(pattern).astype(float)
            raw[charged_bit] = 0.0  # CHARGED-bit errors are ambiguous
            numerator += raw
            denominator += counts.words_observed(pattern)
        per_window_probabilities.append(numerator / max(denominator, 1))

    stacked = np.vstack(per_window_probabilities)
    analytic = expected_miscorrection_profile(
        chip.code, one_charged_patterns(num_data_bits)
    )
    susceptible = set()
    for pattern in analytic.patterns:
        susceptible |= set(analytic.miscorrections(pattern))
    return {
        "refresh_windows_s": list(refresh_windows_s),
        "per_bit_probability_by_window": stacked,
        "per_bit_min": stacked.min(axis=0).tolist(),
        "per_bit_median": np.median(stacked, axis=0).tolist(),
        "per_bit_max": stacked.max(axis=0).tolist(),
        "analytically_susceptible_bits": sorted(susceptible),
        "suggested_threshold": 1e-3,
    }


# ---------------------------------------------------------------------------
# Figure 5 — number of candidate functions per pattern set
# ---------------------------------------------------------------------------
def figure5_uniqueness_data(
    dataword_lengths: Sequence[int] = (4, 6, 8, 11, 16),
    codes_per_length: int = 3,
    pattern_sets: Optional[Dict[str, Tuple[int, ...]]] = None,
    max_solutions: int = 25,
    seed: int = 0,
) -> Dict:
    """Reproduce Figure 5: BEER solution counts for different test-pattern sets.

    For every dataword length and every pattern set (1-, 2-, 3-, and
    {1,2}-CHARGED), random SEC Hamming functions are profiled analytically and
    the BEER solver counts how many candidate functions reproduce the profile.
    Expected shape: the {1,2}-CHARGED set is always unique; single-weight sets
    can be ambiguous for shortened codes; full-length codes (k = 4, 11, ...)
    are unique for every set.
    """
    sets = pattern_sets or {
        "1-CHARGED": (1,),
        "2-CHARGED": (2,),
        "3-CHARGED": (3,),
        "{1,2}-CHARGED": (1, 2),
    }
    rng = np.random.default_rng(seed)
    results: Dict[str, Dict[int, Dict[str, float]]] = {name: {} for name in sets}
    for num_data_bits in dataword_lengths:
        codes = [random_hamming_code(num_data_bits, rng=rng) for _ in range(codes_per_length)]
        for set_name, weights in sets.items():
            counts = []
            for code in codes:
                weights_in_range = [w for w in weights if w <= num_data_bits]
                profile = expected_miscorrection_profile(
                    code, list(charged_patterns(num_data_bits, weights_in_range))
                )
                solution = BeerSolver(num_data_bits).solve(
                    profile, max_solutions=max_solutions
                )
                counts.append(solution.num_solutions)
            results[set_name][num_data_bits] = {
                "min": float(np.min(counts)),
                "median": float(np.median(counts)),
                "max": float(np.max(counts)),
            }
    return {
        "dataword_lengths": list(dataword_lengths),
        "codes_per_length": codes_per_length,
        "max_solutions_cap": max_solutions,
        "solution_counts": results,
    }


# ---------------------------------------------------------------------------
# Figure 6 — BEER solver runtime and memory scaling
# ---------------------------------------------------------------------------
def figure6_runtime_data(
    dataword_lengths: Sequence[int] = (4, 8, 16, 32),
    codes_per_length: int = 2,
    pattern_weights: Tuple[int, ...] = (1, 2),
    seed: int = 0,
) -> Dict:
    """Reproduce Figure 6: solver runtime / memory vs dataword length.

    Reports, per dataword length, the time to find the first solution
    ("determine function"), the time for the exhaustive search ("check
    uniqueness"), and the peak additional memory during solving.  Expected
    shape: all three grow with code length, with the uniqueness check
    dominating total runtime — absolute numbers are far below the paper's Z3
    figures because the specialised solver exploits the constraint structure.
    """
    rng = np.random.default_rng(seed)
    rows = []
    for num_data_bits in dataword_lengths:
        determine_times = []
        uniqueness_times = []
        peak_memories = []
        for _ in range(codes_per_length):
            code = random_hamming_code(num_data_bits, rng=rng)
            profile = expected_miscorrection_profile(
                code, list(charged_patterns(num_data_bits, list(pattern_weights)))
            )
            solver = BeerSolver(num_data_bits)

            start = time.perf_counter()
            first = solver.solve(profile, max_solutions=1)
            determine_times.append(time.perf_counter() - start)

            tracemalloc.start()
            start = time.perf_counter()
            exhaustive = solver.solve(profile)
            uniqueness_times.append(time.perf_counter() - start)
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            peak_memories.append(peak / (1024.0 * 1024.0))
            assert first.num_solutions >= 1 and exhaustive.num_solutions >= 1
        rows.append(
            {
                "dataword_length": num_data_bits,
                "num_parity_bits": min_parity_bits(num_data_bits),
                "determine_function_seconds": float(np.median(determine_times)),
                "check_uniqueness_seconds": float(np.median(uniqueness_times)),
                "total_seconds": float(
                    np.median(np.array(determine_times) + np.array(uniqueness_times))
                ),
                "peak_memory_mib": float(np.median(peak_memories)),
            }
        )
    return {"pattern_weights": list(pattern_weights), "rows": rows}


# ---------------------------------------------------------------------------
# Figures 8 and 9 — BEEP success rate
# ---------------------------------------------------------------------------
def _beep_success_rate(
    num_data_bits: int,
    num_errors: int,
    num_passes: int,
    per_bit_probability: float,
    codewords: int,
    seed: int,
) -> float:
    code = random_hamming_code(num_data_bits, rng=np.random.default_rng(seed))
    profiler = BeepProfiler(code)
    rng = np.random.default_rng(seed + 1)
    successes = 0
    for trial in range(codewords):
        true_errors = sorted(
            rng.choice(code.codeword_length, size=num_errors, replace=False).tolist()
        )
        word = SimulatedWordUnderTest(
            code,
            true_errors,
            per_bit_probability=per_bit_probability,
            rng=np.random.default_rng(seed + 100 + trial),
        )
        result = profiler.profile(word, num_passes=num_passes)
        if set(result.identified_errors) == set(true_errors):
            successes += 1
    return successes / codewords


def figure8_beep_pass_data(
    codeword_lengths: Sequence[int] = (31, 63, 127),
    error_counts: Sequence[int] = (2, 3, 4, 5),
    passes: Sequence[int] = (1, 2),
    codewords_per_point: int = 20,
    seed: int = 0,
) -> Dict:
    """Reproduce Figure 8: BEEP success rate for 1 vs 2 passes.

    ``codeword_lengths`` are total lengths n (the paper uses 31/63/127/255);
    the corresponding dataword length is n - r.  Expected shape: success rate
    increases with codeword length and with a second pass.
    """
    rows = []
    for codeword_length in codeword_lengths:
        num_data_bits = _data_bits_for_codeword_length(codeword_length)
        for num_errors in error_counts:
            for num_passes in passes:
                rate = _beep_success_rate(
                    num_data_bits,
                    num_errors,
                    num_passes,
                    per_bit_probability=1.0,
                    codewords=codewords_per_point,
                    seed=seed + codeword_length,
                )
                rows.append(
                    {
                        "codeword_length": codeword_length,
                        "dataword_length": num_data_bits,
                        "errors_injected": num_errors,
                        "passes": num_passes,
                        "success_rate": rate,
                    }
                )
    return {"codewords_per_point": codewords_per_point, "rows": rows}


def figure9_beep_probability_data(
    codeword_lengths: Sequence[int] = (31, 63, 127),
    error_counts: Sequence[int] = (2, 3, 4, 5),
    per_bit_probabilities: Sequence[float] = (1.0, 0.75, 0.5, 0.25),
    codewords_per_point: int = 15,
    seed: int = 0,
) -> Dict:
    """Reproduce Figure 9: BEEP success rate vs per-bit error probability.

    Expected shape: success degrades as the per-bit error probability drops,
    and longer codewords are more resilient.
    """
    rows = []
    for codeword_length in codeword_lengths:
        num_data_bits = _data_bits_for_codeword_length(codeword_length)
        for probability in per_bit_probabilities:
            for num_errors in error_counts:
                rate = _beep_success_rate(
                    num_data_bits,
                    num_errors,
                    num_passes=1,
                    per_bit_probability=probability,
                    codewords=codewords_per_point,
                    seed=seed + codeword_length,
                )
                rows.append(
                    {
                        "codeword_length": codeword_length,
                        "dataword_length": num_data_bits,
                        "errors_injected": num_errors,
                        "per_bit_error_probability": probability,
                        "success_rate": rate,
                    }
                )
    return {"codewords_per_point": codewords_per_point, "rows": rows}


def _data_bits_for_codeword_length(codeword_length: int) -> int:
    """Return the dataword length of the SEC code with total length ``n``."""
    num_parity_bits = 2
    while True:
        num_data_bits = codeword_length - num_parity_bits
        if num_data_bits < 1:
            raise ValidationError(f"no SEC code has codeword length {codeword_length}")
        if min_parity_bits(num_data_bits) <= num_parity_bits:
            return num_data_bits
        num_parity_bits += 1
