"""Reference-vs-packed GF(2) backend comparison data.

Generates the measurements recorded in ``BENCH_gf2_backends.json``: wall-clock
time of the two simulation backends on (a) the bulk-decode microbenchmark the
acceptance criteria target — 10k words of a (136, 128) code — and (b)
fig6-style solver-input generation, i.e. measuring the Monte-Carlo
miscorrection profiles that the BEER solver consumes.  Every timed pair is
also checked for bit-exact output equality, so the numbers can never drift
apart from correctness.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence

import numpy as np

from repro.ecc import random_hamming_code
from repro.einsim.engine import BACKENDS, bulk_decode
from repro.core import MonteCarloCampaign, charged_patterns


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bulk_decode_comparison_data(
    num_words: int = 10_000,
    num_data_bits: int = 128,
    repeats: int = 5,
    seed: int = 0,
) -> Dict:
    """Time ``bulk_decode`` on both backends over one batch of random words.

    With the defaults this is exactly the acceptance microbenchmark: 10k words
    of a (136, 128) SEC Hamming code.  Returns per-backend best-of-``repeats``
    seconds, the speedup, and whether the outputs matched bit for bit.
    """
    rng = np.random.default_rng(seed)
    code = random_hamming_code(num_data_bits, rng=rng)
    received = rng.integers(
        0, 2, size=(num_words, code.codeword_length)
    ).astype(np.uint8)
    # Warm the per-code caches so the timing isolates the decode kernels.
    outputs = {
        backend: bulk_decode(code, received, backend) for backend in BACKENDS
    }
    seconds = {
        backend: _best_of(repeats, lambda b=backend: bulk_decode(code, received, b))
        for backend in BACKENDS
    }
    return {
        "codeword_length": code.codeword_length,
        "num_data_bits": code.num_data_bits,
        "num_words": num_words,
        "repeats": repeats,
        "reference_seconds": seconds["reference"],
        "packed_seconds": seconds["packed"],
        "speedup": seconds["reference"] / max(seconds["packed"], 1e-12),
        "outputs_identical": bool(
            np.array_equal(outputs["reference"], outputs["packed"])
        ),
    }


def solver_input_comparison_data(
    dataword_lengths: Sequence[int] = (8, 16, 32),
    words_per_pattern: int = 2_000,
    bit_error_rate: float = 0.5,
    max_patterns: Optional[int] = 60,
    seed: int = 0,
) -> Dict:
    """Time fig6-style solver-input generation on both backends.

    For each dataword length, a Monte-Carlo miscorrection profile (the BEER
    solver's input) is measured through the chunked campaign runner with the
    reference and the packed backend; the two profiles must be identical.
    """
    rows = []
    for num_data_bits in dataword_lengths:
        code = random_hamming_code(
            num_data_bits, rng=np.random.default_rng(seed + num_data_bits)
        )
        patterns = list(charged_patterns(num_data_bits, [1, 2]))
        if max_patterns is not None:
            patterns = patterns[:max_patterns]
        seconds = {}
        profiles = {}
        for backend in BACKENDS:
            campaign = MonteCarloCampaign(
                code, chunk_size=words_per_pattern, backend=backend, base_seed=seed
            )
            start = time.perf_counter()
            profiles[backend] = campaign.miscorrection_profile(
                patterns, bit_error_rate, words_per_pattern
            )
            seconds[backend] = time.perf_counter() - start
        rows.append(
            {
                "dataword_length": num_data_bits,
                "codeword_length": code.codeword_length,
                "num_patterns": len(patterns),
                "words_per_pattern": words_per_pattern,
                "reference_seconds": seconds["reference"],
                "packed_seconds": seconds["packed"],
                "speedup": seconds["reference"] / max(seconds["packed"], 1e-12),
                "profiles_identical": profiles["reference"] == profiles["packed"],
            }
        )
    return {"rows": rows}


def gf2_backend_comparison_data(
    num_words: int = 10_000,
    num_data_bits: int = 128,
    dataword_lengths: Sequence[int] = (8, 16, 32),
    words_per_pattern: int = 2_000,
    repeats: int = 5,
    seed: int = 0,
) -> Dict:
    """Full backend comparison: bulk-decode microbenchmark + solver inputs."""
    return {
        "bulk_decode": bulk_decode_comparison_data(
            num_words=num_words,
            num_data_bits=num_data_bits,
            repeats=repeats,
            seed=seed,
        ),
        "solver_input": solver_input_comparison_data(
            dataword_lengths=dataword_lengths,
            words_per_pattern=words_per_pattern,
            seed=seed,
        ),
    }
