"""Typed loading and reporting over persistent campaign stores.

The campaign store keeps raw JSON records; analysis code wants typed results
(:class:`~repro.einsim.simulator.SimulationResult`) and aggregate summaries.
These helpers bridge the two — they power ``beer-tool scenario report`` and
give figure/notebook code a one-call path from a store directory to numbers.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from repro.gf2 import GF2Vector
from repro.einsim.simulator import SimulationResult
from repro.scenarios.sweep import resolve_dataword
from repro.store import CampaignStore, ResultRecord


def load_simulation_results(
    store: CampaignStore, **config_filters
) -> List[Tuple[Dict[str, Any], SimulationResult]]:
    """Rehydrate every matching ``einsim`` record into a typed result.

    Returns ``(config, SimulationResult)`` pairs in store order; filters are
    equality constraints on top-level config fields (e.g.
    ``scenario="burst"``, ``backend="packed"``).  Filtering happens against
    the store's index, so on a sharded store only the *matching* records'
    payloads are ever deserialised.
    """
    pairs = []
    for record in store.query(kind="einsim", **config_filters):
        pairs.append((record.config, _to_simulation_result(record)))
    return pairs


def campaign_report_data(store: CampaignStore) -> Dict[str, Any]:
    """Aggregate a campaign store into per-scenario summary rows.

    For ``einsim`` cells: cells, words simulated, uncorrectable/miscorrected
    word fractions, and the mean per-data-bit post-correction error rate.
    ``beer`` cells are summarised per vendor with their profile sizes.
    """
    scenario_rows: Dict[str, Dict[str, Any]] = {}
    beer_rows: Dict[str, Dict[str, Any]] = {}
    family_sets: Dict[str, set] = {}
    for record in store.records():
        config, result = record.config, record.result
        if config.get("kind") == "einsim":
            row = scenario_rows.setdefault(
                config["scenario"],
                {
                    "scenario": config["scenario"],
                    "cells": 0,
                    "num_words": 0,
                    "uncorrectable_words": 0,
                    "miscorrected_words": 0,
                    "detected_words": 0,
                    "post_correction_errors": 0,
                    "data_bits_observed": 0,
                },
            )
            row["cells"] += 1
            row["num_words"] += result["num_words"]
            row["uncorrectable_words"] += result["uncorrectable_words"]
            row["miscorrected_words"] += result["miscorrected_words"]
            # Older stores predate the DUE path and code families; default to
            # zero detections and the historical single family.
            row["detected_words"] += result.get("detected_words", 0)
            family_sets.setdefault(config["scenario"], set()).add(
                result.get("code_family", "sec-hamming")
            )
            row["post_correction_errors"] += int(
                np.sum(result["post_correction_error_counts"])
            )
            row["data_bits_observed"] += (
                result["num_words"] * result["num_data_bits"]
            )
        elif config.get("kind") == "beer":
            row = beer_rows.setdefault(
                config["vendor"],
                {
                    "vendor": config["vendor"],
                    "cells": 0,
                    "num_patterns": 0,
                    "total_miscorrections": 0,
                    "solved_cells": 0,
                    "sat_conflicts": 0,
                    "sat_decisions": 0,
                    "sat_propagations": 0,
                },
            )
            row["cells"] += 1
            row["num_patterns"] += result["num_patterns"]
            row["total_miscorrections"] += result["total_miscorrections"]
            # Cells run with solve=True carry the incremental CDCL solver's
            # statistics; aggregate them so per-campaign SAT effort is
            # visible without re-running anything.
            stats = result.get("solver_stats")
            if stats:
                row["solved_cells"] += 1
                row["sat_conflicts"] += int(stats.get("conflicts", 0))
                row["sat_decisions"] += int(stats.get("decisions", 0))
                row["sat_propagations"] += int(stats.get("propagations", 0))

    for name, row in scenario_rows.items():
        words = max(row["num_words"], 1)
        bits = max(row["data_bits_observed"], 1)
        row["uncorrectable_fraction"] = row["uncorrectable_words"] / words
        row["miscorrected_fraction"] = row["miscorrected_words"] / words
        row["detected_fraction"] = row["detected_words"] / words
        row["post_correction_ber"] = row["post_correction_errors"] / bits
        row["code_families"] = sorted(family_sets.get(name, ()))

    return {
        "num_records": len(store),
        "scenarios": [scenario_rows[name] for name in sorted(scenario_rows)],
        "beer_campaigns": [beer_rows[name] for name in sorted(beer_rows)],
    }


def _to_simulation_result(record: ResultRecord) -> SimulationResult:
    config, result = record.config, record.result
    dataword_bits = resolve_dataword(config["dataword"], result["num_data_bits"])
    return SimulationResult(
        dataword=GF2Vector(dataword_bits),
        num_words=result["num_words"],
        post_correction_error_counts=np.asarray(
            result["post_correction_error_counts"], dtype=np.int64
        ),
        pre_correction_error_counts=np.asarray(
            result["pre_correction_error_counts"], dtype=np.int64
        ),
        uncorrectable_words=result["uncorrectable_words"],
        miscorrected_words=result["miscorrected_words"],
        miscorrection_positions=tuple(result["miscorrection_positions"]),
        detected_words=result.get("detected_words", 0),
    )
