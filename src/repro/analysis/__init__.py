"""Figure/table data generators and analytical models.

Each public function reproduces the data behind one of the paper's tables or
figures (see DESIGN.md for the experiment index).  The functions return plain
Python/numpy structures so that benchmarks, tests, and examples can render
them however they like (the benchmarks print them as ASCII tables).
"""

from repro.analysis.figures import (
    figure1_error_probability_data,
    figure3_manufacturer_profile_data,
    figure4_threshold_data,
    figure5_uniqueness_data,
    figure6_runtime_data,
    figure8_beep_pass_data,
    figure9_beep_probability_data,
    table1_outcome_data,
    table2_miscorrection_profile_data,
)
from repro.analysis.backends import (
    bulk_decode_comparison_data,
    gf2_backend_comparison_data,
    solver_input_comparison_data,
)
from repro.analysis.campaigns import campaign_report_data, load_simulation_results
from repro.analysis.runtime import ExperimentRuntimeModel
from repro.analysis.secondary_ecc import SecondaryEccDesigner, SecondaryEccPlan

__all__ = [
    "figure1_error_probability_data",
    "figure3_manufacturer_profile_data",
    "figure4_threshold_data",
    "figure5_uniqueness_data",
    "figure6_runtime_data",
    "figure8_beep_pass_data",
    "figure9_beep_probability_data",
    "table1_outcome_data",
    "table2_miscorrection_profile_data",
    "bulk_decode_comparison_data",
    "gf2_backend_comparison_data",
    "solver_input_comparison_data",
    "ExperimentRuntimeModel",
    "SecondaryEccDesigner",
    "SecondaryEccPlan",
    "campaign_report_data",
    "load_simulation_results",
]
