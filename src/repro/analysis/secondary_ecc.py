"""Secondary (rank-level) ECC co-design using a known on-die ECC function.

Use case 7.2.1 of the paper: once BEER has revealed the on-die ECC function, a
system designer can predict which data bits the on-die ECC makes *more*
error-prone (through miscorrections) and bias a second level of protection —
e.g. rank-level ECC in the memory controller — towards those bits.

The designer here produces a simple, quantitative artefact: the per-bit
post-correction error probability under a given raw bit error rate, and a
recommended set of bits to cover with the strongest secondary protection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.gf2 import GF2Vector
from repro.ecc.code import SystematicLinearCode
from repro.einsim import EinsimSimulator, UniformRandomInjector


@dataclass(frozen=True)
class SecondaryEccPlan:
    """Recommendation for a secondary error-mitigation mechanism."""

    #: Per-data-bit post-correction error probability under the studied RBER.
    per_bit_error_probability: List[float]
    #: Data bits ranked from most to least error-prone.
    bits_by_vulnerability: List[int]
    #: The bits recommended for asymmetric (stronger) protection.
    protected_bits: List[int]
    #: Fraction of all observed post-correction errors covered by the plan.
    coverage: float

    @property
    def num_protected_bits(self) -> int:
        """Number of bits receiving stronger protection."""
        return len(self.protected_bits)


class SecondaryEccDesigner:
    """Derives an asymmetric secondary-protection plan from an on-die ECC function."""

    def __init__(self, code: SystematicLinearCode, seed: Optional[int] = 0):
        self._code = code
        self._seed = seed

    @property
    def code(self) -> SystematicLinearCode:
        """The on-die ECC function (e.g. recovered by BEER)."""
        return self._code

    def characterise(
        self,
        bit_error_rate: float,
        num_words: int = 100_000,
        dataword: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Monte-Carlo estimate of the per-data-bit post-correction error probability."""
        simulator = EinsimSimulator(self._code, seed=self._seed)
        word = (
            GF2Vector(list(dataword))
            if dataword is not None
            else GF2Vector.ones(self._code.num_data_bits)
        )
        result = simulator.simulate(word, num_words, UniformRandomInjector(bit_error_rate))
        return result.post_correction_error_probabilities

    def plan(
        self,
        bit_error_rate: float,
        protection_budget_bits: int,
        num_words: int = 100_000,
    ) -> SecondaryEccPlan:
        """Recommend which data bits the secondary ECC should protect most strongly.

        ``protection_budget_bits`` is how many data bits the secondary
        mechanism can afford to cover asymmetrically (e.g. how many bits map
        onto the strongest symbols of a rank-level Reed-Solomon layout).
        """
        if protection_budget_bits < 0 or protection_budget_bits > self._code.num_data_bits:
            raise ValidationError("protection budget must lie within the dataword length")
        probabilities = self.characterise(bit_error_rate, num_words)
        ranked = list(np.argsort(-probabilities))
        protected = sorted(int(bit) for bit in ranked[:protection_budget_bits])
        total = float(probabilities.sum())
        coverage = (
            float(probabilities[protected].sum()) / total if total > 0 else 0.0
        )
        return SecondaryEccPlan(
            per_bit_error_probability=[float(p) for p in probabilities],
            bits_by_vulnerability=[int(bit) for bit in ranked],
            protected_bits=protected,
            coverage=coverage,
        )
