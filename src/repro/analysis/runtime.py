"""Analytical experiment-runtime model (paper Section 6.3).

The wall-clock cost of a BEER campaign on real hardware is dominated by the
refresh pauses themselves: the chip must actually sit un-refreshed for each
tested window, while reading the whole chip takes only milliseconds.  The
paper therefore estimates total runtime as the sum of the swept refresh
windows and notes that testing parallelises perfectly across chips of the
same model (they share one ECC function).
"""

from __future__ import annotations

from repro.exceptions import ValidationError
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class ExperimentRuntimeModel:
    """Analytical model of a real-chip BEER campaign's wall-clock time.

    Parameters mirror Section 6.3: reading one full chip over the DRAM bus
    takes ``chip_read_seconds`` (168 ms for a 2 GiB LPDDR4-3200 chip), writing
    takes about as long, and each tested refresh window costs its own length.
    """

    chip_read_seconds: float = 0.168
    chip_write_seconds: float = 0.168

    def single_window_seconds(self, refresh_window_s: float) -> float:
        """Cost of testing one refresh window once (write + wait + read)."""
        if refresh_window_s < 0:
            raise ValidationError("refresh window must be non-negative")
        return self.chip_write_seconds + refresh_window_s + self.chip_read_seconds

    def sweep_seconds(self, refresh_windows_s: Sequence[float], rounds_per_window: int = 1) -> float:
        """Cost of sweeping a set of refresh windows on a single chip."""
        if rounds_per_window < 1:
            raise ValidationError("at least one round per window is required")
        return sum(
            self.single_window_seconds(window) * rounds_per_window
            for window in refresh_windows_s
        )

    def paper_sweep_seconds(self) -> float:
        """The paper's sweep: 2 to 22 minutes in 1-minute steps (Section 6.3).

        The paper reports this as a combined 4.2 hours of testing per chip.
        """
        windows = [60.0 * minutes for minutes in range(2, 23)]
        return self.sweep_seconds(windows)

    def parallel_sweep_seconds(
        self,
        refresh_windows_s: Sequence[float],
        num_chips: int,
        rounds_per_window: int = 1,
    ) -> float:
        """Wall-clock time when windows are distributed across identical chips.

        Chips of the same model number share the same ECC function (paper
        Section 5.1.3), so different chips can test different windows at the
        same time; the makespan is determined by a greedy longest-first
        assignment of windows to chips.
        """
        if num_chips < 1:
            raise ValidationError("at least one chip is required")
        durations = sorted(
            (
                self.single_window_seconds(window) * rounds_per_window
                for window in refresh_windows_s
            ),
            reverse=True,
        )
        loads = [0.0] * num_chips
        for duration in durations:
            loads[loads.index(min(loads))] += duration
        return max(loads) if durations else 0.0

    def speedup_from_parallelism(
        self, refresh_windows_s: Sequence[float], num_chips: int
    ) -> float:
        """Serial-to-parallel runtime ratio for a given chip count."""
        serial = self.sweep_seconds(refresh_windows_s)
        parallel = self.parallel_sweep_seconds(refresh_windows_s, num_chips)
        if parallel == 0:
            return 1.0
        return serial / parallel
