"""Reverse engineering cell encodings and the ECC dataword layout.

Before BEER can craft test patterns it needs two pieces of information that
DRAM datasheets do not provide (paper Sections 5.1.1 and 5.1.2):

* which cells are true-cells and which are anti-cells, and
* which byte addresses share an ECC dataword.

This example runs both discovery procedures against a simulated manufacturer-C
chip (the vendor that mixes true- and anti-cell row blocks) and checks the
results against the simulator's ground truth.

Run with::

    python examples/dataword_layout_discovery.py
"""

from collections import Counter

from repro import ChipGeometry, DataRetentionModel
from repro.core import discover_cell_types, discover_dataword_layout
from repro.core.layout_re import estimate_dataword_bits
from repro.dram import CellType, VENDOR_C
from repro.dram.retention import RetentionCalibration


FAST_RETENTION = DataRetentionModel(RetentionCalibration(1.0, 0.02, 60.0, 0.6))


def main() -> None:
    chip = VENDOR_C.make_chip(
        num_data_bits=16,
        geometry=ChipGeometry(num_rows=28, words_per_row=8),
        seed=5,
        retention_model=FAST_RETENTION,
    )
    print("Simulated a manufacturer-C chip (alternating true/anti-cell row blocks).\n")

    # Section 5.1.1: data-0 / data-1 retention tests reveal the cell encoding.
    cell_types = discover_cell_types(chip, refresh_pause_s=90.0)
    tally = Counter(value.value for value in cell_types.values())
    print(f"Discovered cell encodings per row: {dict(tally)}")
    ground_truth = VENDOR_C.cell_layout()
    correct = sum(
        1
        for row, value in cell_types.items()
        if value is ground_truth.cell_type_for_row(row)
    )
    print(f"Rows classified correctly vs ground truth: {correct}/{len(cell_types)}\n")

    # Section 5.1.2: one-charged-byte tests reveal which bytes share a word.
    groups = discover_dataword_layout(
        chip,
        refresh_pause_s=90.0,
        cell_types=cell_types,
        regions_to_test=range(0, 24),
    )
    print(f"Byte offsets grouped into ECC words (per region): {groups}")
    print(f"Estimated ECC dataword length: {estimate_dataword_bits(groups)} bits")
    print(f"Chip ground truth: {chip.num_data_bits}-bit datawords, "
          f"{chip.word_layout.words_per_region} words interleaved per "
          f"{chip.word_layout.region_bytes}-byte region")

    anti_rows = [row for row, value in cell_types.items() if value is CellType.ANTI_CELL]
    print(f"\nAnti-cell rows discovered: {anti_rows}")


if __name__ == "__main__":
    main()
