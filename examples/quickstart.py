"""Quickstart: recover an unknown on-die ECC function with BEER.

This is the smallest possible end-to-end use of the library: we pretend a
16-bit-dataword SEC Hamming code hidden inside a DRAM chip is unknown, build
its miscorrection profile from the {1,2}-CHARGED test patterns, and let the
BEER solver recover the parity-check matrix.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import (
    BeerSolver,
    charged_patterns,
    codes_equivalent,
    expected_miscorrection_profile,
    random_hamming_code,
)


def main() -> None:
    # 1. The "unknown" on-die ECC function.  In a real campaign this lives in
    #    the DRAM chip; here we sample a representative SEC Hamming code.
    secret_code = random_hamming_code(16, rng=np.random.default_rng(seed=2024))
    print("A DRAM vendor secretly chose a (21, 16) SEC Hamming code.")

    # 2. The miscorrection profile BEER would measure: for every {1,2}-CHARGED
    #    test pattern, which DISCHARGED data bits can exhibit miscorrections.
    patterns = list(charged_patterns(16, [1, 2]))
    profile = expected_miscorrection_profile(secret_code, patterns)
    print(
        f"Measured a miscorrection profile over {len(patterns)} test patterns "
        f"({profile.total_miscorrections} (pattern, bit) miscorrection entries)."
    )

    # 3. Solve for every ECC function consistent with the profile.
    solver = BeerSolver(num_data_bits=16)
    solution = solver.solve(profile)
    print(
        f"BEER explored {solution.nodes_visited} partial assignments in "
        f"{solution.runtime_seconds:.3f} s and found {solution.num_solutions} "
        "candidate function(s)."
    )

    # 4. The unique solution is the vendor's code (up to parity-bit labelling).
    recovered = solution.code
    assert codes_equivalent(recovered, secret_code)
    print("Recovered parity-check matrix H = [P | I]:")
    print(recovered.parity_check_matrix)
    print("\nSuccess: the recovered function matches the vendor's secret code.")


if __name__ == "__main__":
    main()
