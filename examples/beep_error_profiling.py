"""BEEP: locating pre-correction error-prone cells bit-exactly (Section 7.1).

Scenario: a test engineer has already recovered a chip's on-die ECC function
with BEER and now wants to know *which physical cells* are error-prone —
including cells in the parity bits that are invisible at the chip interface.
BEEP crafts targeted test patterns, observes which miscorrections occur, and
reconstructs the raw error locations from each miscorrection.

Run with::

    python examples/beep_error_profiling.py
"""

import numpy as np

from repro import BeepProfiler, random_hamming_code
from repro.core.beep import SimulatedWordUnderTest


def main() -> None:
    rng = np.random.default_rng(42)

    # The on-die ECC function (known, e.g. recovered earlier with BEER).
    code = random_hamming_code(57, rng=rng)  # (63, 57) SEC Hamming code
    print(f"On-die ECC function: ({code.codeword_length}, {code.num_data_bits}) SEC Hamming code.")

    # Ground truth: a handful of weak cells somewhere in the codeword,
    # including one inside the invisible parity bits.
    weak_cells = sorted(
        rng.choice(code.codeword_length, size=4, replace=False).tolist()
    )
    parity_cell = code.num_data_bits + 2
    if parity_cell not in weak_cells:
        weak_cells[-1] = parity_cell
        weak_cells.sort()
    word = SimulatedWordUnderTest(
        code, weak_cells, per_bit_probability=0.9, rng=np.random.default_rng(7)
    )
    print(f"Ground truth (hidden from BEEP): weak cells at positions {weak_cells}.")
    print(f"Note that position {parity_cell} is a parity bit the host can never read.\n")

    # Run BEEP.
    profiler = BeepProfiler(code)
    result = profiler.profile(word, num_passes=2)
    identified = sorted(result.identified_errors)

    print(f"BEEP tested {result.patterns_tested} crafted patterns over "
          f"{result.passes_used} passes and observed "
          f"{result.miscorrections_observed} miscorrections.")
    print(f"Identified error-prone cells: {identified}")

    missed = sorted(set(weak_cells) - set(identified))
    spurious = sorted(set(identified) - set(weak_cells))
    print(f"Missed cells:   {missed if missed else 'none'}")
    print(f"Spurious cells: {spurious if spurious else 'none'}")
    if set(identified) == set(weak_cells):
        print("\nSuccess: BEEP recovered the exact pre-correction error locations, "
              "parity bits included.")


if __name__ == "__main__":
    main()
