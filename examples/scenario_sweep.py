"""Declarative fault-scenario sweep with a persistent, resumable store.

Expands a sweep spec — error mechanisms × BERs × code sizes × backends — into
a deterministic experiment matrix, runs it through the chunked Monte-Carlo
campaign machinery, and persists every cell in a content-addressed campaign
store.  Running the script a second time serves the whole matrix from cache;
deleting the store directory starts fresh.  Pass a job count to fan the
cache-miss cells out over worker processes — the store bytes are identical
either way.

Run me:
    PYTHONPATH=src python examples/scenario_sweep.py [store_dir] [jobs]
"""

import sys

from repro.analysis import campaign_report_data
from repro.scenarios import SweepRunner, SweepSpec
from repro.store import CampaignStore

SWEEP = {
    "name": "error-mechanism-matrix",
    "num_words": 20_000,
    "chunk_size": 4096,
    "seeds": [0],
    "backends": ["packed"],
    "codes": [{"data_bits": 16}, {"data_bits": 32, "code_seed": 7}],
    "scenarios": [
        # The paper's core mechanisms ...
        {"name": "uniform-random", "params": {"bit_error_rate": [1e-3, 1e-2]}},
        {"name": "data-retention-true", "params": {"bit_error_rate": [1e-3, 1e-2]}},
        {"name": "data-retention-mixed", "params": {"bit_error_rate": 1e-2}},
        # ... and the Section 7.1.5-style extensions beyond retention faults.
        {"name": "burst", "params": {"burst_probability": 0.01, "burst_length": [2, 4]}},
        {"name": "row-stripe", "params": {"row_probability": 0.02}},
        {
            "name": "transient-stuck-overlay",
            "params": {"transient_probability": 1e-3, "stuck_fraction": 1e-2},
        },
    ],
}


def main() -> None:
    store_dir = sys.argv[1] if len(sys.argv) > 1 else "scenario_campaign"
    jobs = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    spec = SweepSpec.from_dict(SWEEP)
    store = CampaignStore(store_dir)
    runner = SweepRunner(store=store, jobs=jobs)

    print(f"sweep {spec.name!r}: {spec.num_cells} cells -> store {store_dir!r} "
          f"(jobs={jobs})")
    report = runner.run(
        spec,
        progress=lambda outcome: print(
            f"  [{'cache' if outcome.cached else 'sim  '}] "
            f"{outcome.record.key[:12]} "
            f"{outcome.record.config.get('scenario', outcome.cell.kind)}"
        ),
    )
    print(f"done: {report.simulated} simulated, {report.cached} from cache\n")

    data = campaign_report_data(store)
    print(f"{'scenario':<24} {'cells':>5} {'words':>8} {'post-BER':>10} "
          f"{'uncorrectable':>14} {'miscorrected':>13}")
    for row in data["scenarios"]:
        print(f"{row['scenario']:<24} {row['cells']:>5} {row['num_words']:>8} "
              f"{row['post_correction_ber']:>10.3e} "
              f"{row['uncorrectable_fraction']:>13.3%} "
              f"{row['miscorrected_fraction']:>12.3%}")
    print("\nre-run me: every cell above is now a cache hit.")


if __name__ == "__main__":
    main()
