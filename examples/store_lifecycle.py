"""Campaign-store layout tour: sweep, migrate, compact, verify, gc.

Runs a small sweep into a classic single-file (v1) store, migrates it to
the sharded (v2) layout, proves the caching contract survived (re-running
the sweep is 100% cache hits against the migrated store), compacts and
verifies it, then migrates back and shows the round trip reproduced the
original ``records.jsonl`` byte for byte.

Run me:
    PYTHONPATH=src python examples/store_lifecycle.py [store_dir]
"""

import sys

from repro.scenarios import SweepRunner, SweepSpec
from repro.store import (
    SHARDED,
    SINGLE_FILE,
    CampaignStore,
    store_compact,
    store_gc,
    store_migrate,
    store_stat,
    store_verify,
)

SWEEP = {
    "name": "store-lifecycle-demo",
    "num_words": 5_000,
    "chunk_size": 2048,
    "seeds": [0, 1],
    "backends": ["packed"],
    "codes": [{"data_bits": 16}, {"data_bits": 32}],
    "scenarios": [
        {"name": "uniform-random", "params": {"bit_error_rate": [1e-3, 1e-2]}},
        {"name": "burst", "params": {"burst_probability": 0.01}},
    ],
}


def main() -> None:
    store_dir = sys.argv[1] if len(sys.argv) > 1 else "lifecycle_campaign"
    spec = SweepSpec.from_dict(SWEEP)

    # 1. Populate a classic v1 store and snapshot its bytes.
    summary = SweepRunner(store=CampaignStore(store_dir)).run(spec)
    print(f"sweep: {summary.simulated} simulated, {summary.cached} cached")
    with open(f"{store_dir}/records.jsonl", "rb") as handle:
        v1_bytes = handle.read()

    # 2. Migrate to the sharded layout (proof-carrying: the old file is
    #    only removed after the record stream is re-verified).
    migrated = store_migrate(store_dir, SHARDED)
    print(f"migrate: {migrated['from']} -> {migrated['to']} "
          f"({migrated['records']} records)")
    stat = store_stat(store_dir)
    print(f"stat: layout {stat['layout']}, {stat['records']} records in "
          f"{stat['segments']} segments, {stat['bytes']} bytes")

    # 3. The content-addressed cache is layout-independent: the same sweep
    #    against the migrated store re-simulates nothing.
    rerun = SweepRunner(store=CampaignStore(store_dir)).run(spec)
    assert rerun.simulated == 0, "migration must preserve every cache key"
    print(f"re-run: {rerun.cached} cells, all cache hits")

    # 4. Housekeeping verbs: canonical rewrite, deep verify, dead-file GC.
    compacted = store_compact(store_dir)
    print(f"compact: {compacted['segments_compacted']} segments, "
          f"{compacted['bytes_before'] - compacted['bytes_after']} bytes reclaimed")
    report = store_verify(store_dir)
    print(f"verify: ok={report['ok']} ({report['records']} records checked)")
    assert report["ok"]
    store_gc(store_dir)

    # 5. Round trip home: byte-identical to the pre-migration store.
    store_migrate(store_dir, SINGLE_FILE)
    with open(f"{store_dir}/records.jsonl", "rb") as handle:
        assert handle.read() == v1_bytes, "round trip must be byte-identical"
    print("round trip v1 -> v2 -> v1: records.jsonl is byte-identical")


if __name__ == "__main__":
    main()
