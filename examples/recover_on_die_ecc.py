"""Full BEER campaign against a simulated LPDDR4-style chip (paper Section 5).

The script treats the chip as a black box — exactly what a third-party test
engineer sees — and walks through the complete methodology:

1. discover which rows use true-cells vs anti-cells (Section 5.1.1),
2. discover how byte addresses map onto ECC datawords (Section 5.1.2),
3. run the {1,2}-CHARGED pattern campaign over a refresh-window sweep and
   build the miscorrection profile (Section 5.1.3, 5.2),
4. solve for the on-die ECC function and check its uniqueness (Section 5.3),
5. compare against the chip's ground-truth function (only possible here
   because the chip is simulated).

Run with::

    python examples/recover_on_die_ecc.py [vendor]   # vendor in {A, B, C}
"""

import sys

from repro import (
    BeerExperiment,
    ChipGeometry,
    DataRetentionModel,
    ExperimentConfig,
    codes_equivalent,
)
from repro.core import discover_dataword_layout
from repro.core.layout_re import estimate_dataword_bits
from repro.dram import CellType, all_vendors
from repro.dram.retention import RetentionCalibration


#: The simulated chips compress the paper's minutes-long refresh windows into
#: seconds so the campaign runs quickly at laptop scale.
FAST_RETENTION = DataRetentionModel(RetentionCalibration(1.0, 0.02, 60.0, 0.5))


def main(vendor_name: str = "B") -> None:
    vendor = next(v for v in all_vendors() if v.name == vendor_name.upper())
    chip = vendor.make_chip(
        num_data_bits=16,
        geometry=ChipGeometry(num_rows=84, words_per_row=8),
        seed=7,
        retention_model=FAST_RETENTION,
    )
    print(f"Simulated a chip from manufacturer {vendor.name}: {vendor.description}")
    print(f"The chip holds {chip.num_words} ECC words of {chip.num_data_bits} data bits.\n")

    # The {1,2}-CHARGED set for a 16-bit dataword has 136 patterns, so the
    # campaign sweeps several windows and rounds to give every pattern enough
    # word-observations to expose all of its possible miscorrections.
    config = ExperimentConfig(
        pattern_weights=(1, 2),
        refresh_windows_s=(30.0, 45.0, 60.0, 75.0),
        rounds_per_window=10,
        threshold=0.0,
        discover_cell_encoding=True,
        discovery_pause_s=60.0,
    )
    experiment = BeerExperiment(chip, config)

    # Step 1: cell-encoding discovery (Section 5.1.1).
    cell_types = experiment.discover_cell_types()
    num_anti = sum(1 for value in cell_types.values() if value is CellType.ANTI_CELL)
    print(f"Step 1  cell encodings: {len(cell_types) - num_anti} true-cell rows, "
          f"{num_anti} anti-cell rows.")

    # Step 2: dataword-layout discovery (Section 5.1.2).
    groups = discover_dataword_layout(
        chip, refresh_pause_s=75.0, cell_types=cell_types,
        regions_to_test=range(0, 24),
    )
    print(f"Step 2  dataword layout: byte groups per region = {groups} "
          f"(≈{estimate_dataword_bits(groups)}-bit datawords).")

    # Steps 3-4: miscorrection profiling + solving.
    result = BeerExperiment(chip, config).run(solve=True)
    profile = result.profile
    print(f"Step 3  miscorrection profile: {len(profile.patterns)} patterns, "
          f"{profile.total_miscorrections} miscorrection entries.")
    solution = result.solution
    print(f"Step 4  BEER solve: {solution.num_solutions} candidate function(s) "
          f"in {solution.runtime_seconds:.2f} s "
          f"({solution.nodes_visited} search nodes).")

    # Step 5: ground-truth comparison (simulation-only luxury).
    recovered = result.recovered_code
    matches = codes_equivalent(recovered, chip.code)
    print(f"Step 5  ground truth check: recovered function "
          f"{'MATCHES' if matches else 'DOES NOT MATCH'} the chip's real function.\n")
    print("Recovered parity-check matrix H = [P | I]:")
    print(recovered.parity_check_matrix)
    if not matches:
        raise SystemExit(1)


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "B")
