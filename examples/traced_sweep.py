"""A traced parallel sweep: where does the wall-clock actually go?

Runs a small fault-scenario sweep twice with the tracer enabled — first
cold (every cell simulated across a worker pool), then warm (every cell a
cache hit) — and prints the aggregate span/counter summary of each trace.
The cold trace shows execute/commit/lock/fsync time split across worker
processes merged into one consistent tree; the warm trace shows the sweep
collapsing to store reads.  The campaign store bytes are identical to an
untraced serial run — tracing never touches `records.jsonl`.

Run me:
    PYTHONPATH=src python examples/traced_sweep.py [store_dir]
"""

import os
import sys

from repro.obs import TRACER, format_summary_text, summarize_trace
from repro.scenarios import SweepRunner, SweepSpec
from repro.store import CampaignStore

SWEEP = {
    "name": "traced-demo",
    "num_words": 20_000,
    "chunk_size": 4096,
    "seeds": [0, 1],
    "backends": ["packed"],
    "codes": [{"data_bits": 16}],
    "scenarios": [
        {"name": "uniform-random", "params": {"bit_error_rate": [1e-3, 1e-2]}},
        {"name": "burst", "params": {"burst_probability": 0.01, "burst_length": 3}},
    ],
}


def traced_run(spec, store_dir, trace_path, jobs):
    TRACER.enable(sink_path=trace_path, meta={"example": "traced_sweep"})
    try:
        runner = SweepRunner(store=CampaignStore(store_dir), jobs=jobs)
        with TRACER.span("example.run", jobs=jobs):
            report = runner.run(spec)
        TRACER.flush()
    finally:
        TRACER.disable()
    # the parent adopts and deletes every worker segment at commit time;
    # drop the then-empty segment directory too
    try:
        os.rmdir(trace_path + ".segments")
    except OSError:
        pass
    return report


def main() -> None:
    store_dir = sys.argv[1] if len(sys.argv) > 1 else "traced_campaign"
    spec = SweepSpec.from_dict(SWEEP)

    print(f"sweep {spec.name!r}: {spec.num_cells} cells -> {store_dir!r}\n")
    cold = traced_run(spec, store_dir, "sweep_cold.jsonl", jobs=4)
    print(f"cold run (jobs=4): {cold.simulated} simulated, {cold.cached} cached")
    print(format_summary_text(summarize_trace("sweep_cold.jsonl")))

    warm = traced_run(spec, store_dir, "sweep_warm.jsonl", jobs=4)
    print(f"\nwarm run (jobs=4): {warm.simulated} simulated, {warm.cached} cached")
    print(format_summary_text(summarize_trace("sweep_warm.jsonl")))

    print(
        "\nexplore further:\n"
        "  PYTHONPATH=src python -m repro.cli trace report sweep_cold.jsonl\n"
        "  PYTHONPATH=src python -m repro.cli trace export sweep_cold.jsonl "
        "--output chrome.json   # load in ui.perfetto.dev"
    )


if __name__ == "__main__":
    main()
