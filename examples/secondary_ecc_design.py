"""Designing a secondary (rank-level) ECC around a known on-die ECC function.

Use case 7.2.1 of the paper: once BEER reveals the on-die ECC function, a
system architect can predict which data bits the on-die ECC makes more
error-prone through miscorrections and bias the memory controller's own ECC
towards those bits.

Run with::

    python examples/secondary_ecc_design.py
"""

import numpy as np

from repro import random_hamming_code
from repro.analysis import SecondaryEccDesigner


def main() -> None:
    # The on-die ECC function recovered by BEER (here: a representative code).
    code = random_hamming_code(32, rng=np.random.default_rng(11))
    print(f"On-die ECC function: ({code.codeword_length}, {code.num_data_bits}) SEC Hamming code.")

    designer = SecondaryEccDesigner(code, seed=0)
    raw_bit_error_rate = 1e-3
    plan = designer.plan(
        bit_error_rate=raw_bit_error_rate,
        protection_budget_bits=8,
        num_words=200_000,
    )

    probabilities = np.array(plan.per_bit_error_probability)
    print(f"\nPer-bit post-correction error probability at RBER {raw_bit_error_rate:g}:")
    for bit, probability in enumerate(probabilities):
        marker = " <-- protect" if bit in plan.protected_bits else ""
        print(f"  bit {bit:2d}: {probability:.2e}{marker}")

    print(f"\nMost vulnerable bits (descending): {plan.bits_by_vulnerability[:8]}")
    print(f"Recommended asymmetric protection for bits: {plan.protected_bits}")
    print(f"Those 8 of {code.num_data_bits} bits capture "
          f"{plan.coverage:.1%} of all post-correction errors.")
    print("\nWithout knowing the on-die ECC function, the controller-side ECC "
          "could only treat every bit as equally vulnerable.")


if __name__ == "__main__":
    main()
