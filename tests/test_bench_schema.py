"""Merged-schema serialisation properties and legacy-format compatibility.

The ISSUE-6 satellite: ``serialize → parse → serialize`` must be
byte-identical for any valid document (a hypothesis property), and the
legacy emitters must produce the same key structure as the committed
PR 1/3/4/5 ``BENCH_*.json`` files (a golden-file diff on keys, not values —
timings differ across machines, schema shape must not).
"""

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import legacy_payloads, run_bench
from repro.bench.schema import (
    ORACLE_SKIPPED,
    SCHEMA_VERSION,
    BenchRun,
    ConditionRecord,
    SchemaError,
    WorkloadRecord,
    canonical_json,
)

REPO_ROOT = Path(__file__).resolve().parents[1]

# -- hypothesis strategies for valid documents ---------------------------------------
names = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126), min_size=1, max_size=12
)
metric_values = st.one_of(
    st.integers(min_value=-(10**9), max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.booleans(),
    names,
)
oracle_values = st.one_of(st.booleans(), st.just(ORACLE_SKIPPED))
json_scalars = st.one_of(st.none(), st.booleans(), st.integers(), names)

conditions = st.builds(
    ConditionRecord,
    condition=names,
    metrics=st.dictionaries(names, metric_values, max_size=4),
    oracles=st.dictionaries(names, oracle_values, max_size=3),
)
workload_records = st.builds(
    WorkloadRecord,
    workload=names,
    params=st.dictionaries(names, json_scalars, max_size=4),
    conditions=st.lists(conditions, max_size=3),
    artifacts=st.dictionaries(names, json_scalars, max_size=3),
)
bench_runs = st.builds(
    BenchRun,
    tier=st.sampled_from(["smoke", "quick", "full"]),
    environment=st.dictionaries(names, json_scalars, max_size=4),
    workloads=st.lists(workload_records, max_size=3),
)


class TestRoundTrip:
    @settings(max_examples=150, deadline=None)
    @given(bench_runs)
    def test_serialize_parse_serialize_is_byte_identical(self, run):
        first = run.to_json()
        second = BenchRun.from_json(first).to_json()
        assert second == first

    @settings(max_examples=50, deadline=None)
    @given(bench_runs)
    def test_parse_preserves_every_field(self, run):
        parsed = BenchRun.from_json(run.to_json())
        assert parsed.tier == run.tier
        assert parsed.environment == run.environment
        assert parsed.schema_version == SCHEMA_VERSION
        assert [w.to_dict() for w in parsed.workloads] == [
            w.to_dict() for w in run.workloads
        ]

    def test_canonical_json_is_deterministic_under_key_order(self):
        assert canonical_json({"b": 1, "a": {"d": 2, "c": 3}}) == canonical_json(
            {"a": {"c": 3, "d": 2}, "b": 1}
        )

    def test_file_round_trip(self, tmp_path):
        run = BenchRun(tier="quick", environment={"x": 1}, workloads=[])
        path = tmp_path / "run.json"
        run.write(path)
        assert BenchRun.read(path).to_json() == run.to_json()
        # the on-disk form IS the canonical form
        assert path.read_text() == run.to_json()


class TestValidation:
    def test_rejects_unknown_schema_version(self):
        payload = BenchRun(tier="quick").to_dict()
        payload["schema_version"] = 99
        with pytest.raises(SchemaError, match="schema_version"):
            BenchRun.from_dict(payload)

    def test_rejects_missing_keys(self):
        with pytest.raises(SchemaError, match="missing required keys"):
            BenchRun.from_dict({"tier": "quick"})

    def test_rejects_bad_oracle_value(self):
        payload = {
            "condition": "c",
            "metrics": {},
            "oracles": {"gate": "maybe"},
        }
        with pytest.raises(SchemaError, match="gate"):
            ConditionRecord.from_dict(payload)

    def test_rejects_non_object_document(self):
        with pytest.raises(SchemaError):
            BenchRun.from_json("[1, 2, 3]")
        with pytest.raises(SchemaError):
            BenchRun.from_json("not json at all")

    def test_rejects_nan_metrics_at_serialisation(self):
        run = BenchRun(
            tier="quick",
            workloads=[
                WorkloadRecord(
                    workload="w",
                    conditions=[ConditionRecord("c", metrics={"m": float("nan")})],
                )
            ],
        )
        with pytest.raises(ValueError):
            run.to_json()


# -- golden-file structure diff vs the committed legacy formats ----------------------
def key_structure(payload, prefix=""):
    """The set of key paths in a nested payload; lists contribute one element."""
    paths = set()
    if isinstance(payload, dict):
        for key, value in payload.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            paths.add(path)
            paths |= key_structure(value, path)
    elif isinstance(payload, list) and payload:
        paths |= key_structure(payload[0], prefix + "[]")
    return paths


@pytest.fixture(scope="module")
def smoke_payloads():
    run = run_bench(
        ["gf2-backends", "sat-solver", "sweep-parallel", "decoder-families"],
        tier="smoke",
    )
    return legacy_payloads(run)


LEGACY_FILES = [
    "BENCH_gf2_backends.json",
    "BENCH_sat_solver.json",
    "BENCH_sweep_parallel.json",
    "BENCH_decoder_families.json",
]

#: Key paths added deliberately by this PR (documented schema evolution), and
#: key paths only present at full scale (the committed files are full-tier).
ALLOWED_NEW = {
    "BENCH_sweep_parallel.json": {"skipped_speedup_gate"},
}


@pytest.mark.parametrize("filename", LEGACY_FILES)
def test_legacy_emitters_match_committed_key_structure(filename, smoke_payloads):
    committed_path = REPO_ROOT / filename
    if not committed_path.exists():
        pytest.skip(f"{filename} not committed")
    committed = key_structure(json.loads(committed_path.read_text()))
    emitted = key_structure(smoke_payloads[filename])

    missing = committed - emitted
    assert not missing, f"{filename}: emitter dropped key paths {sorted(missing)}"
    new = {
        path
        for path in emitted - committed
        if path.split(".")[-1].lstrip("[]") not in ALLOWED_NEW.get(filename, set())
    }
    assert not new, f"{filename}: emitter invented key paths {sorted(new)}"


def test_legacy_payloads_serialise_with_historical_formatting(smoke_payloads):
    # Legacy files keep insertion-ordered keys (not canonical sorting) —
    # `json.dumps(..., indent=2)` exactly as PR 1/3/4/5 wrote them.
    for _filename, payload in smoke_payloads.items():
        text = json.dumps(payload, indent=2) + "\n"
        assert json.loads(text) == payload
