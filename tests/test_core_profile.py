"""Unit tests for miscorrection profiles, counts, and threshold filtering."""

import pytest

from repro.exceptions import ProfileError
from repro.dram import CellType
from repro.ecc import SystematicLinearCode, example_7_4_code, hamming_code
from repro.core import (
    ChargedPattern,
    MiscorrectionCounts,
    MiscorrectionProfile,
    expected_miscorrection_profile,
    miscorrections_possible,
    one_charged_patterns,
)
from repro.core.profile import charged_codeword_positions


@pytest.fixture
def code_7_4():
    return example_7_4_code()


class TestChargedCodewordPositions:
    def test_one_charged_pattern_charges_parity_support(self, code_7_4):
        # Charging only data bit 2 charges exactly the parity bits in the
        # support of column P_*,2 = (1, 0, 1): parity positions 4 and 6.
        pattern = ChargedPattern(4, [2])
        charged = charged_codeword_positions(code_7_4, pattern)
        assert charged == frozenset({2, 4, 6})

    def test_zero_pattern_true_cells_has_no_charged_positions(self, code_7_4):
        charged = charged_codeword_positions(code_7_4, ChargedPattern(4, []))
        assert charged == frozenset()

    def test_anti_cells_invert_parity_charges(self, code_7_4):
        # With all data bits DISCHARGED, anti-cells store all ones; the parity
        # bits then store the encoding of all-ones data.
        pattern = ChargedPattern(4, [])
        charged = charged_codeword_positions(code_7_4, pattern, CellType.ANTI_CELL)
        codeword = code_7_4.encode(pattern.dataword(CellType.ANTI_CELL))
        expected = {p for p in code_7_4.parity_bit_positions if codeword[p] == 0}
        assert charged == frozenset(expected)

    def test_pattern_code_mismatch_rejected(self, code_7_4):
        with pytest.raises(ProfileError):
            charged_codeword_positions(code_7_4, ChargedPattern(5, [0]))


class TestMiscorrectionsPossible:
    def test_paper_table_2(self, code_7_4):
        # Table 2: only the pattern charging data bit 0 can miscorrect, and it
        # can miscorrect every other data bit.
        expectations = {
            0: {1, 2, 3},
            1: set(),
            2: set(),
            3: set(),
        }
        for charged_bit, expected in expectations.items():
            possible = miscorrections_possible(code_7_4, ChargedPattern(4, [charged_bit]))
            assert possible == frozenset(expected)

    def test_miscorrections_never_reported_at_charged_bits(self):
        code = hamming_code(8)
        for pattern in one_charged_patterns(8):
            possible = miscorrections_possible(code, pattern)
            assert not (possible & pattern.charged_bits)

    def test_full_charge_pattern_spans_everything(self):
        # Charging every data bit makes every column reachable, so every
        # DISCHARGED bit (none) - trivially empty set.
        code = hamming_code(8)
        pattern = ChargedPattern(8, range(8))
        assert miscorrections_possible(code, pattern) == frozenset()

    def test_weight_two_column_pattern_can_only_miscorrect_subsets(self):
        # For a 1-CHARGED pattern, miscorrections are possible exactly at bits
        # whose columns have support contained in the charged bit's column.
        code = SystematicLinearCode.from_parity_columns([0b111, 0b011, 0b101, 0b110], 3)
        possible = miscorrections_possible(code, ChargedPattern(4, [1]))
        assert possible == frozenset()
        possible = miscorrections_possible(code, ChargedPattern(4, [0]))
        assert possible == frozenset({1, 2, 3})


class TestMiscorrectionProfile:
    def test_record_and_query(self):
        profile = MiscorrectionProfile(4)
        pattern = ChargedPattern(4, [0])
        profile.record(pattern, [1, 3])
        assert profile.miscorrections(pattern) == frozenset({1, 3})
        assert pattern in profile
        assert profile.total_miscorrections == 2

    def test_record_accumulates(self):
        profile = MiscorrectionProfile(4)
        pattern = ChargedPattern(4, [0])
        profile.record(pattern, [1])
        profile.record(pattern, [2])
        assert profile.miscorrections(pattern) == frozenset({1, 2})

    def test_cannot_record_miscorrection_at_charged_bit(self):
        profile = MiscorrectionProfile(4)
        with pytest.raises(ProfileError):
            profile.record(ChargedPattern(4, [0]), [0])

    def test_cannot_record_out_of_range_position(self):
        profile = MiscorrectionProfile(4)
        with pytest.raises(ProfileError):
            profile.record(ChargedPattern(4, [0]), [4])

    def test_pattern_length_mismatch(self):
        profile = MiscorrectionProfile(4)
        with pytest.raises(ProfileError):
            profile.record(ChargedPattern(5, [0]), [1])
        with pytest.raises(ProfileError):
            profile.miscorrections(ChargedPattern(5, [0]))

    def test_query_unknown_pattern(self):
        profile = MiscorrectionProfile(4)
        with pytest.raises(ProfileError):
            profile.miscorrections(ChargedPattern(4, [0]))

    def test_merge(self):
        first = MiscorrectionProfile(4, {ChargedPattern(4, [0]): [1]})
        second = MiscorrectionProfile(4, {ChargedPattern(4, [0]): [2], ChargedPattern(4, [1]): []})
        merged = first.merge(second)
        assert merged.miscorrections(ChargedPattern(4, [0])) == frozenset({1, 2})
        assert merged.miscorrections(ChargedPattern(4, [1])) == frozenset()

    def test_merge_length_mismatch(self):
        with pytest.raises(ProfileError):
            MiscorrectionProfile(4).merge(MiscorrectionProfile(5))

    def test_restricted_to_weights(self):
        profile = MiscorrectionProfile(4)
        profile.record(ChargedPattern(4, [0]), [1])
        profile.record(ChargedPattern(4, [0, 1]), [2])
        only_singles = profile.restricted_to_weights([1])
        assert len(only_singles.patterns) == 1
        assert only_singles.patterns[0].weight == 1

    def test_serialisation_round_trip(self, code_7_4):
        profile = expected_miscorrection_profile(code_7_4, one_charged_patterns(4))
        rebuilt = MiscorrectionProfile.from_dict(profile.to_dict())
        assert rebuilt == profile

    def test_from_dict_malformed(self):
        with pytest.raises(ProfileError):
            MiscorrectionProfile.from_dict({"entries": []})

    def test_equality(self, code_7_4):
        first = expected_miscorrection_profile(code_7_4, one_charged_patterns(4))
        second = expected_miscorrection_profile(code_7_4, one_charged_patterns(4))
        assert first == second
        assert first != MiscorrectionProfile(4)

    def test_repr(self):
        profile = MiscorrectionProfile(4, {ChargedPattern(4, [0]): [1, 2]})
        assert "patterns=1" in repr(profile)
        assert "entries=2" in repr(profile)


class TestMiscorrectionCounts:
    def test_record_and_probabilities(self):
        counts = MiscorrectionCounts(4)
        pattern = ChargedPattern(4, [0])
        counts.record_observations(pattern, [1, 1, 2], words_observed=10)
        assert counts.words_observed(pattern) == 10
        assert counts.counts_for(pattern).tolist() == [0, 2, 1, 0]
        probabilities = counts.error_probabilities(pattern)
        assert probabilities[1] == pytest.approx(0.2)

    def test_counts_validation(self):
        counts = MiscorrectionCounts(4)
        with pytest.raises(ProfileError):
            counts.record_observations(ChargedPattern(5, [0]), [], 1)
        with pytest.raises(ProfileError):
            counts.record_observations(ChargedPattern(4, [0]), [9], 1)
        with pytest.raises(ProfileError):
            counts.record_observations(ChargedPattern(4, [0]), [], -1)
        with pytest.raises(ProfileError):
            counts.counts_for(ChargedPattern(4, [1]))
        with pytest.raises(ProfileError):
            MiscorrectionCounts(0)

    def test_error_positions_with_zero_words_rejected(self):
        counts = MiscorrectionCounts(4)
        with pytest.raises(ProfileError, match="zero words"):
            counts.record_observations(ChargedPattern(4, [0]), [1, 2], 0)

    def test_zero_word_rounds_do_not_register_the_pattern(self):
        counts = MiscorrectionCounts(4)
        pattern = ChargedPattern(4, [0])
        # A zero-word round is a legal no-op: the pattern is not registered,
        # so downstream probability/profile computations never divide by it.
        counts.record_observations(pattern, [], 0)
        assert counts.patterns == []
        assert counts.to_profile().patterns == []
        with pytest.raises(ProfileError, match="no recorded observations"):
            counts.error_probabilities(pattern)

    def test_threshold_filter_removes_rare_events(self):
        # Bit 1 fails often (a real miscorrection), bit 2 fails once
        # (transient noise); a threshold separates them (paper Figure 4).
        counts = MiscorrectionCounts(4)
        pattern = ChargedPattern(4, [0])
        counts.record_observations(pattern, [1] * 50 + [2], words_observed=1000)
        profile = counts.to_profile(threshold=0.01)
        assert profile.miscorrections(pattern) == frozenset({1})

    def test_zero_threshold_keeps_all_discharged_observations(self):
        counts = MiscorrectionCounts(4)
        pattern = ChargedPattern(4, [0])
        counts.record_observations(pattern, [0, 1, 2], words_observed=10)
        profile = counts.to_profile(threshold=0.0)
        # Bit 0 is CHARGED: its errors are ambiguous and never become profile entries.
        assert profile.miscorrections(pattern) == frozenset({1, 2})

    def test_negative_threshold_rejected(self):
        counts = MiscorrectionCounts(4)
        with pytest.raises(ProfileError):
            counts.to_profile(threshold=-0.1)

    def test_merge_counts(self):
        pattern = ChargedPattern(4, [0])
        first = MiscorrectionCounts(4)
        first.record_observations(pattern, [1], 5)
        second = MiscorrectionCounts(4)
        second.record_observations(pattern, [1, 2], 5)
        merged = first.merge(second)
        assert merged.words_observed(pattern) == 10
        assert merged.counts_for(pattern).tolist() == [0, 2, 1, 0]

    def test_merge_length_mismatch(self):
        with pytest.raises(ProfileError):
            MiscorrectionCounts(4).merge(MiscorrectionCounts(5))


class TestExpectedProfileConsistency:
    def test_expected_profile_matches_per_pattern_queries(self, code_7_4):
        patterns = one_charged_patterns(4)
        profile = expected_miscorrection_profile(code_7_4, patterns)
        for pattern in patterns:
            assert profile.miscorrections(pattern) == miscorrections_possible(
                code_7_4, pattern
            )

    def test_profiles_differ_between_codes(self):
        first = hamming_code(8)
        second = SystematicLinearCode.from_parity_columns(
            list(reversed(first.parity_column_ints)), first.num_parity_bits
        )
        patterns = one_charged_patterns(8)
        assert expected_miscorrection_profile(
            first, patterns
        ) != expected_miscorrection_profile(second, patterns)

    def test_anti_cell_profile_of_one_charged_pattern(self, code_7_4):
        # BEER's reasoning is charge-based, so the expected profile computed
        # for anti-cells must match the charge-domain condition as well.
        patterns = one_charged_patterns(4)
        profile = expected_miscorrection_profile(code_7_4, patterns, CellType.ANTI_CELL)
        for pattern in patterns:
            assert profile.miscorrections(pattern) == miscorrections_possible(
                code_7_4, pattern, CellType.ANTI_CELL
            )
