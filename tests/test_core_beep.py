"""Tests for BEEP (bit-exact pre-correction error profiling)."""

import numpy as np
import pytest

from repro.exceptions import DimensionError, PatternCraftingError
from repro.dram import CellType
from repro.gf2 import GF2Vector
from repro.ecc import hamming_code, random_hamming_code
from repro.core import BeepProfiler
from repro.core.beep import ChipWordUnderTest, SimulatedWordUnderTest
from repro.dram import ChipGeometry, DataRetentionModel, SimulatedDramChip
from repro.dram.retention import RetentionCalibration


@pytest.fixture
def code_16():
    return random_hamming_code(16, rng=np.random.default_rng(16))


class TestSimulatedWordUnderTest:
    def test_error_free_word_reads_back_written_data(self, code_16):
        word = SimulatedWordUnderTest(code_16, [], rng=np.random.default_rng(0))
        dataword = GF2Vector([1, 0] * 8)
        assert word.test(dataword) == dataword

    def test_only_charged_error_prone_cells_fail(self, code_16):
        word = SimulatedWordUnderTest(code_16, [0], per_bit_probability=1.0,
                                      rng=np.random.default_rng(0))
        # Bit 0 DISCHARGED: cannot fail, read back clean.
        clean = word.test(GF2Vector([0] * 16))
        assert clean == GF2Vector([0] * 16)

    def test_single_error_is_corrected_by_ecc(self, code_16):
        word = SimulatedWordUnderTest(code_16, [3], per_bit_probability=1.0,
                                      rng=np.random.default_rng(0))
        dataword = GF2Vector([1] * 16)
        assert word.test(dataword) == dataword

    def test_invalid_positions_and_probability_rejected(self, code_16):
        with pytest.raises(DimensionError):
            SimulatedWordUnderTest(code_16, [code_16.codeword_length])
        with pytest.raises(DimensionError):
            SimulatedWordUnderTest(code_16, [0], per_bit_probability=1.5)

    def test_exposes_ground_truth(self, code_16):
        word = SimulatedWordUnderTest(code_16, [5, 2])
        assert word.error_prone_positions == (2, 5)
        assert word.code is code_16


class TestPatternCrafting:
    def test_crafted_pattern_charges_target_data_bit(self, code_16):
        profiler = BeepProfiler(code_16)
        for target in range(code_16.num_data_bits):
            pattern = profiler.craft_pattern(target)
            assert pattern.codeword[target] == 1
            assert pattern.target_bit == target

    def test_crafted_pattern_charges_target_parity_bit(self, code_16):
        profiler = BeepProfiler(code_16)
        for target in code_16.parity_bit_positions:
            pattern = profiler.craft_pattern(target)
            assert pattern.codeword[target] == 1

    def test_bootstrap_pattern_discharges_neighbours_of_data_target(self, code_16):
        profiler = BeepProfiler(code_16)
        pattern = profiler.craft_pattern(5)
        assert pattern.codeword[4] == 0
        assert pattern.codeword[6] == 0

    def test_miscorrection_armed_pattern_with_known_errors(self, code_16):
        profiler = BeepProfiler(code_16)
        known = [7]
        pattern = profiler.craft_pattern(2, known)
        if pattern.miscorrection_armed:
            # The known error cell must be CHARGED so it can actually fail.
            assert pattern.codeword[7] == 1
            assert pattern.codeword[2] == 1

    def test_invalid_target_rejected(self, code_16):
        with pytest.raises(PatternCraftingError):
            BeepProfiler(code_16).craft_pattern(code_16.codeword_length)

    def test_invalid_configuration_rejected(self, code_16):
        with pytest.raises(PatternCraftingError):
            BeepProfiler(code_16, max_combination_size=0)

    def test_anti_cell_patterns_invert_charge_encoding(self, code_16):
        profiler = BeepProfiler(code_16, cell_type=CellType.ANTI_CELL)
        pattern = profiler.craft_pattern(3)
        # Anti-cells store 0 when CHARGED.
        assert pattern.codeword[3] == 0


class TestInference:
    def test_inference_recovers_double_error_exactly(self, code_16):
        # Deterministic scenario: two error-prone cells that always fail.
        profiler = BeepProfiler(code_16)
        word = SimulatedWordUnderTest(
            code_16, [2, 9], per_bit_probability=1.0, rng=np.random.default_rng(1)
        )
        result = profiler.profile(word, num_passes=2)
        assert set(result.identified_errors) == {2, 9}

    def test_inference_identifies_parity_bit_errors(self, code_16):
        parity_position = code_16.num_data_bits + 1
        word = SimulatedWordUnderTest(
            code_16, [4, parity_position], per_bit_probability=1.0,
            rng=np.random.default_rng(2),
        )
        result = BeepProfiler(code_16).profile(word, num_passes=2)
        assert parity_position in result.identified_errors
        assert 4 in result.identified_errors

    def test_no_errors_identified_for_clean_word(self, code_16):
        word = SimulatedWordUnderTest(code_16, [], rng=np.random.default_rng(3))
        result = BeepProfiler(code_16).profile(word, num_passes=1)
        assert result.identified_errors == ()
        assert result.miscorrections_observed == 0

    def test_identified_errors_are_subset_of_true_errors(self, code_16):
        rng = np.random.default_rng(4)
        for trial in range(5):
            true_errors = sorted(
                rng.choice(code_16.codeword_length, size=3, replace=False).tolist()
            )
            word = SimulatedWordUnderTest(
                code_16, true_errors, per_bit_probability=0.75,
                rng=np.random.default_rng(trial),
            )
            result = BeepProfiler(code_16).profile(word, num_passes=2)
            assert set(result.identified_errors) <= set(true_errors)

    def test_observation_length_validation(self, code_16):
        profiler = BeepProfiler(code_16)
        pattern = profiler.craft_pattern(0)
        with pytest.raises(DimensionError):
            profiler.infer_errors_from_observation(pattern, GF2Vector([0, 1]))

    def test_profile_argument_validation(self, code_16):
        profiler = BeepProfiler(code_16)
        word = SimulatedWordUnderTest(code_16, [])
        with pytest.raises(PatternCraftingError):
            profiler.profile(word, num_passes=0)
        with pytest.raises(PatternCraftingError):
            profiler.profile(word, trials_per_pattern=0)

    def test_result_statistics(self, code_16):
        word = SimulatedWordUnderTest(
            code_16, [1, 8], per_bit_probability=1.0, rng=np.random.default_rng(5)
        )
        result = BeepProfiler(code_16).profile(word, num_passes=1)
        assert result.passes_used == 1
        assert result.patterns_tested == code_16.codeword_length
        assert result.identified_set() == frozenset(result.identified_errors)


class TestSuccessRateTrends:
    def success_rate(self, num_data_bits, num_errors, passes, probability, trials=20):
        code = random_hamming_code(num_data_bits, rng=np.random.default_rng(num_data_bits))
        profiler = BeepProfiler(code)
        rng = np.random.default_rng(1234)
        successes = 0
        for trial in range(trials):
            true_errors = sorted(
                rng.choice(code.codeword_length, size=num_errors, replace=False).tolist()
            )
            word = SimulatedWordUnderTest(
                code, true_errors, per_bit_probability=probability,
                rng=np.random.default_rng(trial),
            )
            result = profiler.profile(word, num_passes=passes)
            if set(result.identified_errors) == set(true_errors):
                successes += 1
        return successes / trials

    def test_two_passes_never_hurt(self):
        one_pass = self.success_rate(16, 3, passes=1, probability=1.0)
        two_passes = self.success_rate(16, 3, passes=2, probability=1.0)
        assert two_passes >= one_pass

    def test_deterministic_errors_profile_well_with_two_passes(self):
        rate = self.success_rate(26, 3, passes=2, probability=1.0)
        assert rate >= 0.7

    def test_low_probability_errors_are_harder(self):
        high = self.success_rate(16, 3, passes=1, probability=1.0)
        low = self.success_rate(16, 3, passes=1, probability=0.25)
        assert low <= high


class TestChipWordUnderTest:
    def test_adapter_runs_against_simulated_chip(self):
        code = hamming_code(16)
        chip = SimulatedDramChip(
            code,
            ChipGeometry(2, 2),
            retention_model=DataRetentionModel(RetentionCalibration(1.0, 1e-4, 100.0, 0.5)),
            seed=3,
        )
        word = ChipWordUnderTest(chip, word_index=1, refresh_pause_s=50.0)
        observed = word.test(GF2Vector([1] * 16))
        assert len(observed) == 16


class TestSatPatternBackend:
    """The incremental-SAT charge crafter against the GF(2) elimination path."""

    def test_unknown_backend_rejected(self, code_16):
        with pytest.raises(PatternCraftingError):
            BeepProfiler(code_16, pattern_backend="z3")

    def test_sat_crafted_patterns_satisfy_the_charge_constraints(self, code_16):
        code = code_16
        gf2 = BeepProfiler(code)
        sat = BeepProfiler(code, pattern_backend="sat")
        for target in range(code.codeword_length):
            for known in ([], [2, 9]):
                reference = gf2.craft_pattern(target, known_errors=known)
                crafted = sat.craft_pattern(target, known_errors=known)
                # Both must arm the same way and charge the target identically.
                assert crafted.miscorrection_armed == reference.miscorrection_armed
                assert crafted.codeword[target] == reference.codeword[target]
                assert crafted.codeword == code.encode(crafted.dataword)

    def test_sat_backend_identifies_deterministic_errors(self, code_16):
        code = code_16
        word = SimulatedWordUnderTest(
            code, [2, 9], per_bit_probability=1.0, rng=np.random.default_rng(1)
        )
        profiler = BeepProfiler(code, pattern_backend="sat")
        result = profiler.profile(word, num_passes=2)
        assert result.identified_set() == {2, 9}

    def test_sat_stats_exposed_only_for_sat_backend(self, code_16):
        code = code_16
        gf2 = BeepProfiler(code)
        assert gf2.pattern_backend == "gf2"
        assert gf2.sat_solver_stats() is None
        sat = BeepProfiler(code, pattern_backend="sat")
        assert sat.pattern_backend == "sat"
        sat.craft_pattern(0, known_errors=[2, 9])
        stats = sat.sat_solver_stats()
        assert stats is not None and stats["solve_calls"] > 0
