"""The ``repro bench`` CLI: list / run / compare / update-baseline.

Includes the ISSUE-6 deliberate-regression satellite: the comparator, fed a
doctored result file, must exit non-zero — proving the CI gate can actually
fail without waiting for a real (flaky) timing regression.
"""

import json

import pytest

from repro.bench.schema import BenchRun
from repro.cli import main

WL = ["--workload", "table1-outcomes", "--workload", "sat-solver"]


def run_cli(*argv):
    return main(list(argv))


def test_bench_list(capsys):
    assert run_cli("bench", "list") == 0
    out = capsys.readouterr().out
    assert "sat-solver" in out and "sweep-parallel" in out


def test_bench_list_json(capsys):
    assert run_cli("bench", "list", "--json") == 0
    listing = json.loads(capsys.readouterr().out)
    by_name = {entry["name"]: entry for entry in listing}
    assert by_name["gf2-backends"]["legacy_file"] == "BENCH_gf2_backends.json"
    assert any(gate["rel_tol"] == 0.0 for gate in by_name["sat-solver"]["gated_metrics"])


@pytest.fixture(scope="module")
def result_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("bench") / "result.json"
    code = run_cli(
        "bench", "run", "--tier", "smoke", *WL, "--output", str(path),
        "--check-oracles",
    )
    assert code == 0
    return path


def test_bench_run_writes_merged_schema(result_file):
    run = BenchRun.read(result_file)
    assert run.tier == "smoke"
    assert set(run.workload_names()) == {"table1-outcomes", "sat-solver"}
    assert run.environment["usable_cpus"] >= 1


def test_bench_compare_clean_pass(result_file, tmp_path, capsys):
    report_path = tmp_path / "report.json"
    code = run_cli(
        "bench", "compare", str(result_file),
        "--baseline", str(result_file), "--report", str(report_path),
    )
    assert code == 0
    report = json.loads(report_path.read_text())
    assert report["ok"] and report["failures"] == []
    assert report["compared_metrics"] > 0


def test_bench_compare_missing_baseline_is_distinct_error(result_file, tmp_path):
    code = run_cli(
        "bench", "compare", str(result_file),
        "--baseline", str(tmp_path / "nope.json"),
    )
    assert code == 2


class TestDeliberateRegression:
    """Doctor a result file and prove the gate goes red."""

    def doctor(self, result_file, tmp_path, mutate):
        run = BenchRun.read(result_file)
        mutate(run)
        doctored = tmp_path / "doctored.json"
        run.write(doctored)
        return doctored

    def test_metric_regression_exits_nonzero(self, result_file, tmp_path, capsys):
        def slow_down(run):
            # Doubling a zero-tolerance deterministic count is an unambiguous
            # regression regardless of machine speed.
            condition = run.workload("sat-solver").conditions[-1]
            condition.metrics["models_enumerated"] = (
                condition.metrics["models_enumerated"] * 2
            )

        doctored = self.doctor(result_file, tmp_path, slow_down)
        code = run_cli(
            "bench", "compare", str(doctored), "--baseline", str(result_file)
        )
        assert code == 1
        assert "metric-regression" in capsys.readouterr().out

    def test_oracle_violation_exits_nonzero(self, result_file, tmp_path, capsys):
        def break_identity(run):
            condition = run.workload("sat-solver").conditions[-1]
            condition.oracles["identical_canonical_sets"] = False

        doctored = self.doctor(result_file, tmp_path, break_identity)
        code = run_cli(
            "bench", "compare", str(doctored), "--baseline", str(result_file)
        )
        assert code == 1
        assert "oracle-violation" in capsys.readouterr().out

    def test_dropped_workload_exits_nonzero(self, result_file, tmp_path):
        def drop(run):
            run.workloads = run.workloads[:1]

        doctored = self.doctor(result_file, tmp_path, drop)
        assert (
            run_cli("bench", "compare", str(doctored), "--baseline", str(result_file))
            == 1
        )


def test_update_baseline_from_result(result_file, tmp_path, capsys, monkeypatch):
    import repro.bench.driver as driver

    monkeypatch.setattr(driver, "repo_root", lambda: tmp_path)
    code = run_cli(
        "bench", "update-baseline", "--tier", "smoke",
        "--from-result", str(result_file),
    )
    assert code == 0
    target = tmp_path / "benchmarks" / "baselines" / "smoke.json"
    assert target.exists()
    assert BenchRun.read(target).tier == "smoke"
    assert "justification" in capsys.readouterr().out

    # tier mismatch between file and flag is refused
    code = run_cli(
        "bench", "update-baseline", "--tier", "full",
        "--from-result", str(result_file),
    )
    assert code == 2
